//! Fault-matrix integration test for the degradation ladder (DESIGN.md
//! §12): every fault kind the [`patlabor::FaultPlane`] can inject, fired
//! at the primary serving rung over a seeded mixed-degree corpus, must
//! leave the batch driver with zero process aborts — every affected net
//! either served by a lower rung with a verified frontier or failed with
//! a structured [`patlabor::RouteError`].
//!
//! Time is virtual throughout: only injected stage delays advance the
//! clock, so the deadline drills cannot flake on a loaded machine. The
//! `#[ignore]`d variant runs the acceptance-scale 500-net corpus (CI's
//! fault-matrix job covers the same scale through `patlabor verify`).

use std::sync::Arc;
use std::time::Duration;

use patlabor::{
    Fault, FaultKind, FaultPlane, FaultScope, LutBuilder, Net, PatLabor, ResilienceConfig,
    ResilienceReport, RouteError, RouterConfig, VirtualClock,
};

fn corpus(seed: u64, count: usize) -> Vec<Net> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    (0..count)
        // Degrees 3–6 against λ=4 tables: the matrix exercises both the
        // table rungs (3, 4) and the local-search/baseline path (5, 6).
        .map(|i| patlabor_netgen::uniform_net(&mut rng, 3 + i % 4, 32))
        .collect()
}

fn drill(nets: &[Net], fault: Fault, deadline: Option<Duration>) -> (Vec<patlabor::pipeline::RouteResult>, ResilienceReport) {
    let table = LutBuilder::new(4).build();
    let router = PatLabor::with_table_and_config(
        table,
        RouterConfig {
            resilience: ResilienceConfig { deadline, ..ResilienceConfig::default() },
            faults: FaultPlane::seeded(0x5eed).with_fault(fault),
            ..RouterConfig::default()
        },
    )
    .with_clock(Arc::new(VirtualClock::new()));
    router.route_batch_with_report(nets, 4)
}

/// Shared invariant check: a served net's frontier is non-empty, every
/// witness tree spans the net, and every advertised cost matches its
/// tree's recomputed objectives.
fn assert_served_invariants(net: &Net, outcome: &patlabor::pipeline::RouteOutcome) {
    assert!(!outcome.frontier.is_empty(), "served an empty frontier");
    for (cost, tree) in outcome.frontier.iter() {
        tree.validate(net).expect("served tree must span the net");
        assert_eq!(
            (cost.wirelength, cost.delay),
            tree.objectives(),
            "advertised cost must match the tree"
        );
    }
}

fn run_matrix(nets: &[Net]) {
    for kind in FaultKind::ALL {
        // Stage delays only matter under a deadline; the default 5ms
        // injected delay blows a 1ms budget on the first gated rung.
        let deadline = matches!(kind, FaultKind::StageDelay).then(|| Duration::from_millis(1));
        let fault = Fault { kind, scope: FaultScope::Primary, probability: 0.5 };
        let (results, report) = drill(nets, fault, deadline);

        assert_eq!(report.nets as usize, nets.len(), "{kind}: every net accounted for");
        assert_eq!(report.served + report.errors, report.nets, "{kind}: served + errors = nets");
        // A primary-rung fault always leaves a lower rung standing, so
        // the ladder must serve every net.
        assert_eq!(report.errors, 0, "{kind}: a primary-scope fault must be absorbed");
        assert!(
            report.degraded >= 1,
            "{kind}: p=0.5 over {} nets must degrade someone",
            nets.len()
        );
        for (net, result) in nets.iter().zip(&results) {
            let outcome = result.as_ref().expect("errors == 0");
            assert_served_invariants(net, outcome);
        }
    }
}

#[test]
fn fault_matrix_serves_every_net_from_a_lower_rung() {
    run_matrix(&corpus(0xfa17, 100));
}

/// Acceptance-scale variant: the full 500-net corpus, every fault kind.
/// Minutes-long under the dev profile — run with `--ignored --release`.
#[test]
#[ignore = "acceptance-scale corpus; run with --ignored --release"]
fn fault_matrix_at_acceptance_scale() {
    run_matrix(&corpus(0xfa17, 500));
}

#[test]
fn unabsorbable_panics_fail_slots_structurally_not_fatally() {
    let nets = corpus(0xfa18, 60);
    let fault = Fault { kind: FaultKind::StagePanic, scope: FaultScope::AllRungs, probability: 0.4 };
    let (results, report) = drill(&nets, fault, None);

    assert_eq!(report.errors, report.panicked, "panics are the only armed fault");
    assert!(report.panicked >= 1, "p=0.4 over 60 nets must hit someone");
    assert!(report.served >= 1, "degree-2-free corpus still has unhit nets");
    for (net, result) in nets.iter().zip(&results) {
        match result {
            Ok(outcome) => assert_served_invariants(net, outcome),
            Err(RouteError::Panicked { payload }) => {
                assert!(payload.contains("injected fault"), "payload was: {payload}")
            }
            Err(e) => panic!("expected a structured panic error, got: {e}"),
        }
    }
}
