//! Heavy cross-validation runs, ignored by default.
//!
//! ```sh
//! cargo test --release --test heavy -- --ignored
//! ```

use patlabor::{LutBuilder, Net, Point};
use patlabor_dw::{numeric, oracle, DwConfig};
use patlabor_verify::{mutation_smoke, verify, VerifyConfig};

fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
    let mut rng = move || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    Net::new(
        (0..degree)
            .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
            .collect(),
    )
    .unwrap()
}

/// Full-Steiner exhaustive oracle vs the DP at degree 5 (minutes).
#[test]
#[ignore = "minutes-long exhaustive enumeration"]
fn oracle_agrees_with_dw_on_degree_5() {
    let mut seed = 0x5eed5;
    for _ in 0..3 {
        let net = random_net(&mut seed, 5, 30);
        let reference = oracle::exhaustive_frontier(&net);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(dw.cost_vec(), reference.cost_vec(), "mismatch on {net:?}");
    }
}

/// λ = 7 table generation + agreement with the DP on random degree-7 nets.
#[test]
#[ignore = "generates the lambda-7 tables (minutes)"]
fn lambda7_table_agrees_with_dw() {
    let table = LutBuilder::new(7).build();
    let mut seed = 0x7ab1e;
    for _ in 0..10 {
        let net = random_net(&mut seed, 7, 200);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        let lut = table.query(&net).expect("degree 7 tabulated");
        assert_eq!(lut.cost_vec(), dw.cost_vec(), "mismatch on {net:?}");
    }
}

/// The differential harness at full scale: 600 nets, degrees 3–8 over
/// λ = 6 tables, every fast/slow pair, on two corpus seeds — followed by
/// the mutation self-check proving the oracle detects planted damage.
#[test]
#[ignore = "builds lambda-6 tables and re-enumerates hundreds of DW frontiers"]
fn differential_harness_clean_at_scale() {
    for seed in [0x5eed, 0xfee1_600d] {
        let config = VerifyConfig {
            seed,
            nets: 600,
            ..VerifyConfig::default()
        };
        let report = verify(&config);
        assert!(
            report.is_clean(),
            "divergence at scale (seed {seed:#x}):\n{}",
            report.summary()
        );
        for check in &report.checks {
            assert!(check.nets_checked > 0, "pair {} never ran", check.pair);
        }
        let smoke = mutation_smoke(&config);
        assert!(
            smoke.caught.is_some(),
            "harness missed a planted corruption ({})",
            smoke.mutation
        );
    }
}

/// Pruned vs unpruned DP on degree-8 instances (tens of seconds each).
#[test]
#[ignore = "large exact-DP instances"]
fn pruning_lemmas_hold_at_degree_8() {
    let mut seed = 0x8888;
    for _ in 0..3 {
        let net = random_net(&mut seed, 8, 500);
        let pruned = numeric::pareto_frontier(&net, &DwConfig::default());
        let unpruned = numeric::pareto_frontier(&net, &DwConfig::unpruned());
        assert_eq!(pruned.cost_vec(), unpruned.cost_vec(), "mismatch on {net:?}");
    }
}
