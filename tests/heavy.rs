//! Heavy cross-validation runs, ignored by default.
//!
//! ```sh
//! cargo test --release --test heavy -- --ignored
//! ```

use patlabor::{LutBuilder, Net, Point};
use patlabor_dw::{numeric, oracle, DwConfig};

fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
    let mut rng = move || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    Net::new(
        (0..degree)
            .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
            .collect(),
    )
    .unwrap()
}

/// Full-Steiner exhaustive oracle vs the DP at degree 5 (minutes).
#[test]
#[ignore = "minutes-long exhaustive enumeration"]
fn oracle_agrees_with_dw_on_degree_5() {
    let mut seed = 0x5eed5;
    for _ in 0..3 {
        let net = random_net(&mut seed, 5, 30);
        let reference = oracle::exhaustive_frontier(&net);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(dw.cost_vec(), reference.cost_vec(), "mismatch on {net:?}");
    }
}

/// λ = 7 table generation + agreement with the DP on random degree-7 nets.
#[test]
#[ignore = "generates the lambda-7 tables (minutes)"]
fn lambda7_table_agrees_with_dw() {
    let table = LutBuilder::new(7).build();
    let mut seed = 0x7ab1e;
    for _ in 0..10 {
        let net = random_net(&mut seed, 7, 200);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        let lut = table.query(&net).expect("degree 7 tabulated");
        assert_eq!(lut.cost_vec(), dw.cost_vec(), "mismatch on {net:?}");
    }
}

/// Pruned vs unpruned DP on degree-8 instances (tens of seconds each).
#[test]
#[ignore = "large exact-DP instances"]
fn pruning_lemmas_hold_at_degree_8() {
    let mut seed = 0x8888;
    for _ in 0..3 {
        let net = random_net(&mut seed, 8, 500);
        let pruned = numeric::pareto_frontier(&net, &DwConfig::default());
        let unpruned = numeric::pareto_frontier(&net, &DwConfig::unpruned());
        assert_eq!(pruned.cost_vec(), unpruned.cost_vec(), "mismatch on {net:?}");
    }
}
