//! Cross-crate exactness: the brute-force oracle, the numeric Pareto-DW,
//! the lookup tables and the PatLabor router must all agree on small nets.

use std::sync::OnceLock;

use patlabor::{LutBuilder, Net, PatLabor, Point};
use patlabor_dw::{numeric, oracle, DwConfig};

fn router() -> &'static PatLabor {
    static ROUTER: OnceLock<PatLabor> = OnceLock::new();
    ROUTER.get_or_init(PatLabor::new)
}

fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
    let mut rng = move || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    Net::new(
        (0..degree)
            .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
            .collect(),
    )
    .unwrap()
}

#[test]
fn oracle_dw_lut_router_agree_on_degree_4() {
    let mut seed = 0xa11ce;
    for _ in 0..8 {
        let net = random_net(&mut seed, 4, 24);
        let reference = oracle::exhaustive_frontier(&net);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        let routed = router().route_frontier(&net);
        assert_eq!(dw.cost_vec(), reference.cost_vec(), "DW vs oracle on {net:?}");
        assert_eq!(routed.cost_vec(), reference.cost_vec(), "router vs oracle");
    }
}

#[test]
fn dw_lut_router_agree_on_degree_5() {
    let mut seed = 0xb0b;
    for _ in 0..12 {
        let net = random_net(&mut seed, 5, 64);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        let routed = router().route_frontier(&net);
        assert_eq!(routed.cost_vec(), dw.cost_vec(), "router vs DW on {net:?}");
    }
}

#[test]
fn freshly_built_lambda6_table_agrees_with_dw() {
    let table = LutBuilder::new(6).build();
    let mut seed = 0xc0de;
    for _ in 0..6 {
        let net = random_net(&mut seed, 6, 100);
        let dw = numeric::pareto_frontier(&net, &DwConfig::default());
        let lut = table.query(&net).expect("degree 6 tabulated");
        assert_eq!(lut.cost_vec(), dw.cost_vec(), "lambda-6 LUT vs DW on {net:?}");
    }
}

#[test]
fn frontier_extremes_match_dedicated_algorithms() {
    // The w-end of the exact frontier is an RSMT; the d-end reaches the
    // arborescence delay bound.
    let mut seed = 0xd00d;
    for _ in 0..8 {
        let net = random_net(&mut seed, 5, 60);
        let frontier = router().route_frontier(&net);
        let rsmt = patlabor_baselines::rsmt::exact_rsmt(&net);
        assert_eq!(
            frontier.min_wirelength().unwrap().0.wirelength,
            rsmt.wirelength(),
            "w-end must be the RSMT on {net:?}"
        );
        // The heuristic FLUTE substitute may be slightly heavier but never
        // lighter.
        assert!(
            patlabor_baselines::rsmt::rsmt_tree(&net).wirelength() >= rsmt.wirelength()
        );
        assert_eq!(
            frontier.min_delay().unwrap().0.delay,
            net.delay_lower_bound(),
            "d-end must reach the SPT bound on {net:?}"
        );
    }
}

#[test]
fn every_baseline_solution_is_dominated_by_the_exact_frontier() {
    use patlabor_baselines::{pd, salt, weighted_sum};
    let mut seed = 0xe88;
    for _ in 0..6 {
        let net = random_net(&mut seed, 5, 80);
        let frontier = router().route_frontier(&net);
        let mut produced = Vec::new();
        produced.extend(salt::salt_pareto(&net, &salt::DEFAULT_EPSILONS).costs());
        produced.extend(pd::pd_pareto(&net, &pd::DEFAULT_ALPHAS).costs());
        produced.extend(
            weighted_sum::weighted_sum_pareto(&net, &weighted_sum::DEFAULT_BETAS).costs(),
        );
        for cost in produced {
            assert!(
                frontier.dominated(cost),
                "baseline produced {cost} not dominated by the exact frontier of {net:?}"
            );
        }
    }
}
