//! Integration tests for the v3 lookup-table query kernel: dot-product
//! scores must reproduce numeric Pareto-DW exactly, trees must only be
//! built for frontier survivors, and tables must survive a save/load
//! round trip bit-for-bit (the CI `lut-roundtrip` step runs the
//! `lut_roundtrip_` tests against a freshly built λ=5 file).

use std::sync::OnceLock;

use patlabor_dw::{numeric, DwConfig};
use patlabor_geom::{Net, Point};
use patlabor_lut::{LookupTable, LutBuilder};

fn table6() -> &'static LookupTable {
    static TABLE: OnceLock<LookupTable> = OnceLock::new();
    TABLE.get_or_init(|| LutBuilder::new(6).build())
}

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

fn random_net(rng: &mut impl FnMut() -> u64, degree: usize, span: u64) -> Net {
    loop {
        let pins: Vec<Point> = (0..degree)
            .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
            .collect();
        if let Ok(net) = Net::new(pins) {
            return net;
        }
    }
}

#[test]
fn v3_query_matches_numeric_dw_for_degrees_3_to_6() {
    let table = table6();
    let mut rng = xorshift(0x9e37_79b9_7f4a_7c15);
    for trial in 0..80 {
        let degree = 3 + trial % 4; // 3, 4, 5, 6
        let net = random_net(&mut rng, degree, 64);
        let expected = numeric::pareto_frontier(&net, &DwConfig::default());
        let got = table.query(&net).expect("degree within lambda");
        assert_eq!(
            got.cost_vec(),
            expected.cost_vec(),
            "dot-product frontier diverged from numeric DW on {:?}",
            net.pins()
        );
        for (c, t) in got.iter() {
            t.validate(&net).unwrap();
            assert_eq!(
                (c.wirelength, c.delay),
                t.objectives(),
                "witness tree must realize its advertised cost"
            );
        }
    }
}

#[test]
fn v3_query_matches_the_materialize_all_reference_path() {
    let table = table6();
    let mut rng = xorshift(0x0123_4567_89ab_cdef);
    for trial in 0..40 {
        let degree = 3 + trial % 4;
        let net = random_net(&mut rng, degree, 48);
        let class = table.classify(&net).unwrap();
        let fast = table.query_witnesses(&net, &class).unwrap().0;
        let reference = table.query_materialize_all(&net, &class).unwrap();
        assert_eq!(fast.cost_vec(), reference.cost_vec());
    }
}

#[test]
fn trees_are_materialized_only_for_frontier_survivors() {
    let table = table6();
    let mut rng = xorshift(0xfeed_f00d_dead_beef);
    let mut saw_pruning = false;
    for trial in 0..30 {
        let degree = 5 + trial % 2; // 5, 6 — degrees with big candidate pools
        let net = random_net(&mut rng, degree, 64);
        let class = table.classify(&net).unwrap();
        let candidates = table.candidate_ids(&class).unwrap().len();
        let before = LookupTable::thread_materializations();
        let (frontier, winners) = table.query_witnesses(&net, &class).unwrap();
        let built = LookupTable::thread_materializations() - before;
        assert_eq!(
            built,
            frontier.len() as u64,
            "query must materialize exactly one tree per frontier point"
        );
        assert_eq!(winners.len(), frontier.len());
        if candidates > frontier.len() {
            saw_pruning = true;
        }
    }
    assert!(
        saw_pruning,
        "test nets must exercise dominated candidates, else the assertion is vacuous"
    );
}

#[test]
fn lut_roundtrip_mmap_backing_answers_like_the_owned_one() {
    let table = LutBuilder::new(5).build();
    let dir = std::env::temp_dir().join("patlabor_lut_v3_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip5_mmap.plut");
    table.save(&path).unwrap();
    let mapped = LookupTable::open_mmap(&path).unwrap();
    assert_eq!(mapped.backing(), patlabor_lut::Backing::Mapped);
    assert_eq!(mapped, table);

    // Full query parity — frontiers and witness trees — between the
    // zero-copy mapping and the in-memory build it came from.
    let mut rng = xorshift(0x5eed_cafe_f00d_1234);
    for trial in 0..30 {
        let degree = 3 + trial % 3; // 3, 4, 5
        let net = random_net(&mut rng, degree, 40);
        let owned = table.query(&net).expect("degree within lambda");
        let zero_copy = mapped.query(&net).expect("degree within lambda");
        assert_eq!(owned, zero_copy);
    }
    drop(mapped);
    std::fs::remove_file(&path).ok();
}

#[test]
fn lut_roundtrip_reload_preserves_table_and_answers() {
    let table = LutBuilder::new(5).build();
    let dir = std::env::temp_dir().join("patlabor_lut_v3_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip5.plut");
    table.save(&path).unwrap();
    let reloaded = LookupTable::load(&path).unwrap();
    assert_eq!(reloaded, table);

    // Reloaded tables answer queries identically to numeric DW — the
    // cost rows and CSR ids survived serialization intact.
    let mut rng = xorshift(0xabad_1dea_0c0f_fee5);
    for trial in 0..30 {
        let degree = 3 + trial % 3; // 3, 4, 5
        let net = random_net(&mut rng, degree, 40);
        let expected = numeric::pareto_frontier(&net, &DwConfig::default());
        let got = reloaded.query(&net).expect("degree within lambda");
        assert_eq!(got.cost_vec(), expected.cost_vec());
    }
    std::fs::remove_file(&path).ok();
}
