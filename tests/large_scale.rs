//! End-to-end behaviour on realistic workloads: an ICCAD-like suite runs
//! through the full router and every structural invariant holds.

use std::sync::OnceLock;

use patlabor::{Cost, PatLabor, RouterConfig};

fn router() -> &'static PatLabor {
    static ROUTER: OnceLock<PatLabor> = OnceLock::new();
    ROUTER.get_or_init(|| {
        PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        })
    })
}

#[test]
fn iccad_like_suite_routes_cleanly() {
    let nets = patlabor_netgen::iccad_like_suite(0x5ca1e, 40, 25);
    for net in &nets {
        let frontier = router().route_frontier(net);
        assert!(!frontier.is_empty(), "empty frontier on {net:?}");
        // Frontier invariants: sorted, strictly tradeoff-shaped, exact
        // witness costs, valid trees, physical lower bounds respected.
        let costs = frontier.cost_vec();
        for w in costs.windows(2) {
            assert!(w[0].wirelength < w[1].wirelength);
            assert!(w[0].delay > w[1].delay);
        }
        for (c, t) in frontier.iter() {
            t.validate(net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
            assert!(c.delay >= net.delay_lower_bound());
            assert!(c.wirelength >= net.hpwl());
        }
    }
}

#[test]
fn routing_is_deterministic() {
    let nets = patlabor_netgen::iccad_like_suite(0xdead, 10, 20);
    for net in &nets {
        let a = router().route_frontier(net).cost_vec();
        let b = router().route_frontier(net).cost_vec();
        assert_eq!(a, b, "non-deterministic routing on {net:?}");
    }
}

#[test]
fn budget_driven_selection_workflow() {
    // The global-routing workflow: pick per net the lightest tree within
    // a delay budget; the pick must be feasible whenever the budget is at
    // least the physical lower bound times the frontier's fast end.
    let nets = patlabor_netgen::iccad_like_suite(0xbead, 20, 20);
    for net in &nets {
        let frontier = router().route_frontier(net);
        let budget = frontier.min_delay().expect("non-empty").0.delay;
        let pick = frontier
            .iter()
            .find(|(c, _)| c.delay <= budget)
            .expect("the fast end always meets its own delay");
        // The pick is the lightest such tree: nothing cheaper qualifies.
        for (c, _) in frontier.iter() {
            if c.wirelength < pick.0.wirelength {
                assert!(c.delay > budget);
            }
        }
    }
}

#[test]
fn local_search_beats_single_solution_baselines_somewhere() {
    // On every large net the PatLabor set must contain a point at least
    // as good as the RSMT in wirelength AND a point at least as good as
    // PD(α=1) in delay.
    let nets: Vec<_> = patlabor_netgen::iccad_like_suite(0xfeed, 60, 30)
        .into_iter()
        .filter(|n| n.degree() > 8)
        .take(5)
        .collect();
    assert!(!nets.is_empty());
    for net in &nets {
        let frontier = router().route_frontier(net);
        let rsmt = patlabor_baselines::rsmt::rsmt_tree(net);
        let (w_end, _) = frontier.min_wirelength().unwrap();
        assert!(
            w_end.wirelength <= rsmt.wirelength(),
            "lost to the RSMT seed on {net:?}"
        );
        let dijkstra = patlabor_baselines::pd::pd_tree(net, 1.0);
        let (d_end, _) = frontier.min_delay().unwrap();
        assert!(
            d_end.delay <= dijkstra.delay() + dijkstra.delay() / 4,
            "delay end far behind Dijkstra on {net:?}"
        );
    }
}

#[test]
fn pareto_ks_and_local_search_are_both_usable() {
    let net = patlabor_netgen::iccad_like_suite(0xaaaa, 40, 30)
        .into_iter()
        .find(|n| n.degree() >= 12)
        .expect("suite contains a large net");
    let ls = router().route_frontier(&net);
    let ks = patlabor::ks::pareto_ks(&net, &router().table());
    assert!(!ls.is_empty() && !ks.is_empty());
    // Both are valid candidate sets; their union is still a frontier of
    // valid trees.
    let mut merged = ls.clone();
    merged.merge(ks);
    for (c, t) in merged.iter() {
        t.validate(&net).unwrap();
        assert_eq!((c.wirelength, c.delay), t.objectives());
    }
}

#[test]
fn degenerate_nets_route() {
    use patlabor::{Net, Point};
    // All pins on a line, duplicated pins, two-pin nets.
    let cases = vec![
        Net::new(vec![Point::new(0, 0), Point::new(5, 0), Point::new(9, 0)]).unwrap(),
        Net::new(vec![Point::new(3, 3), Point::new(3, 3), Point::new(3, 3)]).unwrap(),
        Net::new(vec![Point::new(0, 0), Point::new(0, 7)]).unwrap(),
        Net::new(vec![
            Point::new(2, 2),
            Point::new(2, 2),
            Point::new(8, 1),
            Point::new(8, 1),
        ])
        .unwrap(),
    ];
    for net in &cases {
        let frontier = router().route_frontier(net);
        assert!(!frontier.is_empty(), "degenerate net failed: {net:?}");
        for (c, t) in frontier.iter() {
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }
    // A fully degenerate net costs nothing.
    let zero = router().route_frontier(&cases[1]);
    assert_eq!(zero.cost_vec(), vec![Cost::new(0, 0)]);
}
