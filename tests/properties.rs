//! Property-based integration tests across the crates.

use std::sync::OnceLock;

use patlabor::{Net, PatLabor, Point};
use patlabor_dw::{numeric, DwConfig};
use patlabor_tree::{reconnect_pass, remove_redundant_steiner, RefineObjective};
use proptest::prelude::*;

fn router() -> &'static PatLabor {
    static ROUTER: OnceLock<PatLabor> = OnceLock::new();
    ROUTER.get_or_init(PatLabor::new)
}

fn arb_net(degree: usize, span: i64) -> impl Strategy<Value = Net> {
    proptest::collection::vec((0..span, 0..span), degree)
        .prop_map(|pts| Net::new(pts.into_iter().map(Point::from).collect()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The router's answer for degree ≤ 5 equals the exact DP, point for
    /// point, for arbitrary (possibly degenerate) pin placements.
    #[test]
    fn router_is_exact_up_to_lambda(net in arb_net(5, 40)) {
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        let routed = router().route(&net);
        prop_assert_eq!(routed.cost_vec(), exact.cost_vec());
    }

    /// DW pruning lemmas never change the frontier (arbitrary degree-5
    /// instances, including coordinate ties).
    #[test]
    fn pruning_lemmas_are_exact(net in arb_net(5, 30)) {
        let pruned = numeric::pareto_frontier(&net, &DwConfig::default());
        let unpruned = numeric::pareto_frontier(&net, &DwConfig::unpruned());
        prop_assert_eq!(pruned.cost_vec(), unpruned.cost_vec());
    }

    /// Refinement passes never worsen either objective and preserve
    /// validity.
    #[test]
    fn refinement_is_safe(net in arb_net(8, 60)) {
        let tree = patlabor_baselines::rsmt::rsmt_tree(&net);
        let (w0, d0) = tree.objectives();
        for pass in [RefineObjective::Wirelength, RefineObjective::Delay] {
            let refined = reconnect_pass(&tree, pass);
            refined.validate(&net).unwrap();
            let (w, d) = refined.objectives();
            prop_assert!(w <= w0 && d <= d0, "pass {pass:?} worsened ({w0},{d0})→({w},{d})");
        }
        let slim = remove_redundant_steiner(&tree);
        let (w, d) = slim.objectives();
        prop_assert!(w <= w0 && d <= d0);
    }

    /// The arborescence always achieves the delay lower bound and never
    /// exceeds star wirelength; the MST never beats the exact RSMT.
    #[test]
    fn baseline_extremes_bracket_the_frontier(net in arb_net(6, 50)) {
        let frontier = numeric::pareto_frontier(&net, &DwConfig::default());
        let arb = patlabor_baselines::rsma::cl_arborescence(&net);
        prop_assert_eq!(arb.delay(), net.delay_lower_bound());
        let (w_end, _) = frontier.min_wirelength().unwrap();
        let mst = patlabor_baselines::rsmt::prim_mst(&net);
        prop_assert!(w_end.wirelength <= mst.wirelength());
        let (d_end, _) = frontier.min_delay().unwrap();
        prop_assert_eq!(d_end.delay, net.delay_lower_bound());
        prop_assert!(w_end.wirelength <= arb.wirelength());
    }

    /// Translating a net translates nothing observable: objectives are
    /// translation invariant.
    #[test]
    fn objectives_are_translation_invariant(net in arb_net(5, 40),
                                            dx in -500i64..500, dy in -500i64..500) {
        let moved = net.map_points(|p| Point::new(p.x + dx, p.y + dy));
        let a = router().route(&net).cost_vec();
        let b = router().route(&moved).cost_vec();
        prop_assert_eq!(a, b);
    }

    /// Mirror/transpose symmetry: transforming the plane transforms the
    /// trees but not the frontier.
    #[test]
    fn objectives_are_symmetry_invariant(net in arb_net(5, 40)) {
        let flipped = net.map_points(|p| Point::new(-p.x, p.y));
        let transposed = net.map_points(Point::transposed);
        let a = router().route(&net).cost_vec();
        prop_assert_eq!(&router().route(&flipped).cost_vec(), &a);
        prop_assert_eq!(&router().route(&transposed).cost_vec(), &a);
    }

    /// Scaling all coordinates by a positive factor scales both
    /// objectives by the same factor.
    #[test]
    fn objectives_scale_linearly(net in arb_net(5, 40), k in 1i64..8) {
        let scaled = net.map_points(|p| Point::new(p.x * k, p.y * k));
        let a = router().route(&net).cost_vec();
        let b = router().route(&scaled).cost_vec();
        prop_assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(&b) {
            prop_assert_eq!(ca.wirelength * k, cb.wirelength);
            prop_assert_eq!(ca.delay * k, cb.delay);
        }
    }
}
