//! Property-based integration tests across the crates.

use std::sync::OnceLock;

use patlabor::cache::CacheKey;
use patlabor::{Net, PatLabor, Point};
use patlabor_dw::{numeric, DwConfig};
use patlabor_geom::{NetClass, Pattern};
use patlabor_tree::{reconnect_pass, remove_redundant_steiner, RefineObjective};
use proptest::prelude::*;

fn router() -> &'static PatLabor {
    static ROUTER: OnceLock<PatLabor> = OnceLock::new();
    ROUTER.get_or_init(PatLabor::new)
}

fn arb_net(degree: usize, span: i64) -> impl Strategy<Value = Net> {
    proptest::collection::vec((0..span, 0..span), degree)
        .prop_map(|pts| Net::new(pts.into_iter().map(Point::from).collect()).unwrap())
}

/// A degree-5 net in general position: all x distinct, all y distinct.
///
/// Rank-pattern canonicalization breaks coordinate ties by pin order, so
/// a tied net and its mirror image can land in different rank patterns —
/// D4 invariance of the `NetClass` is only promised (and only needed: the
/// frontier itself stays symmetric either way, see
/// `objectives_are_symmetry_invariant`) for nets without ties.
fn arb_general_position_net(span: i64) -> impl Strategy<Value = Net> {
    proptest::collection::vec((0..span, 0..span), 5).prop_map(|pts| {
        let pins = pts
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(x * 5 + i as i64, y * 5 + i as i64))
            .collect();
        Net::new(pins).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The router's answer for degree ≤ 5 equals the exact DP, point for
    /// point, for arbitrary (possibly degenerate) pin placements.
    #[test]
    fn router_is_exact_up_to_lambda(net in arb_net(5, 40)) {
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        let routed = router().route_frontier(&net);
        prop_assert_eq!(routed.cost_vec(), exact.cost_vec());
    }

    /// DW pruning lemmas never change the frontier (arbitrary degree-5
    /// instances, including coordinate ties).
    #[test]
    fn pruning_lemmas_are_exact(net in arb_net(5, 30)) {
        let pruned = numeric::pareto_frontier(&net, &DwConfig::default());
        let unpruned = numeric::pareto_frontier(&net, &DwConfig::unpruned());
        prop_assert_eq!(pruned.cost_vec(), unpruned.cost_vec());
    }

    /// Refinement passes never worsen either objective and preserve
    /// validity.
    #[test]
    fn refinement_is_safe(net in arb_net(8, 60)) {
        let tree = patlabor_baselines::rsmt::rsmt_tree(&net);
        let (w0, d0) = tree.objectives();
        for pass in [RefineObjective::Wirelength, RefineObjective::Delay] {
            let refined = reconnect_pass(&tree, pass);
            refined.validate(&net).unwrap();
            let (w, d) = refined.objectives();
            prop_assert!(w <= w0 && d <= d0, "pass {pass:?} worsened ({w0},{d0})→({w},{d})");
        }
        let slim = remove_redundant_steiner(&tree);
        let (w, d) = slim.objectives();
        prop_assert!(w <= w0 && d <= d0);
    }

    /// The arborescence always achieves the delay lower bound and never
    /// exceeds star wirelength; the MST never beats the exact RSMT.
    #[test]
    fn baseline_extremes_bracket_the_frontier(net in arb_net(6, 50)) {
        let frontier = numeric::pareto_frontier(&net, &DwConfig::default());
        let arb = patlabor_baselines::rsma::cl_arborescence(&net);
        prop_assert_eq!(arb.delay(), net.delay_lower_bound());
        let (w_end, _) = frontier.min_wirelength().unwrap();
        let mst = patlabor_baselines::rsmt::prim_mst(&net);
        prop_assert!(w_end.wirelength <= mst.wirelength());
        let (d_end, _) = frontier.min_delay().unwrap();
        prop_assert_eq!(d_end.delay, net.delay_lower_bound());
        prop_assert!(w_end.wirelength <= arb.wirelength());
    }

    /// Translating a net translates nothing observable: objectives are
    /// translation invariant.
    #[test]
    fn objectives_are_translation_invariant(net in arb_net(5, 40),
                                            dx in -500i64..500, dy in -500i64..500) {
        let moved = net.map_points(|p| Point::new(p.x + dx, p.y + dy));
        let a = router().route_frontier(&net).cost_vec();
        let b = router().route_frontier(&moved).cost_vec();
        prop_assert_eq!(a, b);
    }

    /// Mirror/transpose symmetry: transforming the plane transforms the
    /// trees but not the frontier.
    #[test]
    fn objectives_are_symmetry_invariant(net in arb_net(5, 40)) {
        let flipped = net.map_points(|p| Point::new(-p.x, p.y));
        let transposed = net.map_points(Point::transposed);
        let a = router().route_frontier(&net).cost_vec();
        prop_assert_eq!(&router().route_frontier(&flipped).cost_vec(), &a);
        prop_assert_eq!(&router().route_frontier(&transposed).cost_vec(), &a);
    }

    /// The standalone canonicalizer and the LUT's classification stage
    /// are the same function: identical canonical key, identical gap
    /// vector, and therefore identical cache keys — the invariant the
    /// frontier cache and the LUT replay both rest on.
    #[test]
    fn netclass_and_lut_classification_agree(net in arb_net(5, 40)) {
        let standalone = NetClass::of(&net).expect("degree ≤ 16 always classifies");
        let via_table = router().table().classify(&net).expect("degree ≤ λ");
        prop_assert_eq!(standalone.canonical_key(), via_table.canonical_key());
        prop_assert_eq!(standalone.canonical_gaps(), via_table.canonical_gaps());
        prop_assert_eq!(standalone.degree(), via_table.degree());
        // Cache keys derive from the class and only the class.
        prop_assert_eq!(
            CacheKey::from_class(&standalone),
            CacheKey::new(via_table.canonical_key(), via_table.canonical_gaps())
        );
    }

    /// All 8 D4 images of a net classify to one `NetClass` (same key,
    /// same gaps, same cache key), and each image's inverse transform
    /// maps the shared canonical pins back onto that image's own pins.
    #[test]
    fn netclass_is_d4_invariant_with_correct_inverse(net in arb_general_position_net(40)) {
        let base = NetClass::of(&net).expect("degree ≤ 16 always classifies");
        let images: [fn(Point) -> Point; 8] = [
            |p| p,
            |p| Point::new(-p.x, p.y),
            |p| Point::new(p.x, -p.y),
            |p| Point::new(-p.x, -p.y),
            |p| Point::new(p.y, p.x),
            |p| Point::new(-p.y, p.x),
            |p| Point::new(p.y, -p.x),
            |p| Point::new(-p.y, -p.x),
        ];
        for (i, f) in images.iter().enumerate() {
            let image = net.map_points(f);
            let class = NetClass::of(&image).expect("degree ≤ 16 always classifies");
            prop_assert_eq!(class.canonical_key(), base.canonical_key(), "image {}", i);
            prop_assert_eq!(class.canonical_gaps(), base.canonical_gaps(), "image {}", i);
            prop_assert_eq!(
                CacheKey::from_class(&class),
                CacheKey::from_class(&base),
                "image {}", i
            );
            // The inverse must land the canonical pins on this image's
            // own pins (the materialization correctness condition).
            let (pattern, _) = Pattern::from_net(&image);
            let (canonical, _) = pattern.canonical();
            let mut mapped: Vec<Point> = canonical
                .pin_nodes()
                .into_iter()
                .map(|nd| class.instance_point(nd))
                .collect();
            mapped.sort_unstable();
            let mut expected: Vec<Point> = image.pins().to_vec();
            expected.sort_unstable();
            prop_assert_eq!(mapped, expected, "image {}", i);
        }
    }

    /// Scaling all coordinates by a positive factor scales both
    /// objectives by the same factor.
    #[test]
    fn objectives_scale_linearly(net in arb_net(5, 40), k in 1i64..8) {
        let scaled = net.map_points(|p| Point::new(p.x * k, p.y * k));
        let a = router().route_frontier(&net).cost_vec();
        let b = router().route_frontier(&scaled).cost_vec();
        prop_assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(&b) {
            prop_assert_eq!(ca.wirelength * k, cb.wirelength);
            prop_assert_eq!(ca.delay * k, cb.delay);
        }
    }
}
