//! Facade crate for the PatLabor reproduction workspace.
//!
//! Re-exports every member crate under one roof so that examples and
//! integration tests can `use patlabor_suite::...`. Library users normally
//! depend on the individual crates (most importantly [`patlabor`]) directly.

pub use patlabor;
pub use patlabor_baselines as baselines;
pub use patlabor_bookshelf as bookshelf;
pub use patlabor_dw as dw;
pub use patlabor_geom as geom;
pub use patlabor_groute as groute;
pub use patlabor_lp as lp;
pub use patlabor_lut as lut;
pub use patlabor_netgen as netgen;
pub use patlabor_pareto as pareto;
pub use patlabor_tree as tree;
