#!/bin/sh
# Regenerates every paper table/figure plus the extension experiments.
# Output is appended to bench_output.txt by the caller.
set -e
for bin in fig6 table2 table3 table4 fig7a fig7b fig7c theorem1 smoothed ablation elmore train_policy; do
  echo ""
  echo "================================================================"
  echo "== experiment: $bin"
  echo "================================================================"
  cargo run -q --release -p patlabor-bench --bin "$bin"
done
