//! Quickstart: route one net, inspect its Pareto frontier, and pick a
//! tree — the Fig. 1 / Fig. 2 workflow of the paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use patlabor::{Net, PatLabor, Point, RouteSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A degree-5 net with a genuine wirelength/delay tradeoff.
    let net = Net::new(vec![
        Point::new(19, 2), // source
        Point::new(8, 4),
        Point::new(4, 3),
        Point::new(5, 4),
        Point::new(13, 12),
    ])?;

    // Building the router generates lookup tables for degrees 2..=5;
    // do this once and route millions of nets.
    let router = PatLabor::new();
    let outcome = router.route(&net)?;
    assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
    let frontier = outcome.frontier;

    println!(
        "net degree {}, answered via {}, Pareto frontier:",
        net.degree(),
        outcome.provenance.source,
    );
    for (i, (cost, tree)) in frontier.iter().enumerate() {
        println!(
            "  #{i}: wirelength {:>4}   delay {:>4}   ({} Steiner points)",
            cost.wirelength,
            cost.delay,
            tree.num_nodes() - net.degree(),
        );
    }

    // Downstream flows pick per net: e.g. the lightest tree meeting a
    // delay budget.
    let budget = net.delay_lower_bound() + 1;
    let pick = frontier
        .iter()
        .find(|(c, _)| c.delay <= budget)
        .map(|(c, _)| c)
        .unwrap_or_else(|| frontier.min_delay().expect("non-empty frontier").0);
    println!("\nlightest tree with delay <= {budget}: {pick}");

    // Every frontier point carries a witness tree; print one.
    let (_, tree) = frontier.min_wirelength().expect("non-empty frontier");
    println!("\nwirelength-optimal tree edges:");
    for (a, b) in tree.edge_points() {
        println!("  {a} -- {b}");
    }
    Ok(())
}
