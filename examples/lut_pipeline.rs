//! The lookup-table production pipeline: generate → save → load → query,
//! with Table II style statistics. This is how the λ = 7+ tables are
//! prepared offline and shipped to the router.
//!
//! ```sh
//! cargo run --release --example lut_pipeline
//! ```

use std::time::Instant;

use patlabor::{LookupTable, LutBuilder, Net, PatLabor, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda = 5u8;
    println!("generating lookup tables for degrees 2..={lambda} ...");
    let start = Instant::now();
    let table = LutBuilder::new(lambda).build();
    println!("generated in {:?}\n", start.elapsed());

    println!("degree  #Index  avg #Topo  total topologies  unique (clustered)");
    for stats in table.stats() {
        println!(
            "{:>6}  {:>6}  {:>9.2}  {:>16}  {:>18}",
            stats.degree, stats.num_patterns, stats.avg_topologies,
            stats.total_topologies, stats.unique_topologies
        );
    }

    // Save / load roundtrip — the deployment path.
    let path = std::env::temp_dir().join("patlabor_quickstart.plut");
    table.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("\nserialized to {} ({bytes} bytes)", path.display());
    let start = Instant::now();
    let loaded = LookupTable::load(&path)?;
    println!("reloaded in {:?} (identical: {})", start.elapsed(), loaded == table);

    // Query throughput: the whole point of the tables.
    let router = PatLabor::with_table(loaded);
    let net = Net::new(vec![
        Point::new(0, 0),
        Point::new(40, 15),
        Point::new(12, 33),
        Point::new(28, 5),
        Point::new(7, 21),
    ])?;
    let start = Instant::now();
    let mut points = 0usize;
    let rounds = 2_000;
    for _ in 0..rounds {
        points += router.route_frontier(&net).len();
    }
    let per_net = start.elapsed() / rounds;
    println!(
        "\nexact frontier per degree-5 net: {per_net:?} ({} points)",
        points / rounds as usize
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
