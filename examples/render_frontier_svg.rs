//! Renders every tree of a net's Pareto frontier into one SVG overlay —
//! the visualization behind the paper's Fig. 2 (three Pareto-optimal trees
//! of one net).
//!
//! ```sh
//! cargo run --release --example render_frontier_svg
//! # → writes target/patlabor_frontier.svg
//! ```

use patlabor::{Net, PatLabor, Point};
use patlabor_tree::{render_trees_svg, SvgOptions};

const PALETTE: [&str; 6] = [
    "#1e88e5", "#d81b60", "#43a047", "#fb8c00", "#8e24aa", "#00897b",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Net::new(vec![
        Point::new(19, 2), // source
        Point::new(8, 4),
        Point::new(4, 3),
        Point::new(5, 4),
        Point::new(13, 12),
    ])?;
    let router = PatLabor::new();
    let frontier = router.route_frontier(&net);

    let trees: Vec<_> = frontier
        .iter()
        .enumerate()
        .map(|(i, (_, t))| (t, PALETTE[i % PALETTE.len()]))
        .collect();
    let svg = render_trees_svg(&net, &trees, &SvgOptions::default());

    let path = std::path::Path::new("target").join("patlabor_frontier.svg");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, &svg)?;
    println!("frontier of {} trees:", frontier.len());
    for (i, (cost, _)) in frontier.iter().enumerate() {
        println!("  {} → {cost}", PALETTE[i % PALETTE.len()]);
    }
    println!("wrote {}", path.display());
    Ok(())
}
