//! Timing closure over a synthetic design: the global-routing use case
//! that motivates Pareto sets (paper §I — "selecting net topologies from a
//! candidate solution set may improve the performance of global routers").
//!
//! Routes an ICCAD-like suite of nets, then — per net — picks the lightest
//! frontier tree meeting that net's delay budget, and compares the result
//! against the two single-solution extremes (always-RSMT, always-SPT).
//!
//! ```sh
//! cargo run --release --example timing_closure
//! ```

use patlabor::{PatLabor, RouterConfig};
use patlabor_baselines::{rsma, rsmt};

fn main() {
    let nets = patlabor_netgen::iccad_like_suite(2025, 120, 30);
    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });

    let mut pareto_wire = 0i64;
    let mut pareto_violations = 0usize;
    let mut rsmt_wire = 0i64;
    let mut rsmt_violations = 0usize;
    let mut spt_wire = 0i64;
    let mut spt_violations = 0usize;

    for net in &nets {
        // Per-net delay budget: 10% slack over the physical lower bound.
        let budget = net.delay_lower_bound() + net.delay_lower_bound() / 10;

        let frontier = router.route_frontier(net);
        // Lightest tree meeting the budget, else the fastest available.
        let choice = frontier
            .iter()
            .find(|(c, _)| c.delay <= budget)
            .or_else(|| frontier.min_delay())
            .expect("frontier is never empty");
        pareto_wire += choice.0.wirelength;
        if choice.0.delay > budget {
            pareto_violations += 1;
        }

        let light = rsmt::rsmt_tree(net);
        rsmt_wire += light.wirelength();
        if light.delay() > budget {
            rsmt_violations += 1;
        }

        let fast = rsma::cl_arborescence(net);
        spt_wire += fast.wirelength();
        if fast.delay() > budget {
            spt_violations += 1;
        }
    }

    println!("{} nets, 10% delay slack budgets\n", nets.len());
    println!("strategy                total wirelength   budget violations");
    println!("--------------------------------------------------------------");
    println!("always RSMT (FLUTE*)    {rsmt_wire:>16}   {rsmt_violations:>6}");
    println!("always SPT  (CL)        {spt_wire:>16}   {spt_violations:>6}");
    println!("PatLabor per-net pick   {pareto_wire:>16}   {pareto_violations:>6}");

    let saved = 100.0 * (spt_wire - pareto_wire) as f64 / spt_wire as f64;
    println!(
        "\nPatLabor meets (nearly) every budget like the SPT while saving \
         {saved:.1}% wirelength versus it."
    );
    assert!(pareto_violations <= rsmt_violations);
    assert!(pareto_wire <= spt_wire);
}
