//! Theorem 1 demo: adversarial chains whose Pareto frontier keeps growing
//! with instance size, verified by the exact Pareto-DW.
//!
//! ```sh
//! cargo run --release --example exponential_frontier
//! ```
//! (Chains of up to 3 gadgets run in seconds; the degree-13 chain takes a
//! minute or two — pass `--full` to include it.)

use patlabor_dw::{numeric::pareto_frontier, DwConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let max_gadgets = if full { 4 } else { 3 };
    println!("chained pass-through gadgets (netgen::exponential_frontier_net):\n");
    for m in 1..=max_gadgets {
        let net = patlabor_netgen::exponential_frontier_net(m);
        let frontier = pareto_frontier(&net, &DwConfig::default());
        println!(
            "{m} gadget(s), degree {:>2}: |frontier| = {}",
            net.degree(),
            frontier.len()
        );
        for (c, _) in frontier.iter() {
            println!("    {c}");
        }
    }
    println!(
        "\nEvery gadget adds a pass-through choice (thread the hairpin cheaply, or \
         jump it with extra wire), so the frontier grows with the chain length, while \
         typical random nets of these degrees have frontiers of size 1-5. The paper's \
         Fig. 4 construction pushes the same mechanism to 2^Omega(n) with 11-pin \
         gadgets."
    );
}
