//! Pareto candidates inside a global router — the application the paper's
//! introduction motivates ("selecting net topologies from a candidate
//! solution set may improve the performance of global routers", §I).
//!
//! Routes the same synthetic design three ways on a capacity-limited gcell
//! grid and compares overflow, wirelength and delay-budget violations:
//!
//! * always the RSMT (single-solution wirelength flow),
//! * always the shortest-path tree (single-solution timing flow),
//! * congestion-aware selection from each net's PatLabor Pareto set.
//!
//! ```sh
//! cargo run --release --example global_routing
//! ```

use patlabor::{PatLabor, RouterConfig};
use patlabor_groute::{GlobalRouter, GridConfig, RoutingGrid, SelectionStrategy};

fn main() {
    let nets: Vec<_> = patlabor_netgen::iccad_like_suite(77, 160, 16)
        .into_iter()
        .map(|n| n.dedup_pins())
        .collect();
    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });

    println!(
        "{} nets on a 12x12 gcell grid (tight capacity), 20% delay slack\n",
        nets.len()
    );
    println!("strategy           overflow   wirelength   budget violations   max usage");
    println!("---------------------------------------------------------------------------");
    for (name, strategy) in [
        ("always RSMT     ", SelectionStrategy::MinWirelength),
        ("always SPT      ", SelectionStrategy::MinDelay),
        ("Pareto selection", SelectionStrategy::CongestionAware { slack: 1.2 }),
    ] {
        let mut grid = RoutingGrid::new(GridConfig::square(12, 10_000, 3));
        let report = GlobalRouter::new(&router, strategy).run(&mut grid, &nets);
        println!(
            "{name}   {:>8}   {:>10}   {:>17}   {:>9}",
            report.overflow, report.wirelength, report.budget_violations, report.max_usage
        );
    }
    println!(
        "\nThe candidate-set strategy meets every delay budget (unlike the RSMT \
         flow) at lower congestion and wirelength than the SPT flow — the \
         per-net flexibility a single-solution router cannot offer."
    );
}
