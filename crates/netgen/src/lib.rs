//! Synthetic routing-net generators.
//!
//! The paper evaluates on the ICCAD-15 benchmark (≈1.3 M placed nets),
//! which is proprietary placement data we cannot redistribute. This crate
//! substitutes seeded synthetic suites that reproduce the statistics the
//! experiments actually depend on (see DESIGN.md §4):
//!
//! * [`iccad_like_suite`] — nets whose degree histogram matches the
//!   paper's Table III counts (with the paper's long small-degree tail)
//!   and whose pins are clustered like placed standard cells;
//! * [`smoothed_perturbation`] — κ-smoothed instances of Definition 1, for the
//!   Theorem 2 experiments;
//! * [`uniform_net`] / [`clustered_net`] — plain generators (Fig. 7(c)
//!   uses 100 uniform random degree-100 nets);
//! * [`exponential_frontier_net`] — the Theorem 1 construction: chained
//!   tradeoff gadgets at geometrically growing scales, giving frontiers
//!   that grow exponentially with the gadget count.
//!
//! All generators are deterministic in their seed.

use patlabor_geom::{Net, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform random net: `degree` pins i.i.d. on `[0, span)²`.
///
/// # Panics
///
/// Panics if `degree < 2` or `span < 2`.
pub fn uniform_net(rng: &mut StdRng, degree: usize, span: i64) -> Net {
    assert!(degree >= 2 && span >= 2);
    Net::new(
        (0..degree)
            .map(|_| Point::new(rng.gen_range(0..span), rng.gen_range(0..span)))
            .collect(),
    )
    .expect("degree >= 2")
}

/// A clustered net: pins gather around `clusters` random centers with
/// geometric spread — the shape placement engines produce.
///
/// # Panics
///
/// Panics if `degree < 2`, `span < 16` or `clusters == 0`.
pub fn clustered_net(rng: &mut StdRng, degree: usize, span: i64, clusters: usize) -> Net {
    assert!(degree >= 2 && span >= 16 && clusters >= 1);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen_range(0..span), rng.gen_range(0..span)))
        .collect();
    let spread = (span / 8).max(2);
    let pins = (0..degree)
        .map(|_| {
            let c = centers[rng.gen_range(0..centers.len())];
            let dx = rng.gen_range(-spread..=spread);
            let dy = rng.gen_range(-spread..=spread);
            Point::new(
                (c.x + dx).clamp(0, span - 1),
                (c.y + dy).clamp(0, span - 1),
            )
        })
        .collect();
    Net::new(pins).expect("degree >= 2")
}

/// A κ-smoothed instance (paper Definition 1): every coordinate of `base`
/// is perturbed uniformly within an interval of width `resolution / κ`
/// centered on its adversarial position — i.e. each coordinate's density
/// is at most `κ / resolution`, the integer-grid version of the paper's
/// "density at most κ on `[0, 1]`".
///
/// `κ → ∞` keeps the adversarial instance (worst case); `κ = 1` smears
/// each coordinate over the whole range (average case).
///
/// # Panics
///
/// Panics if `kappa < 1.0` or `resolution < 4`.
pub fn smoothed_perturbation(rng: &mut StdRng, base: &Net, kappa: f64, resolution: i64) -> Net {
    assert!(kappa >= 1.0 && resolution >= 4);
    let half = ((resolution as f64 / kappa) / 2.0).floor() as i64;
    base.map_points(|p| {
        let dx = if half > 0 { rng.gen_range(-half..=half) } else { 0 };
        let dy = if half > 0 { rng.gen_range(-half..=half) } else { 0 };
        Point::new(p.x + dx, p.y + dy)
    })
}

/// The degree histogram of the paper's Table III (counts per degree for
/// 4–9), used as sampling weights by [`iccad_like_suite`].
pub const TABLE3_DEGREE_COUNTS: [(usize, u64); 6] = [
    (4, 364_670),
    (5, 256_663),
    (6, 103_199),
    (7, 75_055),
    (8, 42_879),
    (9, 62_449),
];

/// Samples a net degree following the ICCAD-15-like distribution:
/// Table III weights for 4–9 plus a geometric tail up to `max_degree`
/// (the paper notes most nets have < 50 pins).
pub fn sample_degree(rng: &mut StdRng, max_degree: usize) -> usize {
    // ~88% of (non-trivial) nets are degree ≤ 9 in Table III; give the
    // tail the remaining mass with a geometric decay.
    let small_total: u64 = TABLE3_DEGREE_COUNTS.iter().map(|&(_, c)| c).sum();
    let tail_mass = small_total / 8;
    let pick = rng.gen_range(0..small_total + tail_mass);
    if pick < small_total {
        let mut acc = 0;
        for &(d, c) in &TABLE3_DEGREE_COUNTS {
            acc += c;
            if pick < acc {
                return d;
            }
        }
        unreachable!("histogram covers the range");
    }
    // Geometric tail 10..=max_degree.
    let mut d = 10usize;
    while d < max_degree && rng.gen_bool(0.85) {
        d += 1;
    }
    d
}

/// Generates a seeded ICCAD-15-like suite of `count` nets with degrees up
/// to `max_degree`.
///
/// # Example
///
/// ```
/// let suite = patlabor_netgen::iccad_like_suite(7, 100, 50);
/// assert_eq!(suite.len(), 100);
/// assert!(suite.iter().all(|n| n.degree() >= 4 && n.degree() <= 50));
/// ```
pub fn iccad_like_suite(seed: u64, count: usize, max_degree: usize) -> Vec<Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let degree = sample_degree(&mut rng, max_degree);
            let clusters = 1 + degree / 12;
            clustered_net(&mut rng, degree, 10_000, clusters)
        })
        .collect()
}

/// The Theorem 1 style construction: `gadgets` chained *pass-through*
/// tradeoff gadgets at geometrically growing scales (factor 2 per level).
///
/// Each gadget is a hairpin whose light routing threads through its pins
/// (cheap wire, long pass-through path) and whose fast routing jumps the
/// hairpin (extra wire, shortest path); everything placed beyond a gadget
/// inherits its pass-through choice, so the frontier grows with the chain
/// length (exact-DP-verified: `|F| = m` for `m` gadgets at degree
/// `3m + 1`). The paper's Fig. 4 uses 11-pin "S" gadgets to reach the
/// full `2^Ω(n)` bound; the figure-level geometry is not in the text, so
/// this compact verified family demonstrates the same serial-tradeoff
/// mechanism at degrees the exact DP can check (see DESIGN.md §4).
///
/// Degree is `3·gadgets + 1`.
///
/// # Panics
///
/// Panics if `gadgets` is 0 or greater than 8 (the exact DP verifies up
/// to 4; larger chains are for heuristic experiments).
pub fn exponential_frontier_net(gadgets: usize) -> Net {
    assert!((1..=8).contains(&gadgets), "1..=8 gadgets supported");
    // Hairpin gadget relative to its entry; the exit (0, 14) is the next
    // gadget's entry.
    const GADGET: [(i64, i64); 3] = [(8, 0), (4, 8), (0, 14)];
    const EXIT: (i64, i64) = (0, 14);
    let mut pins = vec![Point::new(0, 0)];
    let mut origin = Point::new(0, 0);
    let mut scale = 1i64;
    for _ in 0..gadgets {
        for &(x, y) in &GADGET {
            pins.push(Point::new(origin.x + scale * x, origin.y + scale * y));
        }
        origin = Point::new(origin.x + scale * EXIT.0, origin.y + scale * EXIT.1);
        scale *= 2;
    }
    Net::new(pins).expect("at least one gadget")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = iccad_like_suite(42, 50, 40);
        let b = iccad_like_suite(42, 50, 40);
        assert_eq!(a, b);
        let c = iccad_like_suite(43, 50, 40);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_net_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let n = uniform_net(&mut rng, 10, 100);
            assert_eq!(n.degree(), 10);
            for p in n.pins() {
                assert!((0..100).contains(&p.x) && (0..100).contains(&p.y));
            }
        }
    }

    #[test]
    fn clustered_nets_are_tighter_than_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut clustered_hpwl = 0i64;
        let mut uniform_hpwl = 0i64;
        for _ in 0..30 {
            clustered_hpwl += clustered_net(&mut rng, 12, 10_000, 2).hpwl();
            uniform_hpwl += uniform_net(&mut rng, 12, 10_000).hpwl();
        }
        assert!(clustered_hpwl < uniform_hpwl);
    }

    #[test]
    fn smoothed_kappa_controls_perturbation_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = clustered_net(&mut rng, 8, 10_000, 1);
        let displacement = |net: &Net| -> i64 {
            net.pins()
                .iter()
                .zip(base.pins())
                .map(|(a, b)| a.l1(*b))
                .sum()
        };
        let mut strong = 0i64; // kappa = 2: wide noise
        let mut weak = 0i64; // kappa = 200: narrow noise
        for _ in 0..30 {
            strong += displacement(&smoothed_perturbation(&mut rng, &base, 2.0, 10_000));
            weak += displacement(&smoothed_perturbation(&mut rng, &base, 200.0, 10_000));
        }
        assert!(weak < strong, "higher kappa must mean less noise");
        // kappa → ∞ keeps the instance unchanged.
        let frozen = smoothed_perturbation(&mut rng, &base, 1e9, 10_000);
        assert_eq!(frozen, base);
    }

    #[test]
    fn degree_distribution_matches_table3_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut hist = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *hist.entry(sample_degree(&mut rng, 60)).or_insert(0u32) += 1;
        }
        // Degree 4 is the most common; degree 5 beats degree 6; a tail
        // exists but is small.
        assert!(hist[&4] > hist[&5]);
        assert!(hist[&5] > hist[&6]);
        let tail: u32 = hist.iter().filter(|&(&d, _)| d >= 10).map(|(_, &c)| c).sum();
        assert!(tail > 0);
        assert!((tail as f64) < 0.25 * 20_000.0);
        assert!(hist.keys().all(|&d| (4..=60).contains(&d)));
    }

    #[test]
    fn gadget_net_degrees() {
        assert_eq!(exponential_frontier_net(1).degree(), 4);
        assert_eq!(exponential_frontier_net(2).degree(), 7);
        assert_eq!(exponential_frontier_net(4).degree(), 13);
    }

    #[test]
    fn gadget_chain_frontier_grows_with_length() {
        // Exact-DP-verified frontier sizes: |F| = m for m = 2, 3.
        for m in 2..=3usize {
            let net = exponential_frontier_net(m);
            let f = patlabor_dw::numeric::pareto_frontier(
                &net,
                &patlabor_dw::DwConfig::default(),
            );
            assert_eq!(
                f.len(),
                m,
                "chain of {m} gadgets should have an {m}-point frontier, got {:?}",
                f.cost_vec()
            );
        }
    }
}
