//! The `(w, d)` objective vector.

use std::fmt;
use std::ops::Add;

/// The objective pair of a routing tree: total wirelength `w` and maximum
/// source→sink path length `d` (paper notation `s(T) = (w(T), d(T))`).
///
/// Both objectives are exact integers (database units), so dominance is an
/// exact comparison with no floating-point tolerance.
///
/// # Example
///
/// ```
/// use patlabor_pareto::Cost;
///
/// let a = Cost::new(10, 20);
/// let b = Cost::new(12, 20);
/// assert!(a.dominates(b));
/// assert!(a.dominates(a));          // dominance is reflexive (weak)
/// assert!(!b.dominates(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cost {
    /// Total wirelength `w(T)`.
    pub wirelength: i64,
    /// Delay `d(T)`: maximum source→sink path length.
    pub delay: i64,
}

impl Cost {
    /// Creates an objective pair.
    #[inline]
    pub const fn new(wirelength: i64, delay: i64) -> Self {
        Cost { wirelength, delay }
    }

    /// Weak Pareto dominance `self ⪯ other`: no worse in both objectives.
    #[inline]
    pub fn dominates(self, other: Cost) -> bool {
        self.wirelength <= other.wirelength && self.delay <= other.delay
    }

    /// Strict dominance: `self ⪯ other` and better in at least one
    /// objective.
    #[inline]
    pub fn strictly_dominates(self, other: Cost) -> bool {
        self.dominates(other) && self != other
    }

    /// Shifts both objectives by `x` — the `S + x` operation of Eq. (1)
    /// applied to one solution (growing the tree by an edge of length `x`
    /// that every source→sink path crosses).
    #[inline]
    pub fn shift(self, x: i64) -> Cost {
        Cost::new(self.wirelength + x, self.delay + x)
    }

    /// Combines two subtree solutions rooted at the same node — the `⊕`
    /// operation of Eq. (1): wirelengths add, delays take the maximum.
    #[inline]
    pub fn combine(self, other: Cost) -> Cost {
        Cost::new(
            self.wirelength + other.wirelength,
            self.delay.max(other.delay),
        )
    }

    /// The scalarization `(1 − β)·w + β·d` used by weighted-sum baselines,
    /// computed in integer arithmetic as `num·w + den·d` to stay exact.
    #[inline]
    pub fn weighted(self, w_weight: i64, d_weight: i64) -> i64 {
        w_weight * self.wirelength + d_weight * self.delay
    }
}

impl Add<i64> for Cost {
    type Output = Cost;

    fn add(self, x: i64) -> Cost {
        self.shift(x)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(w={}, d={})", self.wirelength, self.delay)
    }
}

impl From<(i64, i64)> for Cost {
    fn from((w, d): (i64, i64)) -> Self {
        Cost::new(w, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_cases() {
        let a = Cost::new(5, 5);
        assert!(a.dominates(Cost::new(5, 5)));
        assert!(a.dominates(Cost::new(6, 5)));
        assert!(a.dominates(Cost::new(5, 9)));
        assert!(!a.dominates(Cost::new(4, 9)));
        assert!(!a.dominates(Cost::new(9, 4)));
        assert!(!a.strictly_dominates(a));
        assert!(a.strictly_dominates(Cost::new(5, 6)));
    }

    #[test]
    fn shift_and_combine_follow_eq1() {
        let a = Cost::new(3, 7);
        assert_eq!(a.shift(4), Cost::new(7, 11));
        assert_eq!(a + 4, Cost::new(7, 11));
        let b = Cost::new(10, 2);
        assert_eq!(a.combine(b), Cost::new(13, 7));
        assert_eq!(b.combine(a), Cost::new(13, 7));
    }

    #[test]
    fn weighted_scalarization() {
        let a = Cost::new(3, 7);
        assert_eq!(a.weighted(2, 5), 6 + 35);
    }

    #[test]
    fn display_and_conversions() {
        let a: Cost = (3, 7).into();
        assert_eq!(a.to_string(), "(w=3, d=7)");
    }

    fn cost() -> impl Strategy<Value = Cost> {
        (0i64..1_000_000, 0i64..1_000_000).prop_map(Cost::from)
    }

    proptest! {
        #[test]
        fn prop_dominance_is_transitive(a in cost(), b in cost(), c in cost()) {
            if a.dominates(b) && b.dominates(c) {
                prop_assert!(a.dominates(c));
            }
        }

        #[test]
        fn prop_shift_preserves_dominance(a in cost(), b in cost(), x in 0i64..1000) {
            prop_assert_eq!(a.dominates(b), a.shift(x).dominates(b.shift(x)));
        }

        #[test]
        fn prop_combine_is_monotone(a in cost(), b in cost(), c in cost()) {
            if a.dominates(b) {
                prop_assert!(a.combine(c).dominates(b.combine(c)));
            }
        }

        #[test]
        fn prop_combine_commutes(a in cost(), b in cost()) {
            prop_assert_eq!(a.combine(b), b.combine(a));
        }
    }
}
