//! Pareto-set container.

use crate::Cost;

/// A set of mutually non-dominating `(Cost, payload)` solutions — a *Pareto
/// curve* in the paper's terminology.
///
/// # Invariant
///
/// Entries are kept sorted by strictly increasing wirelength and strictly
/// decreasing delay; among solutions with identical cost only the first
/// inserted survives. All operations preserve this invariant, so iteration
/// order is always the frontier swept left-to-right.
///
/// The payload type `T` carries whatever the caller needs per solution
/// (tree topologies, indices, `()` for pure objective frontiers).
///
/// # Example
///
/// ```
/// use patlabor_pareto::{Cost, ParetoSet};
///
/// let a: ParetoSet<&str> = [(Cost::new(4, 9), "x"), (Cost::new(7, 3), "y")]
///     .into_iter()
///     .collect();
/// let shifted = a.shifted(10);
/// assert!(shifted.costs().eq([Cost::new(14, 19), Cost::new(17, 13)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoSet<T = ()> {
    /// Sorted by `(wirelength ↑, delay ↓)`.
    entries: Vec<(Cost, T)>,
}

impl<T> Default for ParetoSet<T> {
    fn default() -> Self {
        ParetoSet {
            entries: Vec::new(),
        }
    }
}

impl<T> ParetoSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frontier solutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(cost, payload)` pairs, wirelength ascending.
    pub fn iter(&self) -> impl Iterator<Item = (Cost, &T)> {
        self.entries.iter().map(|(c, t)| (*c, t))
    }

    /// Iterator over the costs only.
    ///
    /// # Ordering contract
    ///
    /// Yields the frontier *staircase* in sorted order — wirelength
    /// strictly increasing, delay strictly decreasing (the container
    /// invariant above). Consumers may rely on this: the single
    /// left-to-right sweeps in [`crate::metrics::hypervolume`] and
    /// [`crate::metrics::found_on_frontier`] are correct only because of
    /// it.
    pub fn costs(&self) -> impl Iterator<Item = Cost> + '_ {
        self.entries.iter().map(|(c, _)| *c)
    }

    /// The costs as a vector (convenient for comparisons in tests).
    pub fn cost_vec(&self) -> Vec<Cost> {
        self.costs().collect()
    }

    /// The minimum-wirelength solution, if any.
    pub fn min_wirelength(&self) -> Option<(Cost, &T)> {
        self.entries.first().map(|(c, t)| (*c, t))
    }

    /// The minimum-delay solution, if any.
    pub fn min_delay(&self) -> Option<(Cost, &T)> {
        self.entries.last().map(|(c, t)| (*c, t))
    }

    /// Whether `cost` is dominated by (or equal to) some solution in the
    /// set.
    pub fn dominated(&self, cost: Cost) -> bool {
        // Binary search: candidates have wirelength <= cost.wirelength; the
        // best delay among them is the last such entry (delay decreases).
        let pos = self
            .entries
            .partition_point(|(c, _)| c.wirelength <= cost.wirelength);
        pos > 0 && self.entries[pos - 1].0.delay <= cost.delay
    }

    /// Inserts a solution, dropping it if dominated and evicting any
    /// solutions it dominates. Returns `true` when the solution survives.
    pub fn insert(&mut self, cost: Cost, payload: T) -> bool {
        if self.dominated(cost) {
            return false;
        }
        let pos = self
            .entries
            .partition_point(|(c, _)| c.wirelength < cost.wirelength);
        // Evict dominated successors (their wirelength is >= ours; evict
        // while their delay is also >= ours).
        let end = pos
            + self.entries[pos..].partition_point(|(c, _)| c.delay >= cost.delay);
        self.entries.splice(pos..end, [(cost, payload)]);
        true
    }

    /// Moves every solution of `other` into `self`, keeping the combined
    /// frontier.
    pub fn merge(&mut self, other: ParetoSet<T>) {
        for (c, t) in other.entries {
            self.insert(c, t);
        }
    }

    /// Extracts the payloads, consuming the set.
    pub fn into_payloads(self) -> Vec<T> {
        self.entries.into_iter().map(|(_, t)| t).collect()
    }

    /// Consumes the set, yielding `(cost, payload)` pairs.
    pub fn into_entries(self) -> Vec<(Cost, T)> {
        self.entries
    }

    /// The `S + x` operation of Eq. (1): every solution shifted by an edge
    /// of length `x`.
    pub fn shifted(&self, x: i64) -> ParetoSet<T>
    where
        T: Clone,
    {
        ParetoSet {
            entries: self
                .entries
                .iter()
                .map(|(c, t)| (c.shift(x), t.clone()))
                .collect(),
        }
    }

    /// The Pareto sum `S ⊕ S'` of Eq. (1): all pairwise combinations
    /// (wirelengths add, delays max), pruned back to a frontier. Payloads
    /// are merged with `merge_payload`.
    ///
    /// Runs in `O(|S|·|S'|)` combinations plus a prune.
    pub fn pareto_sum<U, V, F>(&self, other: &ParetoSet<U>, mut merge_payload: F) -> ParetoSet<V>
    where
        F: FnMut(&T, &U) -> V,
    {
        let mut combined = Vec::with_capacity(self.len() * other.len());
        for (ca, ta) in &self.entries {
            for (cb, tb) in &other.entries {
                combined.push((ca.combine(*cb), merge_payload(ta, tb)));
            }
        }
        ParetoSet::from_unpruned(combined)
    }

    /// Builds a frontier from arbitrary (possibly dominated) solutions in
    /// `O(k log k)` — the `Pareto(S)` operation of Eq. (1).
    ///
    /// When several solutions share a cost, the first in the input order
    /// wins.
    pub fn from_unpruned(mut solutions: Vec<(Cost, T)>) -> ParetoSet<T> {
        // Stable sort by (w ↑, d ↑) keeps first-inserted ties in front, then
        // a sweep keeps entries with strictly decreasing delay.
        solutions.sort_by_key(|(c, _)| (c.wirelength, c.delay));
        let mut entries: Vec<(Cost, T)> = Vec::new();
        for (c, t) in solutions {
            match entries.last() {
                Some((last, _)) if last.delay <= c.delay => {} // dominated
                _ => entries.push((c, t)),
            }
        }
        ParetoSet { entries }
    }
}

impl<T> FromIterator<(Cost, T)> for ParetoSet<T> {
    fn from_iter<I: IntoIterator<Item = (Cost, T)>>(iter: I) -> Self {
        ParetoSet::from_unpruned(iter.into_iter().collect())
    }
}

impl FromIterator<Cost> for ParetoSet<()> {
    fn from_iter<I: IntoIterator<Item = Cost>>(iter: I) -> Self {
        iter.into_iter().map(|c| (c, ())).collect()
    }
}

impl<T> Extend<(Cost, T)> for ParetoSet<T> {
    fn extend<I: IntoIterator<Item = (Cost, T)>>(&mut self, iter: I) {
        for (c, t) in iter {
            self.insert(c, t);
        }
    }
}

impl<'a, T> IntoIterator for &'a ParetoSet<T> {
    type Item = &'a (Cost, T);
    type IntoIter = std::slice::Iter<'a, (Cost, T)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<T> IntoIterator for ParetoSet<T> {
    type Item = (Cost, T);
    type IntoIter = std::vec::IntoIter<(Cost, T)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn costs(set: &ParetoSet<impl Sized>) -> Vec<(i64, i64)> {
        set.costs().map(|c| (c.wirelength, c.delay)).collect()
    }

    #[test]
    fn insert_maintains_frontier() {
        let mut s = ParetoSet::new();
        assert!(s.insert(Cost::new(10, 10), 'a'));
        assert!(!s.insert(Cost::new(11, 11), 'b')); // dominated
        assert!(s.insert(Cost::new(5, 20), 'c'));
        assert!(s.insert(Cost::new(8, 12), 'd'));
        assert!(s.insert(Cost::new(4, 8), 'e')); // dominates everything but keeps nothing else? no: dominates (5,20),(8,12),(10,10)
        assert_eq!(costs(&s), vec![(4, 8)]);
    }

    #[test]
    fn insert_equal_cost_keeps_first() {
        let mut s = ParetoSet::new();
        s.insert(Cost::new(5, 5), 'a');
        assert!(!s.insert(Cost::new(5, 5), 'b'));
        assert_eq!(s.iter().next().unwrap().1, &'a');
    }

    #[test]
    fn insert_equal_wirelength_better_delay_replaces() {
        let mut s = ParetoSet::new();
        s.insert(Cost::new(5, 9), 'a');
        assert!(s.insert(Cost::new(5, 4), 'b'));
        assert_eq!(costs(&s), vec![(5, 4)]);
    }

    #[test]
    fn from_unpruned_sweeps_correctly() {
        let s: ParetoSet<()> = [
            Cost::new(9, 1),
            Cost::new(1, 9),
            Cost::new(5, 5),
            Cost::new(5, 6),
            Cost::new(6, 5),
            Cost::new(2, 8),
        ]
        .into_iter()
        .collect();
        assert_eq!(costs(&s), vec![(1, 9), (2, 8), (5, 5), (9, 1)]);
    }

    #[test]
    fn shifted_moves_both_objectives() {
        let s: ParetoSet<()> = [Cost::new(1, 9), Cost::new(5, 5)].into_iter().collect();
        assert_eq!(costs(&s.shifted(3)), vec![(4, 12), (8, 8)]);
    }

    #[test]
    fn pareto_sum_matches_bruteforce() {
        let a: ParetoSet<()> = [Cost::new(1, 9), Cost::new(5, 5)].into_iter().collect();
        let b: ParetoSet<()> = [Cost::new(2, 7), Cost::new(4, 3)].into_iter().collect();
        let sum = a.pareto_sum(&b, |_, _| ());
        // Combinations: (3,9) (5,9)✗ (7,7)✗? (7,7) vs (3,9): neither dominates; (9,5)
        assert_eq!(costs(&sum), vec![(3, 9), (7, 7), (9, 5)]);
    }

    #[test]
    fn min_accessors() {
        let s: ParetoSet<()> = [Cost::new(1, 9), Cost::new(5, 5), Cost::new(7, 2)]
            .into_iter()
            .collect();
        assert_eq!(s.min_wirelength().unwrap().0, Cost::new(1, 9));
        assert_eq!(s.min_delay().unwrap().0, Cost::new(7, 2));
    }

    #[test]
    fn merge_unions_frontiers() {
        let mut a: ParetoSet<char> = [(Cost::new(1, 9), 'a'), (Cost::new(5, 5), 'b')]
            .into_iter()
            .collect();
        let b: ParetoSet<char> = [(Cost::new(3, 6), 'c'), (Cost::new(9, 1), 'd')]
            .into_iter()
            .collect();
        a.merge(b);
        assert_eq!(costs(&a), vec![(1, 9), (3, 6), (5, 5), (9, 1)]);
    }

    #[test]
    fn dominated_query() {
        let s: ParetoSet<()> = [Cost::new(2, 8), Cost::new(6, 3)].into_iter().collect();
        assert!(s.dominated(Cost::new(2, 8)));
        assert!(s.dominated(Cost::new(3, 9)));
        assert!(s.dominated(Cost::new(7, 3)));
        assert!(!s.dominated(Cost::new(1, 100)));
        assert!(!s.dominated(Cost::new(5, 4)));
    }

    fn arb_costs() -> impl Strategy<Value = Vec<Cost>> {
        proptest::collection::vec((0i64..100, 0i64..100).prop_map(Cost::from), 0..60)
    }

    /// O(k²) reference implementation of `Pareto(S)`.
    fn brute_frontier(mut v: Vec<Cost>) -> Vec<Cost> {
        v.sort();
        v.dedup();
        let keep: Vec<Cost> = v
            .iter()
            .filter(|&&c| !v.iter().any(|&o| o.strictly_dominates(c)))
            .copied()
            .collect();
        keep
    }

    proptest! {
        #[test]
        fn prop_from_unpruned_equals_bruteforce(cs in arb_costs()) {
            let set: ParetoSet<()> = cs.iter().copied().collect();
            let brute = brute_frontier(cs);
            prop_assert_eq!(set.cost_vec(), brute);
        }

        #[test]
        fn prop_incremental_equals_batch(cs in arb_costs()) {
            let batch: ParetoSet<()> = cs.iter().copied().collect();
            let mut inc = ParetoSet::new();
            for c in cs {
                inc.insert(c, ());
            }
            prop_assert_eq!(inc.cost_vec(), batch.cost_vec());
        }

        #[test]
        fn prop_invariant_sorted_strictly(cs in arb_costs()) {
            let set: ParetoSet<()> = cs.into_iter().collect();
            let v = set.cost_vec();
            for w in v.windows(2) {
                prop_assert!(w[0].wirelength < w[1].wirelength);
                prop_assert!(w[0].delay > w[1].delay);
            }
        }

        #[test]
        fn prop_pareto_sum_lower_bound_is_respected(a in arb_costs(), b in arb_costs()) {
            let sa: ParetoSet<()> = a.iter().copied().collect();
            let sb: ParetoSet<()> = b.iter().copied().collect();
            let sum = sa.pareto_sum(&sb, |_, _| ());
            // Every sum point must be a combination of one point from each.
            for c in sum.costs() {
                prop_assert!(sa.costs().any(|x| sb.costs().any(|y| x.combine(y) == c)));
            }
            // And no combination may strictly dominate a frontier point.
            for x in sa.costs() {
                for y in sb.costs() {
                    prop_assert!(!sum.costs().any(|c| x.combine(y).strictly_dominates(c)));
                }
            }
        }
    }
}
