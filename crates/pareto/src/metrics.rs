//! Frontier-quality metrics used by the experiment harness.
//!
//! * [`hypervolume`] — area dominated by a frontier up to a reference
//!   point; the local-search policy trainer maximizes hypervolume gain.
//! * [`approximation_factor`] — the `c` of the paper's Definition 2:
//!   an algorithm `c`-approximates the Pareto frontier when every frontier
//!   solution `s` has an output solution `s' ⪯ c·s`.
//! * [`found_on_frontier`] / [`misses_frontier`] — the counting used by
//!   Tables III and IV (how many true Pareto-optimal solutions a method
//!   recovers, and whether it recovers at least one).

use crate::{Cost, ParetoSet};

/// Area (in objective-space units²) dominated by the frontier, measured
/// against a reference point that must itself be dominated by no solution
/// worse than `reference` (i.e. every solution should satisfy
/// `w ≤ reference.wirelength`, `d ≤ reference.delay`; solutions outside are
/// clipped to contribute nothing).
///
/// Larger is better. Exact integer arithmetic (`i128`).
///
/// The single left-to-right sweep is correct only because
/// [`ParetoSet::costs`] yields the sorted staircase (wirelength strictly
/// ascending, delay strictly descending) — each solution's strip is the
/// rectangle between its own delay and the previous (better-delay) strip.
/// The ordering contract is documented on `costs()` and enforced here
/// with a debug assertion.
///
/// ```
/// use patlabor_pareto::{metrics::hypervolume, Cost, ParetoSet};
///
/// let s: ParetoSet<()> = [Cost::new(1, 2), Cost::new(2, 1)].into_iter().collect();
/// assert_eq!(hypervolume(&s, Cost::new(3, 3)), 2 + 1);
/// ```
pub fn hypervolume<T>(set: &ParetoSet<T>, reference: Cost) -> i128 {
    debug_assert!(
        set.cost_vec()
            .windows(2)
            .all(|w| w[0].wirelength < w[1].wirelength && w[0].delay > w[1].delay),
        "hypervolume requires ParetoSet::costs() to yield the sorted staircase"
    );
    let mut total: i128 = 0;
    let mut prev_delay = reference.delay;
    for c in set.costs() {
        if c.wirelength >= reference.wirelength || c.delay >= prev_delay {
            // Clipped out or fully shadowed by the previous (better-delay
            // strip already counted).
            prev_delay = prev_delay.min(c.delay);
            continue;
        }
        let d_hi = prev_delay.min(reference.delay);
        let d_lo = c.delay;
        if d_hi > d_lo {
            total += (reference.wirelength - c.wirelength) as i128 * (d_hi - d_lo) as i128;
        }
        prev_delay = prev_delay.min(d_lo);
    }
    total
}

/// The multiplicative factor by which `produced` approximates `frontier`
/// (Definition 2): the maximum over frontier solutions `s` of the minimum
/// over produced solutions `s'` of `max(w'/w, d'/d)`.
///
/// Returns `f64::INFINITY` when `produced` is empty and `frontier` is not,
/// and `1.0` when `frontier` is empty. A value of `1.0` means every
/// frontier solution is matched or dominated.
pub fn approximation_factor<T, U>(produced: &ParetoSet<T>, frontier: &ParetoSet<U>) -> f64 {
    if frontier.is_empty() {
        return 1.0;
    }
    if produced.is_empty() {
        return f64::INFINITY;
    }
    let mut worst: f64 = 1.0;
    for s in frontier.costs() {
        let mut best = f64::INFINITY;
        for p in produced.costs() {
            let rw = ratio(p.wirelength, s.wirelength);
            let rd = ratio(p.delay, s.delay);
            best = best.min(rw.max(rd));
        }
        worst = worst.max(best);
    }
    worst
}

fn ratio(num: i64, den: i64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

/// Number of solutions of `frontier` that `produced` found exactly
/// (an identical `(w, d)` pair is present).
///
/// This is the Table IV statistic: the paper counts, per method, how many
/// of the true Pareto-optimal solutions the method's output contains.
pub fn found_on_frontier<T, U>(produced: &ParetoSet<T>, frontier: &ParetoSet<U>) -> usize {
    let mut produced_costs = produced.costs().peekable();
    let mut found = 0;
    for f in frontier.costs() {
        while let Some(&p) = produced_costs.peek() {
            if p.wirelength < f.wirelength {
                produced_costs.next();
            } else {
                break;
            }
        }
        if produced_costs.peek().copied() == Some(f) {
            found += 1;
        }
    }
    found
}

/// Whether `produced` misses the frontier entirely — i.e. finds **no**
/// Pareto-optimal solution. This is the Table III statistic ("an algorithm
/// is non-optimal on a net if it cannot find at least one solution on the
/// Pareto frontier").
pub fn misses_frontier<T, U>(produced: &ParetoSet<T>, frontier: &ParetoSet<U>) -> bool {
    found_on_frontier(produced, frontier) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(points: &[(i64, i64)]) -> ParetoSet<()> {
        points.iter().map(|&(w, d)| Cost::new(w, d)).collect()
    }

    #[test]
    fn hypervolume_single_point() {
        let s = set(&[(1, 1)]);
        assert_eq!(hypervolume(&s, Cost::new(4, 3)), 3 * 2);
    }

    #[test]
    fn hypervolume_staircase() {
        let s = set(&[(1, 3), (2, 1)]);
        // Strip for (1,3): width 9-1=8? reference (4,4): (4-1)*(4-3)=3; strip for (2,1): (4-2)*(3-1)=4
        assert_eq!(hypervolume(&s, Cost::new(4, 4)), 3 + 4);
    }

    #[test]
    fn hypervolume_clips_outside_points() {
        let s = set(&[(1, 10), (5, 1)]);
        // (1,10) outside reference delay 4 → contributes nothing;
        // (5,1) outside reference wirelength 4 → nothing.
        assert_eq!(hypervolume(&s, Cost::new(4, 4)), 0);
        // With a generous reference both count.
        assert!(hypervolume(&s, Cost::new(100, 100)) > 0);
    }

    #[test]
    fn hypervolume_monotone_under_insert() {
        let a = set(&[(3, 3)]);
        let b = set(&[(3, 3), (1, 5), (5, 1)]);
        let r = Cost::new(10, 10);
        assert!(hypervolume(&b, r) >= hypervolume(&a, r));
    }

    #[test]
    fn approximation_factor_exact_match_is_one() {
        let f = set(&[(2, 8), (4, 4)]);
        assert_eq!(approximation_factor(&f, &f), 1.0);
    }

    #[test]
    fn approximation_factor_detects_gap() {
        let frontier = set(&[(2, 8), (4, 4)]);
        let produced = set(&[(4, 4)]);
        // (2,8) is approximated by (4,4): max(4/2, 4/8) = 2.
        assert_eq!(approximation_factor(&produced, &frontier), 2.0);
    }

    #[test]
    fn approximation_factor_empty_cases() {
        let f = set(&[(1, 1)]);
        let e = set(&[]);
        assert_eq!(approximation_factor(&f, &e), 1.0);
        assert_eq!(approximation_factor(&e, &f), f64::INFINITY);
    }

    #[test]
    fn found_on_frontier_counts_exact_matches() {
        let frontier = set(&[(1, 9), (3, 6), (5, 5), (9, 1)]);
        let produced = set(&[(1, 9), (4, 6), (9, 1)]);
        assert_eq!(found_on_frontier(&produced, &frontier), 2);
        assert!(!misses_frontier(&produced, &frontier));
        let bad = set(&[(2, 10), (10, 2)]);
        assert_eq!(found_on_frontier(&bad, &frontier), 0);
        assert!(misses_frontier(&bad, &frontier));
    }

    #[test]
    fn found_on_frontier_full_recovery() {
        let frontier = set(&[(1, 9), (3, 6)]);
        assert_eq!(found_on_frontier(&frontier, &frontier), 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_costs() -> impl Strategy<Value = Vec<Cost>> {
            proptest::collection::vec((1i64..50, 1i64..50).prop_map(Cost::from), 1..20)
        }

        /// O(area) reference: count unit cells dominated by some solution.
        fn brute_hypervolume(set: &ParetoSet<()>, reference: Cost) -> i128 {
            let mut total = 0i128;
            for x in 0..reference.wirelength {
                for y in 0..reference.delay {
                    if set.costs().any(|c| c.wirelength <= x && c.delay <= y) {
                        total += 1;
                    }
                }
            }
            total
        }

        proptest! {
            /// The staircase sweep equals the cell-counting reference —
            /// the sweep is only valid because `costs()` yields the
            /// sorted staircase (see the ordering contract on `costs`).
            #[test]
            fn prop_hypervolume_matches_bruteforce(cs in arb_costs()) {
                let reference = Cost::new(55, 55);
                let set: ParetoSet<()> = cs.into_iter().collect();
                prop_assert_eq!(hypervolume(&set, reference), brute_hypervolume(&set, reference));
            }

            /// Adding a dominated point never changes hypervolume; adding
            /// a point strictly inside the reference box never decreases
            /// it.
            #[test]
            fn prop_hypervolume_monotone(cs in arb_costs(), extra in (1i64..50, 1i64..50)) {
                let reference = Cost::new(60, 60);
                let base: ParetoSet<()> = cs.iter().copied().collect();
                let hv0 = hypervolume(&base, reference);
                let mut grown = base.clone();
                let added = grown.insert(Cost::from(extra), ());
                let hv1 = hypervolume(&grown, reference);
                prop_assert!(hv1 >= hv0);
                if !added {
                    prop_assert_eq!(hv1, hv0);
                }
            }

            /// The approximation factor of a set against itself is 1, and
            /// against a shifted-worse copy it is bounded by the shift.
            #[test]
            fn prop_approximation_factor_bounds(cs in arb_costs(), shift in 1i64..10) {
                let frontier: ParetoSet<()> = cs.iter().copied().collect();
                prop_assert_eq!(approximation_factor(&frontier, &frontier), 1.0);
                let worse: ParetoSet<()> =
                    frontier.costs().map(|c| Cost::new(c.wirelength + shift, c.delay + shift)).collect();
                let f = approximation_factor(&worse, &frontier);
                prop_assert!(f >= 1.0);
                // Shifting by `shift` multiplies each coordinate by at most
                // (1 + shift) since all coordinates are >= 1.
                prop_assert!(f <= 1.0 + shift as f64 + 1e-9);
            }

            /// found_on_frontier counts exactly the intersection.
            #[test]
            fn prop_found_counts_intersection(cs in arb_costs(), ds in arb_costs()) {
                let a: ParetoSet<()> = cs.iter().copied().collect();
                let b: ParetoSet<()> = ds.iter().copied().collect();
                let brute = b.costs().filter(|&c| a.costs().any(|x| x == c)).count();
                prop_assert_eq!(found_on_frontier(&a, &b), brute);
            }
        }
    }
}
