//! Bicriterion Pareto-set substrate for timing-driven routing.
//!
//! A routing-tree solution is scored by the objective pair
//! `s(T) = (w(T), d(T))` — total wirelength and source→sink delay — and the
//! algorithms of the paper manipulate *sets* of such pairs:
//!
//! * [`Cost`] — one `(w, d)` objective vector with exact integer dominance;
//! * [`ParetoSet`] — a set of mutually non-dominating solutions (optionally
//!   carrying a payload per solution), with the three operations of the
//!   Pareto-DW dynamic program, Eq. (1) of the paper:
//!   `Pareto(S)` pruning, scalar shift `S + x` and Pareto sum `S ⊕ S'`;
//! * [`metrics`] — frontier-quality metrics used by the experiment harness
//!   (hypervolume, the `c`-approximation factor of Definition 2, and
//!   found-on-frontier counting for Tables III/IV).
//!
//! # Example
//!
//! ```
//! use patlabor_pareto::{Cost, ParetoSet};
//!
//! let mut set = ParetoSet::new();
//! set.insert(Cost::new(10, 30), "tree A");
//! set.insert(Cost::new(20, 20), "tree B");
//! set.insert(Cost::new(15, 40), "dominated"); // worse than A in both
//! assert_eq!(set.len(), 2);
//! assert!(set.costs().eq([Cost::new(10, 30), Cost::new(20, 20)]));
//! ```

mod cost;
pub mod metrics;
mod set;

pub use cost::Cost;
pub use set::ParetoSet;
