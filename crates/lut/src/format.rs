//! Compact binary serialization of lookup tables.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"PLUT"
//! version  u32      (currently 3)
//! ── checksummed payload ──────────────────────────────────────────────
//! lambda   u8
//! per degree d in 3..=lambda:
//!   npool     u32             pooled topologies (cross-pattern clusters)
//!   edge_off  (npool+1) × u32 CSR offsets into the edge arena (from 0)
//!   edges     edge_off[npool] × (u8, u8)
//!   costs     npool · d · (2d−2) × u16   flattened cost rows
//!   npat      u32             number of patterns
//!   keys      npat × u64      canonical PatternKeys, strictly ascending
//!   pat_off   (npat+1) × u32  CSR offsets into the id arena (from 0)
//!   ids       pat_off[npat] × u32        pool indices
//! ─────────────────────────────────────────────────────────────────────
//! checksum u64     FNV-1a 64 over the payload bytes
//! ```
//!
//! The format carries no pointers and no floats, so it is fully
//! deterministic: identical tables serialize to identical bytes, and a
//! deserialized table re-serializes to the exact input bytes. The
//! checksum covers every payload byte, so any corruption — not just the
//! structurally invalid kind — is detected at load time.

use std::fmt;
use std::io::{self, Read, Write};

use crate::table::{DegreeTable, LookupTable};

const MAGIC: &[u8; 4] = b"PLUT";
const VERSION: u32 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` (the payload checksum).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Error returned by [`LookupTable::read_from`].
#[derive(Debug)]
pub enum ReadTableError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `PLUT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The payload checksum does not match its contents.
    BadChecksum {
        /// Checksum stored in the stream.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// Structurally invalid content (out-of-range degree, counts or
    /// indices).
    Corrupt(&'static str),
}

impl fmt::Display for ReadTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTableError::Io(e) => write!(f, "i/o error reading table: {e}"),
            ReadTableError::BadMagic => write!(f, "not a PatLabor lookup table (bad magic)"),
            ReadTableError::BadVersion(v) => write!(
                f,
                "unsupported table version {v} (this build reads v{VERSION}); \
                 regenerate the table with `patlabor lut build --lambda <L> -o <FILE>`"
            ),
            ReadTableError::BadChecksum { stored, computed } => write!(
                f,
                "payload checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ReadTableError::Corrupt(what) => write!(f, "corrupt table: {what}"),
        }
    }
}

impl std::error::Error for ReadTableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTableError {
    fn from(e: io::Error) -> Self {
        ReadTableError::Io(e)
    }
}

/// Reader adapter that FNV-1a-hashes every byte it passes through, so the
/// payload can be verified without buffering it twice.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash = (self.hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }
}

impl LookupTable {
    /// Serializes the table to any writer (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        // The payload is buffered once so its checksum can trail it.
        let mut payload = Vec::new();
        payload.push(self.lambda);
        for d in 3..=self.lambda {
            let table = &self.tables[d as usize];
            payload.extend_from_slice(&(table.npool() as u32).to_le_bytes());
            for &off in &table.edge_off {
                payload.extend_from_slice(&off.to_le_bytes());
            }
            for &(a, b) in &table.edges {
                payload.extend_from_slice(&[a, b]);
            }
            for &m in &table.costs {
                payload.extend_from_slice(&m.to_le_bytes());
            }
            payload.extend_from_slice(&(table.pattern_count() as u32).to_le_bytes());
            for &key in &table.pattern_keys {
                payload.extend_from_slice(&key.to_le_bytes());
            }
            for &off in &table.pattern_off {
                payload.extend_from_slice(&off.to_le_bytes());
            }
            for &id in &table.pattern_ids {
                payload.extend_from_slice(&id.to_le_bytes());
            }
        }
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&payload)?;
        w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        Ok(())
    }

    /// Deserializes a table from any reader (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on I/O failure, version mismatch,
    /// checksum mismatch or malformed content. Version-2 streams get a
    /// [`ReadTableError::BadVersion`] pointing at the `lut build`
    /// regeneration path — v2 tables carry no cost rows, so there is
    /// nothing to migrate in-place.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, ReadTableError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTableError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(ReadTableError::BadVersion(version));
        }
        let mut r = HashingReader::new(r);
        let mut lambda = [0u8; 1];
        r.read_exact(&mut lambda)?;
        let lambda = lambda[0];
        if !(3..=9).contains(&lambda) {
            return Err(ReadTableError::Corrupt("lambda out of range"));
        }
        let mut tables: Vec<DegreeTable> =
            (0..=lambda).map(|_| DegreeTable::default()).collect();
        for d in 3..=lambda {
            let npool = read_u32(&mut r)? as usize;
            if npool > 100_000_000 {
                return Err(ReadTableError::Corrupt("implausible pool size"));
            }
            let edge_off = read_u32_vec(&mut r, npool + 1)?;
            if edge_off[0] != 0 || edge_off.windows(2).any(|w| w[0] > w[1]) {
                return Err(ReadTableError::Corrupt("edge offsets not monotonic"));
            }
            let nedges = edge_off[npool] as usize;
            if nedges > 100_000_000 {
                return Err(ReadTableError::Corrupt("implausible edge count"));
            }
            let max_node = (d as u16) * (d as u16);
            let mut edges = Vec::with_capacity(nedges.min(1 << 16));
            for _ in 0..nedges {
                let mut pair = [0u8; 2];
                r.read_exact(&mut pair)?;
                if pair[0] as u16 >= max_node || pair[1] as u16 >= max_node {
                    return Err(ReadTableError::Corrupt("edge node out of range"));
                }
                edges.push((pair[0], pair[1]));
            }
            let stride = d as usize * (2 * d as usize - 2);
            let ncosts = npool * stride;
            let mut costs = Vec::with_capacity(ncosts.min(1 << 20));
            for _ in 0..ncosts {
                costs.push(read_u16(&mut r)?);
            }
            let npat = read_u32(&mut r)? as usize;
            if npat > 100_000_000 {
                return Err(ReadTableError::Corrupt("implausible pattern count"));
            }
            let mut pattern_keys = Vec::with_capacity(npat.min(1 << 16));
            for _ in 0..npat {
                let key = read_u64(&mut r)?;
                if pattern_keys.last().is_some_and(|&last| last >= key) {
                    return Err(ReadTableError::Corrupt("pattern keys not ascending"));
                }
                pattern_keys.push(key);
            }
            let pattern_off = read_u32_vec(&mut r, npat + 1)?;
            if pattern_off[0] != 0 || pattern_off.windows(2).any(|w| w[0] > w[1]) {
                return Err(ReadTableError::Corrupt("pattern offsets not monotonic"));
            }
            let nids = pattern_off[npat] as usize;
            if nids > 100_000_000 {
                return Err(ReadTableError::Corrupt("implausible topology-ref count"));
            }
            let mut pattern_ids = Vec::with_capacity(nids.min(1 << 16));
            for _ in 0..nids {
                let id = read_u32(&mut r)?;
                if id as usize >= npool {
                    return Err(ReadTableError::Corrupt("pool index out of range"));
                }
                pattern_ids.push(id);
            }
            tables[d as usize] = DegreeTable {
                n: d,
                edge_off,
                edges,
                costs,
                pattern_keys,
                pattern_off,
                pattern_ids,
            };
        }
        let computed = r.hash;
        // The trailing checksum is read from the raw stream (it does not
        // hash itself).
        let stored = read_u64(&mut r.inner)?;
        if stored != computed {
            return Err(ReadTableError::BadChecksum { stored, computed });
        }
        Ok(LookupTable { lambda, tables })
    }

    /// Writes the table to a file path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Loads a table from a file path.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on filesystem or format problems.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ReadTableError> {
        let file = std::fs::File::open(path)?;
        LookupTable::read_from(io::BufReader::new(file))
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32_vec<R: Read>(r: &mut R, count: usize) -> io::Result<Vec<u32>> {
    let mut v = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        v.push(read_u32(r)?);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LutBuilder;

    /// Builds a syntactically valid v3 stream from raw payload bytes
    /// (magic + version + payload + correct checksum).
    fn stream(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf
    }

    #[test]
    fn roundtrip_preserves_table() {
        let table = LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let back = LookupTable::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn reserialization_is_byte_identical() {
        // serialize → deserialize → serialize must reproduce the bytes:
        // the in-memory CSR arenas are exactly what the stream stores.
        let table = LutBuilder::new(5).threads(2).build();
        let mut first = Vec::new();
        table.write_to(&mut first).unwrap();
        let back = LookupTable::read_from(first.as_slice()).unwrap();
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = LutBuilder::new(4).threads(4).build();
        let b = LutBuilder::new(4).threads(1).build();
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.write_to(&mut ba).unwrap();
        b.write_to(&mut bb).unwrap();
        assert_eq!(ba, bb, "thread count must not affect the bytes");
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = LookupTable::read_from(&b"XXXX"[..]).unwrap_err();
        assert!(matches!(err, ReadTableError::BadMagic | ReadTableError::Io(_)));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.push(4);
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadVersion(99)));
    }

    #[test]
    fn v2_stream_reports_the_migration_path() {
        // A v2 header (the pre-cost-row layout) must point the user at
        // regeneration, not fail with a generic parse error.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(4); // lambda — never reached
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadVersion(2)));
        let msg = err.to_string();
        assert!(
            msg.contains("unsupported table version 2"),
            "message must name the offending version: {msg}"
        );
        assert!(
            msg.contains("`patlabor lut build --lambda <L> -o <FILE>`"),
            "message must name the migration path: {msg}"
        );
    }

    #[test]
    fn rejects_truncated_stream() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(LookupTable::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        // With the payload checksum, flipping ANY byte must turn the load
        // into an error (v2 only guaranteed "no panic" here): header
        // flips break magic/version, payload flips break the checksum or
        // validation, checksum flips break the comparison.
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0xff;
            assert!(
                LookupTable::read_from(corrupted.as_slice()).is_err(),
                "byte flip at {pos} must be detected"
            );
            let mut truncated = buf.clone();
            truncated.truncate(pos);
            assert!(
                LookupTable::read_from(truncated.as_slice()).is_err(),
                "truncation at {pos} must error"
            );
        }
    }

    #[test]
    fn out_of_range_pool_index_is_rejected() {
        // Hand-craft a degree-3 payload whose pattern references a missing
        // pool id; the checksum is valid so the structural check fires.
        let mut p = Vec::new();
        p.push(3u8); // lambda = 3
        p.extend_from_slice(&1u32.to_le_bytes()); // npool = 1
        p.extend_from_slice(&0u32.to_le_bytes()); // edge_off[0]
        p.extend_from_slice(&1u32.to_le_bytes()); // edge_off[1]
        p.extend_from_slice(&[0, 1]); // one edge
        p.extend_from_slice(&[0u8; 12 * 2]); // cost rows (stride 12)
        p.extend_from_slice(&1u32.to_le_bytes()); // npat = 1
        p.extend_from_slice(&42u64.to_le_bytes()); // key
        p.extend_from_slice(&0u32.to_le_bytes()); // pat_off[0]
        p.extend_from_slice(&1u32.to_le_bytes()); // pat_off[1]
        p.extend_from_slice(&9u32.to_le_bytes()); // id 9 >= npool 1
        let err = LookupTable::read_from(stream(&p).as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("pool index out of range")
        ));
    }

    #[test]
    fn out_of_range_edge_nodes_are_rejected() {
        let mut p = Vec::new();
        p.push(3u8); // lambda = 3 → node ids < 9
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&[200, 0]); // node 200 >= 9
        let err = LookupTable::read_from(stream(&p).as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("edge node out of range")
        ));
    }

    #[test]
    fn non_ascending_pattern_keys_are_rejected() {
        let mut p = Vec::new();
        p.push(3u8);
        p.extend_from_slice(&0u32.to_le_bytes()); // npool = 0
        p.extend_from_slice(&0u32.to_le_bytes()); // edge_off[0]
        p.extend_from_slice(&2u32.to_le_bytes()); // npat = 2
        p.extend_from_slice(&7u64.to_le_bytes()); // keys out of order
        p.extend_from_slice(&7u64.to_le_bytes());
        let err = LookupTable::read_from(stream(&p).as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("pattern keys not ascending")
        ));
    }

    #[test]
    fn checksum_mismatch_is_reported_as_such() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let n = buf.len();
        // Flip a bit in the stored checksum itself: the payload parses
        // fine, the comparison fails.
        buf[n - 1] ^= 0x01;
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadChecksum { .. }), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let table = LutBuilder::new(3).threads(1).build();
        let dir = std::env::temp_dir().join("patlabor_lut_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t3.plut");
        table.save(&path).unwrap();
        let back = LookupTable::load(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }
}
