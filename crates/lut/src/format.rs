//! Compact binary serialization of lookup tables.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"PLUT"
//! version  u32      (currently 2)
//! lambda   u8
//! per degree d in 3..=lambda:
//!   npool  u32      unique topologies (the cross-pattern cluster pool)
//!   per pool entry:
//!     nedge  u8
//!     edges  nedge × (u8, u8)
//!   count  u32      number of patterns
//!   per pattern:
//!     key    u64    canonical PatternKey
//!     ntopo  u16
//!     ids    ntopo × u32   indices into the pool
//! ```
//!
//! The format carries no pointers and no floats, so it is fully
//! deterministic: identical tables serialize to identical bytes.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

use crate::table::{DegreeTable, LookupTable, StoredTopology};

const MAGIC: &[u8; 4] = b"PLUT";
const VERSION: u32 = 2;

/// Error returned by [`LookupTable::read_from`].
#[derive(Debug)]
pub enum ReadTableError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `PLUT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid content (out-of-range degree, counts or
    /// indices).
    Corrupt(&'static str),
}

impl fmt::Display for ReadTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTableError::Io(e) => write!(f, "i/o error reading table: {e}"),
            ReadTableError::BadMagic => write!(f, "not a PatLabor lookup table (bad magic)"),
            ReadTableError::BadVersion(v) => write!(f, "unsupported table version {v}"),
            ReadTableError::Corrupt(what) => write!(f, "corrupt table: {what}"),
        }
    }
}

impl std::error::Error for ReadTableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTableError {
    fn from(e: io::Error) -> Self {
        ReadTableError::Io(e)
    }
}

impl LookupTable {
    /// Serializes the table to any writer (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[self.lambda])?;
        for d in 3..=self.lambda {
            let table = &self.tables[d as usize];
            w.write_all(&(table.pool.len() as u32).to_le_bytes())?;
            for t in &table.pool {
                w.write_all(&[t.edges.len() as u8])?;
                for &(a, b) in &t.edges {
                    w.write_all(&[a, b])?;
                }
            }
            w.write_all(&(table.patterns.len() as u32).to_le_bytes())?;
            // Deterministic order.
            let mut keys: Vec<&u64> = table.patterns.keys().collect();
            keys.sort_unstable();
            for key in keys {
                w.write_all(&key.to_le_bytes())?;
                let ids = &table.patterns[key];
                w.write_all(&(ids.len() as u16).to_le_bytes())?;
                for &id in ids {
                    w.write_all(&id.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a table from any reader (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on I/O failure or malformed content.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, ReadTableError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTableError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(ReadTableError::BadVersion(version));
        }
        let mut lambda = [0u8; 1];
        r.read_exact(&mut lambda)?;
        let lambda = lambda[0];
        if !(3..=9).contains(&lambda) {
            return Err(ReadTableError::Corrupt("lambda out of range"));
        }
        let mut tables: Vec<DegreeTable> =
            (0..=lambda).map(|_| DegreeTable::default()).collect();
        for d in 3..=lambda {
            let npool = read_u32(&mut r)? as usize;
            if npool > 100_000_000 {
                return Err(ReadTableError::Corrupt("implausible pool size"));
            }
            let mut pool = Vec::with_capacity(npool);
            let max_node = (d as u16) * (d as u16);
            for _ in 0..npool {
                let mut nedge = [0u8; 1];
                r.read_exact(&mut nedge)?;
                let mut edges = Vec::with_capacity(nedge[0] as usize);
                for _ in 0..nedge[0] {
                    let mut pair = [0u8; 2];
                    r.read_exact(&mut pair)?;
                    if pair[0] as u16 >= max_node || pair[1] as u16 >= max_node {
                        return Err(ReadTableError::Corrupt("edge node out of range"));
                    }
                    edges.push((pair[0], pair[1]));
                }
                pool.push(StoredTopology { edges });
            }
            let count = read_u32(&mut r)? as usize;
            if count > 100_000_000 {
                return Err(ReadTableError::Corrupt("implausible pattern count"));
            }
            let mut patterns = HashMap::with_capacity(count);
            for _ in 0..count {
                let key = read_u64(&mut r)?;
                let ntopo = read_u16(&mut r)? as usize;
                let mut ids = Vec::with_capacity(ntopo);
                for _ in 0..ntopo {
                    let id = read_u32(&mut r)?;
                    if id as usize >= pool.len() {
                        return Err(ReadTableError::Corrupt("pool index out of range"));
                    }
                    ids.push(id);
                }
                patterns.insert(key, ids);
            }
            tables[d as usize] = DegreeTable { pool, patterns };
        }
        Ok(LookupTable { lambda, tables })
    }

    /// Writes the table to a file path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Loads a table from a file path.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on filesystem or format problems.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ReadTableError> {
        let file = std::fs::File::open(path)?;
        LookupTable::read_from(io::BufReader::new(file))
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LutBuilder;

    #[test]
    fn roundtrip_preserves_table() {
        let table = LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let back = LookupTable::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = LutBuilder::new(4).threads(4).build();
        let b = LutBuilder::new(4).threads(1).build();
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.write_to(&mut ba).unwrap();
        b.write_to(&mut bb).unwrap();
        assert_eq!(ba, bb, "thread count must not affect the bytes");
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = LookupTable::read_from(&b"XXXX"[..]).unwrap_err();
        assert!(matches!(err, ReadTableError::BadMagic | ReadTableError::Io(_)));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.push(4);
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncated_stream() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(LookupTable::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_bytes_error_instead_of_panicking() {
        // Failure injection: flip/truncate bytes all over a valid stream;
        // every outcome must be Ok or Err — never a panic.
        let table = LutBuilder::new(4).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        for pos in (0..buf.len()).step_by(7) {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0xff;
            let _ = LookupTable::read_from(corrupted.as_slice());
            let mut truncated = buf.clone();
            truncated.truncate(pos);
            assert!(
                LookupTable::read_from(truncated.as_slice()).is_err(),
                "truncation at {pos} must error"
            );
        }
    }

    #[test]
    fn out_of_range_pool_index_is_rejected() {
        // Hand-craft a stream whose pattern references a missing pool id.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(3); // lambda = 3
        buf.extend_from_slice(&1u32.to_le_bytes()); // pool of one topology
        buf.push(1); // one edge
        buf.extend_from_slice(&[0, 1]);
        buf.extend_from_slice(&1u32.to_le_bytes()); // one pattern
        buf.extend_from_slice(&42u64.to_le_bytes()); // key
        buf.extend_from_slice(&1u16.to_le_bytes()); // one topology ref
        buf.extend_from_slice(&9u32.to_le_bytes()); // index 9 >= pool size 1
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::Corrupt(_)));
    }

    #[test]
    fn out_of_range_edge_nodes_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(3); // lambda = 3 → node ids < 9
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&[200, 0]); // node 200 >= 9
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::Corrupt(_)));
    }

    #[test]
    fn file_roundtrip() {
        let table = LutBuilder::new(3).threads(1).build();
        let dir = std::env::temp_dir().join("patlabor_lut_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t3.plut");
        table.save(&path).unwrap();
        let back = LookupTable::load(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }
}
