//! Binary serialization of lookup tables — the mmap-serveable v4 format.
//!
//! Layout (all integers little-endian, every section 64-byte aligned):
//!
//! ```text
//! header, 64 bytes
//!    0  magic          b"PLUT"
//!    4  version        u32    (currently 4)
//!    8  lambda         u8
//!    9  reserved       [u8; 7]  zero
//!   16  section count  u32    exactly 6 · (lambda − 2)
//!   20  reserved       u32    zero
//!   24  checksum       u64    striped FNV-1a 64 over bytes [64, file len)
//!   32  file len       u64
//!   40  reserved       [u8; 24] zero
//! section table, 32 bytes per entry, one per (degree, arena) in
//! canonical order (degree ascending, arena kind ascending):
//!    0  degree         u8
//!    1  kind           u8     0 edge_off · 1 edges · 2 costs ·
//!                             3 keys · 4 pat_off · 5 ids
//!    2  reserved       u16    zero
//!    4  element size   u32    bytes per element (4, 1, 2, 8, 4, 4)
//!    8  offset         u64    from file start; 64-byte aligned,
//!                             packed in table order with zero padding
//!   16  byte length    u64    count · element size
//!   24  element count  u64
//! payload sections, zero-padded to the next 64-byte boundary between
//! sections; the file ends flush with the last section.
//! ```
//!
//! The format carries no pointers and no floats, so it is fully
//! deterministic: identical tables serialize to identical bytes, and a
//! deserialized table re-serializes to the exact input bytes. Because the
//! layout is fixed little-endian, naturally aligned and explicitly
//! indexed, a v4 file can be served **zero-copy**: [`LookupTable::open_mmap`]
//! maps the file, verifies the checksum and every structural invariant
//! once, and then borrows the CSR arenas straight out of the mapping —
//! shared read-only across threads and processes from the page cache.
//! [`LookupTable::read_from`] remains the owned path: a streaming parse
//! that copies the arenas into `Vec`s (the v3-style full parse, and the
//! open-latency baseline the `lut_serving` bench measures mmap against).
//!
//! The checksum retains FNV-1a as its primitive but stripes it across 8
//! interleaved lanes of 8-byte little-endian words ([`fnv1a64_striped`]):
//! the payload is cut into 64-byte blocks (the trailing partial block
//! zero-padded), lane *i* folds word *i* of every block through the
//! FNV-1a xor-multiply step, and the eight lane states plus the payload
//! length are folded with plain byte-wise FNV-1a at the end. One
//! xor-multiply per 8 bytes across 8 independent dependency chains runs
//! at memory bandwidth instead of being serialized on one 3-cycle
//! multiply per byte — open-to-ready latency for a mapped table is one
//! fast scan, not a parse. Any byte flip still changes its word, its
//! lane's chain, and therefore the fold; the length term makes the
//! zero-padding injective.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::arena::Arena;
use crate::mmap::{Mapping, MAP_ALIGN};
use crate::table::{DegreeTable, LookupTable};

const MAGIC: &[u8; 4] = b"PLUT";
const VERSION: u32 = 4;
const HEADER_LEN: usize = 64;
const ENTRY_LEN: usize = 32;

/// Arena kinds in section-table order, with element sizes.
const KINDS: [(&str, u32); 6] = [
    ("edge_off", 4),
    ("edges", 1),
    ("costs", 2),
    ("keys", 8),
    ("pat_off", 4),
    ("ids", 4),
];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Plain FNV-1a 64 (the fold primitive of the striped checksum).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Incremental 8-lane word-striped FNV-1a (see the module docs for the
/// exact scheme). The incremental form buffers up to one 64-byte block so
/// arbitrarily-sized updates — the streaming parse hashes as few as two
/// bytes at a time — produce the same digest as the one-shot
/// [`fnv1a64_striped`].
pub(crate) struct StripedHasher {
    lanes: [u64; 8],
    buf: [u8; 64],
    buffered: usize,
    len: u64,
}

impl StripedHasher {
    pub(crate) fn new() -> StripedHasher {
        StripedHasher {
            lanes: [FNV_OFFSET; 8],
            buf: [0; 64],
            buffered: 0,
            len: 0,
        }
    }

    #[inline]
    fn fold_block(lanes: &mut [u64; 8], block: &[u8]) {
        for i in 0..8 {
            let w = u64::from_le_bytes(block[8 * i..8 * (i + 1)].try_into().expect("8 bytes"));
            lanes[i] = (lanes[i] ^ w).wrapping_mul(FNV_PRIME);
        }
    }

    fn finalize(mut lanes: [u64; 8], partial: &[u8], len: u64) -> u64 {
        if !partial.is_empty() {
            let mut block = [0u8; 64];
            block[..partial.len()].copy_from_slice(partial);
            Self::fold_block(&mut lanes, &block);
        }
        let mut tail = [0u8; 72];
        for (i, lane) in lanes.iter().enumerate() {
            tail[8 * i..8 * (i + 1)].copy_from_slice(&lane.to_le_bytes());
        }
        tail[64..72].copy_from_slice(&len.to_le_bytes());
        fnv1a64(&tail)
    }

    pub(crate) fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(bytes.len());
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered < 64 {
                return;
            }
            let mut lanes = self.lanes;
            Self::fold_block(&mut lanes, &{ self.buf });
            self.lanes = lanes;
            self.buffered = 0;
        }
        let chunks = bytes.chunks_exact(64);
        let rem = chunks.remainder();
        // Local copy keeps the lane states in registers through the loop.
        let mut lanes = self.lanes;
        for block in chunks {
            Self::fold_block(&mut lanes, block);
        }
        self.lanes = lanes;
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    pub(crate) fn finish(&self) -> u64 {
        Self::finalize(self.lanes, &self.buf[..self.buffered], self.len)
    }
}

/// One-shot word-striped FNV-1a 64 (the v4 payload checksum). This is
/// the open-to-ready hot path of [`LookupTable::open_mmap`] — one pass
/// over the mapped body at ~8 bytes per FNV step.
pub fn fnv1a64_striped(bytes: &[u8]) -> u64 {
    let mut lanes = [FNV_OFFSET; 8];
    let chunks = bytes.chunks_exact(64);
    let rem = chunks.remainder();
    for block in chunks {
        StripedHasher::fold_block(&mut lanes, block);
    }
    StripedHasher::finalize(lanes, rem, bytes.len() as u64)
}

/// Error returned by [`LookupTable::read_from`] and
/// [`LookupTable::open_mmap`].
#[derive(Debug)]
pub enum ReadTableError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `PLUT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The payload checksum does not match its contents.
    BadChecksum {
        /// Checksum stored in the stream.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// Structurally invalid content (out-of-range degree, counts,
    /// indices, offsets or alignment).
    Corrupt(&'static str),
}

impl fmt::Display for ReadTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTableError::Io(e) => write!(f, "i/o error reading table: {e}"),
            ReadTableError::BadMagic => write!(f, "not a PatLabor lookup table (bad magic)"),
            ReadTableError::BadVersion(v) => write!(
                f,
                "unsupported table version {v} (this build reads v{VERSION}); \
                 regenerate the table with \
                 `patlabor lut build --lambda <L> --format v4 -o <FILE>`"
            ),
            ReadTableError::BadChecksum { stored, computed } => write!(
                f,
                "payload checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ReadTableError::Corrupt(what) => write!(f, "corrupt table: {what}"),
        }
    }
}

impl std::error::Error for ReadTableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTableError {
    fn from(e: io::Error) -> Self {
        ReadTableError::Io(e)
    }
}

fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
struct RawSection {
    degree: u8,
    kind: u8,
    elem: u32,
    offset: u64,
    bytes: u64,
    count: u64,
}

/// The canonical section plan for a table: `(degree, kind)` in order with
/// element sizes and, for a writer, the element counts.
fn section_plan(lambda: u8) -> impl Iterator<Item = (u8, u8, u32)> {
    (3..=lambda).flat_map(|d| (0u8..6).map(move |k| (d, k, KINDS[k as usize].1)))
}

fn section_count(lambda: u8) -> usize {
    6 * (lambda as usize - 2)
}

impl LookupTable {
    fn section_counts(&self, d: u8) -> [usize; 6] {
        let t = &self.tables[d as usize];
        [
            t.edge_off.len(),
            t.edges.len(),
            t.costs.len(),
            t.pattern_keys.len(),
            t.pattern_off.len(),
            t.pattern_ids.len(),
        ]
    }

    /// Serializes the table to any writer (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let nsec = section_count(self.lambda);
        // Lay the sections out: packed in canonical order, each aligned.
        let mut offsets = Vec::with_capacity(nsec);
        let mut cursor = align_up(HEADER_LEN + nsec * ENTRY_LEN, MAP_ALIGN);
        let mut counts = Vec::with_capacity(nsec);
        for (d, k, elem) in section_plan(self.lambda) {
            let count = self.section_counts(d)[k as usize];
            offsets.push(cursor);
            counts.push(count);
            cursor = align_up(cursor + count * elem as usize, MAP_ALIGN);
        }
        let file_len = match counts.last() {
            Some(_) => {
                let (d, k, elem) = section_plan(self.lambda).last().expect("nsec > 0");
                let _ = (d, k);
                offsets[nsec - 1] + counts[nsec - 1] * elem as usize
            }
            None => align_up(HEADER_LEN, MAP_ALIGN),
        };

        // Body = section table + padded payload; buffered once so the
        // header can carry its checksum.
        let mut body = Vec::with_capacity(file_len - HEADER_LEN);
        for (i, (d, k, elem)) in section_plan(self.lambda).enumerate() {
            body.push(d);
            body.push(k);
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&elem.to_le_bytes());
            body.extend_from_slice(&(offsets[i] as u64).to_le_bytes());
            body.extend_from_slice(&((counts[i] * elem as usize) as u64).to_le_bytes());
            body.extend_from_slice(&(counts[i] as u64).to_le_bytes());
        }
        for (i, (d, k, _)) in section_plan(self.lambda).enumerate() {
            body.resize(offsets[i] - HEADER_LEN, 0); // zero padding
            let t = &self.tables[d as usize];
            match k {
                0 => {
                    for &v in t.edge_off.iter() {
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                1 => body.extend_from_slice(&t.edges),
                2 => {
                    for &v in t.costs.iter() {
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                3 => {
                    for &v in t.pattern_keys.iter() {
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                4 => {
                    for &v in t.pattern_off.iter() {
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                _ => {
                    for &v in t.pattern_ids.iter() {
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        debug_assert_eq!(HEADER_LEN + body.len(), file_len);

        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8] = self.lambda;
        header[16..20].copy_from_slice(&(nsec as u32).to_le_bytes());
        header[24..32].copy_from_slice(&fnv1a64_striped(&body).to_le_bytes());
        header[32..40].copy_from_slice(&(file_len as u64).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&body)?;
        Ok(())
    }

    /// Deserializes a table from any reader into **owned** arenas — the
    /// full streaming parse (read, hash, copy, validate every element).
    /// For zero-copy serving from a file, use [`LookupTable::open_mmap`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on I/O failure, version mismatch,
    /// checksum mismatch or malformed content. Version ≤ 3 streams get a
    /// [`ReadTableError::BadVersion`] pointing at the
    /// `lut build --format v4` regeneration path — v3 arenas were written
    /// unaligned and unpadded, so there is nothing to migrate in place.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, ReadTableError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTableError::BadMagic);
        }
        let mut version = [0u8; 4];
        r.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        if version != VERSION {
            return Err(ReadTableError::BadVersion(version));
        }
        let mut rest = [0u8; HEADER_LEN - 8];
        r.read_exact(&mut rest)?;
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&magic);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..].copy_from_slice(&rest);
        let (lambda, nsec, stored, file_len) = parse_header(&header)?;

        let mut r = HashingReader::new(r);
        let mut entry = [0u8; ENTRY_LEN];
        let mut sections = Vec::with_capacity(nsec);
        for _ in 0..nsec {
            r.read_exact(&mut entry)?;
            sections.push(parse_section_entry(&entry)?);
        }
        validate_section_table(lambda, &sections, file_len)?;

        let mut tables: Vec<DegreeTable> =
            (0..=lambda).map(|_| DegreeTable::default()).collect();
        let mut consumed = HEADER_LEN + nsec * ENTRY_LEN;
        for chunk in sections.chunks_exact(6) {
            let d = chunk[0].degree;
            let edge_off = read_u32_elems(&mut r, &chunk[0], &mut consumed)?;
            let edges = read_u8_elems(&mut r, &chunk[1], &mut consumed)?;
            let costs = read_u16_elems(&mut r, &chunk[2], &mut consumed)?;
            let keys = read_u64_elems(&mut r, &chunk[3], &mut consumed)?;
            let pat_off = read_u32_elems(&mut r, &chunk[4], &mut consumed)?;
            let ids = read_u32_elems(&mut r, &chunk[5], &mut consumed)?;
            validate_degree_arenas(d, &edge_off, &edges, &costs, &keys, &pat_off, &ids)?;
            tables[d as usize] = DegreeTable::assemble(
                d,
                edge_off.into(),
                edges.into(),
                costs.into(),
                keys.into(),
                pat_off.into(),
                ids.into(),
            );
        }
        if consumed != file_len {
            return Err(ReadTableError::Corrupt("file length mismatch"));
        }
        let computed = r.hasher.finish();
        if stored != computed {
            return Err(ReadTableError::BadChecksum { stored, computed });
        }
        Ok(LookupTable { lambda, tables })
    }

    /// Opens a table **zero-copy**: the file is mapped read-only, the
    /// checksum and every structural invariant are verified once, and the
    /// CSR arenas then borrow the mapping directly — no parse, no copies,
    /// shared across threads (and across processes, via the page cache).
    ///
    /// The returned table answers queries identically to one loaded with
    /// [`LookupTable::load`]; only [`LookupTable::backing`] differs.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on filesystem problems, version
    /// mismatch, checksum mismatch, or any malformed offset, count, index
    /// or alignment — all detected here, before any arena is served.
    pub fn open_mmap(path: impl AsRef<std::path::Path>) -> Result<Self, ReadTableError> {
        let map = Arc::new(Mapping::open(path.as_ref())?);
        let bytes = map.bytes();
        if bytes.len() < 8 {
            return Err(ReadTableError::Corrupt("file shorter than header"));
        }
        if &bytes[0..4] != MAGIC {
            return Err(ReadTableError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ReadTableError::BadVersion(version));
        }
        if bytes.len() < HEADER_LEN {
            return Err(ReadTableError::Corrupt("file shorter than header"));
        }
        let (lambda, nsec, stored, file_len) =
            parse_header(bytes[..HEADER_LEN].try_into().expect("64 bytes"))?;
        if file_len != bytes.len() {
            return Err(ReadTableError::Corrupt("file length mismatch"));
        }
        // Checksum before anything borrows: one striped scan of the body.
        let computed = fnv1a64_striped(&bytes[HEADER_LEN..]);
        if stored != computed {
            return Err(ReadTableError::BadChecksum { stored, computed });
        }
        let table_end = HEADER_LEN + nsec * ENTRY_LEN;
        if table_end > bytes.len() {
            return Err(ReadTableError::Corrupt("section table escapes the file"));
        }
        let mut sections = Vec::with_capacity(nsec);
        for i in 0..nsec {
            let entry: &[u8; ENTRY_LEN] = bytes[HEADER_LEN + i * ENTRY_LEN..][..ENTRY_LEN]
                .try_into()
                .expect("32 bytes");
            sections.push(parse_section_entry(entry)?);
        }
        validate_section_table(lambda, &sections, file_len)?;

        let mut tables: Vec<DegreeTable> =
            (0..=lambda).map(|_| DegreeTable::default()).collect();
        for chunk in sections.chunks_exact(6) {
            let d = chunk[0].degree;
            let at = |i: usize| (chunk[i].offset as usize, chunk[i].count as usize);
            let (o0, c0) = at(0);
            let (o1, c1) = at(1);
            let (o2, c2) = at(2);
            let (o3, c3) = at(3);
            let (o4, c4) = at(4);
            let (o5, c5) = at(5);
            let edge_off: Arena<u32> = Arena::mapped(&map, o0, c0);
            let edges: Arena<u8> = Arena::mapped(&map, o1, c1);
            let costs: Arena<u16> = Arena::mapped(&map, o2, c2);
            let keys: Arena<u64> = Arena::mapped(&map, o3, c3);
            let pat_off: Arena<u32> = Arena::mapped(&map, o4, c4);
            let ids: Arena<u32> = Arena::mapped(&map, o5, c5);
            validate_degree_arenas(d, &edge_off, &edges, &costs, &keys, &pat_off, &ids)?;
            tables[d as usize] =
                DegreeTable::assemble(d, edge_off, edges, costs, keys, pat_off, ids);
        }
        Ok(LookupTable { lambda, tables })
    }

    /// Writes the table to a file path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Loads a table from a file path into owned arenas (full parse).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] on filesystem or format problems.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ReadTableError> {
        let file = std::fs::File::open(path)?;
        LookupTable::read_from(io::BufReader::new(file))
    }
}

/// Validated header fields: `(lambda, section count, checksum, file len)`.
fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize, u64, usize), ReadTableError> {
    let lambda = h[8];
    if !(3..=9).contains(&lambda) {
        return Err(ReadTableError::Corrupt("lambda out of range"));
    }
    if h[9..16].iter().any(|&b| b != 0) || h[20..24].iter().any(|&b| b != 0) {
        return Err(ReadTableError::Corrupt("reserved header bytes not zero"));
    }
    if h[40..64].iter().any(|&b| b != 0) {
        return Err(ReadTableError::Corrupt("reserved header bytes not zero"));
    }
    let nsec = u32::from_le_bytes(h[16..20].try_into().expect("4 bytes")) as usize;
    if nsec != section_count(lambda) {
        return Err(ReadTableError::Corrupt("section count does not match lambda"));
    }
    let checksum = u64::from_le_bytes(h[24..32].try_into().expect("8 bytes"));
    let file_len = u64::from_le_bytes(h[32..40].try_into().expect("8 bytes"));
    let file_len = usize::try_from(file_len)
        .map_err(|_| ReadTableError::Corrupt("file length out of range"))?;
    if file_len > (1usize << 40) {
        return Err(ReadTableError::Corrupt("implausible file length"));
    }
    Ok((lambda, nsec, checksum, file_len))
}

fn parse_section_entry(e: &[u8; ENTRY_LEN]) -> Result<RawSection, ReadTableError> {
    if e[2] != 0 || e[3] != 0 {
        return Err(ReadTableError::Corrupt("reserved section bytes not zero"));
    }
    Ok(RawSection {
        degree: e[0],
        kind: e[1],
        elem: u32::from_le_bytes(e[4..8].try_into().expect("4 bytes")),
        offset: u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
        bytes: u64::from_le_bytes(e[16..24].try_into().expect("8 bytes")),
        count: u64::from_le_bytes(e[24..32].try_into().expect("8 bytes")),
    })
}

/// Structural validation of the section table against the canonical
/// layout: exact `(degree, kind, element size)` sequence, aligned packed
/// offsets, consistent byte lengths, and cross-section count relations
/// that do not depend on payload values.
fn validate_section_table(
    lambda: u8,
    sections: &[RawSection],
    file_len: usize,
) -> Result<(), ReadTableError> {
    let mut cursor = align_up(HEADER_LEN + sections.len() * ENTRY_LEN, MAP_ALIGN);
    for (sec, (d, k, elem)) in sections.iter().zip(section_plan(lambda)) {
        if sec.degree != d || sec.kind != k {
            return Err(ReadTableError::Corrupt("section out of canonical order"));
        }
        if sec.elem != elem {
            return Err(ReadTableError::Corrupt("section element size mismatch"));
        }
        if sec.offset as usize != cursor {
            return Err(ReadTableError::Corrupt("section offset out of place"));
        }
        if !(sec.offset as usize).is_multiple_of(MAP_ALIGN) {
            return Err(ReadTableError::Corrupt("section offset misaligned"));
        }
        if sec.count > 100_000_000 {
            return Err(ReadTableError::Corrupt("implausible section count"));
        }
        if sec.bytes != sec.count * elem as u64 {
            return Err(ReadTableError::Corrupt("section byte length mismatch"));
        }
        cursor = align_up(cursor + sec.bytes as usize, MAP_ALIGN);
        let end = sec.offset as usize + sec.bytes as usize;
        if end > file_len {
            return Err(ReadTableError::Corrupt("section escapes the file"));
        }
    }
    // The file ends flush with the last section.
    let last_end = sections
        .last()
        .map(|s| s.offset as usize + s.bytes as usize)
        .unwrap_or(align_up(HEADER_LEN, MAP_ALIGN));
    if last_end != file_len {
        return Err(ReadTableError::Corrupt("file length mismatch"));
    }
    // Per-degree count relations knowable from the table alone.
    for chunk in sections.chunks_exact(6) {
        let d = chunk[0].degree as u64;
        let npool = chunk[0]
            .count
            .checked_sub(1)
            .ok_or(ReadTableError::Corrupt("empty edge offset section"))?;
        let stride = d * (2 * d - 2);
        if chunk[2].count != npool * stride {
            return Err(ReadTableError::Corrupt("cost arena count mismatch"));
        }
        let npat = chunk[3].count;
        if chunk[4].count != npat + 1 {
            return Err(ReadTableError::Corrupt("pattern offset count mismatch"));
        }
        if chunk[1].count % 2 != 0 {
            return Err(ReadTableError::Corrupt("odd edge byte count"));
        }
    }
    Ok(())
}

/// Value-level validation of one degree's arenas — shared verbatim by the
/// streaming parse and the mmap open, so both backings accept exactly the
/// same set of files.
fn validate_degree_arenas(
    d: u8,
    edge_off: &[u32],
    edges: &[u8],
    costs: &[u16],
    keys: &[u64],
    pat_off: &[u32],
    ids: &[u32],
) -> Result<(), ReadTableError> {
    let npool = edge_off.len() - 1; // length checked by the section table
    if edge_off[0] != 0 || edge_off.windows(2).any(|w| w[0] > w[1]) {
        return Err(ReadTableError::Corrupt("edge offsets not monotonic"));
    }
    if edges.len() != 2 * edge_off[npool] as usize {
        return Err(ReadTableError::Corrupt("edge arena length mismatch"));
    }
    let max_node = (d as u16) * (d as u16);
    if edges.iter().any(|&b| b as u16 >= max_node) {
        return Err(ReadTableError::Corrupt("edge node out of range"));
    }
    let stride = d as usize * (2 * d as usize - 2);
    if costs.len() != npool * stride {
        return Err(ReadTableError::Corrupt("cost arena count mismatch"));
    }
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err(ReadTableError::Corrupt("pattern keys not ascending"));
    }
    let npat = keys.len();
    if pat_off[0] != 0 || pat_off.windows(2).any(|w| w[0] > w[1]) {
        return Err(ReadTableError::Corrupt("pattern offsets not monotonic"));
    }
    if ids.len() != pat_off[npat] as usize {
        return Err(ReadTableError::Corrupt("topology-ref arena length mismatch"));
    }
    if ids.iter().any(|&id| id as usize >= npool) {
        return Err(ReadTableError::Corrupt("pool index out of range"));
    }
    Ok(())
}

/// Consumes the alignment padding in front of `sec` and advances the
/// running byte position past the section's payload.
fn skip_padding<R: Read>(
    r: &mut R,
    sec: &RawSection,
    consumed: &mut usize,
) -> Result<(), ReadTableError> {
    let mut skip = [0u8; MAP_ALIGN];
    let pad = sec.offset as usize - *consumed;
    r.read_exact(&mut skip[..pad])?;
    *consumed = sec.offset as usize + sec.bytes as usize;
    Ok(())
}

fn read_u8_elems<R: Read>(
    r: &mut R,
    sec: &RawSection,
    consumed: &mut usize,
) -> Result<Vec<u8>, ReadTableError> {
    skip_padding(r, sec, consumed)?;
    let mut v = vec![0u8; sec.count as usize];
    r.read_exact(&mut v)?;
    Ok(v)
}

// The owned path deliberately keeps the v3 parse structure: every element
// is individually read from the stream, hashed and copied into a growing
// arena. `open_mmap` exists precisely because this per-element loop is
// what a full parse costs; keeping it element-wise keeps the two paths an
// honest comparison and the owned path a structurally independent
// cross-check of the mapped one.
macro_rules! read_elems {
    ($name:ident, $ty:ty) => {
        fn $name<R: Read>(
            r: &mut R,
            sec: &RawSection,
            consumed: &mut usize,
        ) -> Result<Vec<$ty>, ReadTableError> {
            skip_padding(r, sec, consumed)?;
            let mut v = Vec::with_capacity(sec.count as usize);
            let mut b = [0u8; std::mem::size_of::<$ty>()];
            for _ in 0..sec.count {
                r.read_exact(&mut b)?;
                v.push(<$ty>::from_le_bytes(b));
            }
            Ok(v)
        }
    };
}

read_elems!(read_u16_elems, u16);
read_elems!(read_u32_elems, u32);
read_elems!(read_u64_elems, u64);

/// Reader adapter that feeds every byte it passes through into the
/// striped hasher, so the streaming parse verifies the checksum without
/// buffering the payload twice.
struct HashingReader<R> {
    inner: R,
    hasher: StripedHasher,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hasher: StripedHasher::new(),
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }
}

/// Description of one v4 section, as reported by [`TableInfo`].
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Net degree the section belongs to.
    pub degree: u8,
    /// Arena name (`edge_off`, `edges`, `costs`, `keys`, `pat_off`, `ids`).
    pub kind: &'static str,
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Payload byte length (excluding alignment padding).
    pub bytes: u64,
    /// Element count.
    pub count: u64,
    /// Whether the offset is 64-byte aligned (always true for well-formed
    /// files; reported so tooling can show it).
    pub aligned: bool,
}

/// File-level metadata of a v4 table, read without loading the arenas —
/// the `lut info` backing report.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Format version (always 4 for files this build can read).
    pub version: u32,
    /// Largest tabulated degree λ.
    pub lambda: u8,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Stored payload checksum.
    pub checksum: u64,
    /// Whether the stored checksum matches the file contents.
    pub checksum_ok: bool,
    /// Whether the file passes every zero-copy serving precondition
    /// (version, checksum, section order, alignment, bounds).
    pub mappable: bool,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
}

impl TableInfo {
    /// Reads the header and section table of a v4 file and verifies its
    /// checksum, without building a [`LookupTable`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadTableError`] for files this build cannot describe at
    /// all (I/O failures, bad magic, foreign versions, truncated or
    /// malformed headers). Checksum mismatches and misalignments are
    /// *reported*, not errored, so tooling can describe damaged files.
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<TableInfo, ReadTableError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 {
            return Err(ReadTableError::Corrupt("file shorter than header"));
        }
        if &bytes[0..4] != MAGIC {
            return Err(ReadTableError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ReadTableError::BadVersion(version));
        }
        if bytes.len() < HEADER_LEN {
            return Err(ReadTableError::Corrupt("file shorter than header"));
        }
        let (lambda, nsec, stored, file_len) =
            parse_header(bytes[..HEADER_LEN].try_into().expect("64 bytes"))?;
        let table_end = HEADER_LEN + nsec * ENTRY_LEN;
        if table_end > bytes.len() {
            return Err(ReadTableError::Corrupt("section table escapes the file"));
        }
        let mut sections = Vec::with_capacity(nsec);
        let mut raw = Vec::with_capacity(nsec);
        for i in 0..nsec {
            let entry: &[u8; ENTRY_LEN] = bytes[HEADER_LEN + i * ENTRY_LEN..][..ENTRY_LEN]
                .try_into()
                .expect("32 bytes");
            let sec = parse_section_entry(entry)?;
            raw.push(sec);
            sections.push(SectionInfo {
                degree: sec.degree,
                kind: KINDS
                    .get(sec.kind as usize)
                    .map_or("unknown", |(name, _)| name),
                offset: sec.offset,
                bytes: sec.bytes,
                count: sec.count,
                aligned: (sec.offset as usize).is_multiple_of(MAP_ALIGN),
            });
        }
        let checksum_ok = file_len == bytes.len()
            && fnv1a64_striped(&bytes[HEADER_LEN..]) == stored;
        let structural_ok = validate_section_table(lambda, &raw, file_len).is_ok();
        Ok(TableInfo {
            version: VERSION,
            lambda,
            file_len: bytes.len() as u64,
            checksum: stored,
            checksum_ok,
            mappable: checksum_ok && structural_ok,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Backing;
    use crate::LutBuilder;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("patlabor_lut_v4_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Recomputes and rewrites the header checksum of a serialized table,
    /// so structural corruption can be planted *behind* a valid checksum.
    fn reseal(buf: &mut [u8]) {
        let sum = fnv1a64_striped(&buf[HEADER_LEN..]);
        buf[24..32].copy_from_slice(&sum.to_le_bytes());
    }

    /// Locates the section entry for `(degree, kind)` and returns its
    /// payload offset.
    fn section_offset(buf: &[u8], degree: u8, kind: u8) -> usize {
        let nsec = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
        for i in 0..nsec {
            let e = &buf[HEADER_LEN + i * ENTRY_LEN..][..ENTRY_LEN];
            if e[0] == degree && e[1] == kind {
                return u64::from_le_bytes(e[8..16].try_into().unwrap()) as usize;
            }
        }
        panic!("section ({degree}, {kind}) not found");
    }

    #[test]
    fn roundtrip_preserves_table() {
        let table = LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let back = LookupTable::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn reserialization_is_byte_identical() {
        // serialize → deserialize → serialize must reproduce the bytes:
        // the in-memory CSR arenas are exactly what the sections store.
        let table = LutBuilder::new(5).threads(2).build();
        let mut first = Vec::new();
        table.write_to(&mut first).unwrap();
        let back = LookupTable::read_from(first.as_slice()).unwrap();
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = LutBuilder::new(4).threads(4).build();
        let b = LutBuilder::new(4).threads(1).build();
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.write_to(&mut ba).unwrap();
        b.write_to(&mut bb).unwrap();
        assert_eq!(ba, bb, "thread count must not affect the bytes");
    }

    #[test]
    fn mmap_open_round_trips_and_reserializes() {
        let table = LutBuilder::new(4).threads(2).build();
        let path = tmp("v4_mmap.plut");
        table.save(&path).unwrap();
        let mapped = LookupTable::open_mmap(&path).unwrap();
        assert_eq!(mapped.backing(), Backing::Mapped);
        assert_eq!(table.backing(), Backing::Owned);
        // Backing-agnostic equality and byte-identical reserialization.
        assert_eq!(mapped, table);
        let mut owned_bytes = Vec::new();
        let mut mapped_bytes = Vec::new();
        table.write_to(&mut owned_bytes).unwrap();
        mapped.write_to(&mut mapped_bytes).unwrap();
        assert_eq!(owned_bytes, mapped_bytes);
        // A clone outlives the original table's mapping handle.
        let clone = mapped.clone();
        drop(mapped);
        assert_eq!(clone.pattern_count(4), 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sections_are_aligned_and_described() {
        let table = LutBuilder::new(4).threads(1).build();
        let path = tmp("v4_info.plut");
        table.save(&path).unwrap();
        let info = TableInfo::read(&path).unwrap();
        assert_eq!(info.version, 4);
        assert_eq!(info.lambda, 4);
        assert!(info.checksum_ok);
        assert!(info.mappable);
        assert_eq!(info.sections.len(), 12); // 2 degrees × 6 arenas
        for s in &info.sections {
            assert!(s.aligned, "section {}/{} misaligned", s.degree, s.kind);
            assert_eq!(s.offset % 64, 0);
        }
        assert_eq!(
            info.sections.iter().map(|s| s.kind).collect::<Vec<_>>()[..6],
            ["edge_off", "edges", "costs", "keys", "pat_off", "ids"]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = LookupTable::read_from(&b"XXXXXXXX"[..]).unwrap_err();
        assert!(matches!(err, ReadTableError::BadMagic));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.resize(HEADER_LEN, 0);
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadVersion(99)));
    }

    #[test]
    fn v3_stream_reports_the_migration_path() {
        // A v3 header (the pre-mmap unaligned layout) must point the user
        // at regeneration, not fail with a generic parse error.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PLUT");
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.push(4); // v3 lambda byte — never reached
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadVersion(3)));
        let msg = err.to_string();
        assert!(
            msg.contains("unsupported table version 3"),
            "message must name the offending version: {msg}"
        );
        assert!(
            msg.contains("`patlabor lut build --lambda <L> --format v4 -o <FILE>`"),
            "message must name the migration path: {msg}"
        );
        // The mmap open reports the same migration path.
        let path = tmp("v3_header.plut");
        buf.resize(HEADER_LEN, 0);
        std::fs::write(&path, &buf).unwrap();
        let err = LookupTable::open_mmap(&path).unwrap_err();
        assert!(matches!(err, ReadTableError::BadVersion(3)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_stream() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(LookupTable::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn every_corrupted_byte_is_detected_by_the_stream_parse() {
        // Flipping ANY byte must turn the load into an error: header flips
        // break magic/version/reserved/section-count checks, body flips
        // break the checksum or structural validation, checksum-field
        // flips break the comparison. Truncations at every position must
        // error as well.
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0xff;
            assert!(
                LookupTable::read_from(corrupted.as_slice()).is_err(),
                "byte flip at {pos} must be detected"
            );
            let mut truncated = buf.clone();
            truncated.truncate(pos);
            assert!(
                LookupTable::read_from(truncated.as_slice()).is_err(),
                "truncation at {pos} must error"
            );
        }
    }

    #[test]
    fn every_corrupted_byte_is_detected_at_mmap_open() {
        // The zero-copy path must validate — checksum first, then bounds
        // and structure — before any borrow; no flip or truncation may
        // produce a usable table.
        let table = LutBuilder::new(3).threads(1).build();
        let path = tmp("v4_flip.plut");
        table.save(&path).unwrap();
        let buf = std::fs::read(&path).unwrap();
        for pos in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0xff;
            std::fs::write(&path, &corrupted).unwrap();
            assert!(
                LookupTable::open_mmap(&path).is_err(),
                "byte flip at {pos} must be detected at open"
            );
            std::fs::write(&path, &buf[..pos]).unwrap();
            assert!(
                LookupTable::open_mmap(&path).is_err(),
                "truncation at {pos} must error at open"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_pool_index_is_rejected_behind_a_valid_checksum() {
        // Corrupt one pattern id to an impossible pool index and reseal
        // the checksum: the structural check must fire on both paths.
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let ids_at = section_offset(&buf, 3, 5);
        buf[ids_at..ids_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut buf);
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("pool index out of range")
        ));
        let path = tmp("v4_badid.plut");
        std::fs::write(&path, &buf).unwrap();
        let err = LookupTable::open_mmap(&path).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("pool index out of range")
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_edge_nodes_are_rejected_behind_a_valid_checksum() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let edges_at = section_offset(&buf, 3, 1);
        buf[edges_at] = 200; // node 200 >= 9
        reseal(&mut buf);
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("edge node out of range")
        ));
    }

    #[test]
    fn non_ascending_pattern_keys_are_rejected_behind_a_valid_checksum() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let keys_at = section_offset(&buf, 3, 3);
        // Overwrite the second key with the first: not strictly ascending.
        let first: [u8; 8] = buf[keys_at..keys_at + 8].try_into().unwrap();
        buf[keys_at + 8..keys_at + 16].copy_from_slice(&first);
        reseal(&mut buf);
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTableError::Corrupt("pattern keys not ascending")
        ));
    }

    #[test]
    fn checksum_mismatch_is_reported_as_such() {
        let table = LutBuilder::new(3).threads(1).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        // Flip a bit in a zero-padding byte: structure is intact, only
        // the checksum can catch it.
        let edges_at = section_offset(&buf, 3, 1);
        buf[edges_at - 1] ^= 0x01; // padding before the edges section
        let err = LookupTable::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTableError::BadChecksum { .. }), "{err}");
        let path = tmp("v4_pad.plut");
        std::fs::write(&path, &buf).unwrap();
        let err = LookupTable::open_mmap(&path).unwrap_err();
        assert!(matches!(err, ReadTableError::BadChecksum { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn striped_checksum_is_order_sensitive_and_stable() {
        // Regression pin: the striped hash must distinguish permuted
        // bytes (every byte is positional within its word and lane) and
        // must be deterministic.
        let a: Vec<u8> = (0..=255u8).collect();
        let mut b = a.clone();
        b.swap(8, 16); // different words, different lanes
        assert_ne!(fnv1a64_striped(&a), fnv1a64_striped(&b));
        let mut c = a.clone();
        c.swap(0, 1); // same word — the word value still changes
        assert_ne!(fnv1a64_striped(&a), fnv1a64_striped(&c));
        let mut d = a.clone();
        d.swap(0, 64); // same lane, different blocks
        assert_ne!(fnv1a64_striped(&a), fnv1a64_striped(&d));
        assert_eq!(fnv1a64_striped(&a), fnv1a64_striped(&a));
        // The trailing partial block is zero-padded, so the folded length
        // must keep a message distinct from its explicitly-padded form.
        assert_ne!(fnv1a64_striped(&[1, 2, 3]), fnv1a64_striped(&[1, 2, 3, 0]));
        // Incremental updates agree with the one-shot hash regardless of
        // chunk boundaries (the streaming reader feeds odd-sized pieces).
        let mut h = StripedHasher::new();
        for chunk in a.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64_striped(&a));
    }

    #[test]
    fn queries_agree_between_backings() {
        use patlabor_geom::{Net, Point};
        let table = LutBuilder::new(4).threads(1).build();
        let path = tmp("v4_query.plut");
        table.save(&path).unwrap();
        let mapped = LookupTable::open_mmap(&path).unwrap();
        let net = Net::new(vec![
            Point::new(0, 0),
            Point::new(7, 2),
            Point::new(3, 9),
            Point::new(10, 5),
        ])
        .unwrap();
        let a = table.query(&net).unwrap();
        let b = mapped.query(&net).unwrap();
        assert_eq!(a.cost_vec(), b.cost_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let table = LutBuilder::new(3).threads(1).build();
        let path = tmp("t3.plut");
        table.save(&path).unwrap();
        let back = LookupTable::load(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }
}
