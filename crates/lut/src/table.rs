//! The lookup table proper: storage layout, query path and statistics.

use std::collections::HashMap;

use patlabor_geom::{HananGrid, Net, Pattern, RankNode};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union, RoutingTree};

/// One stored topology: tree edges in the canonical pattern's rank grid,
/// packed as `col · n + row` byte pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoredTopology {
    /// Packed edges (endpoint node ids).
    pub edges: Vec<(u8, u8)>,
}

impl StoredTopology {
    /// Packs rank-node edges.
    pub fn from_rank_edges(edges: &[(RankNode, RankNode)], n: u8) -> Self {
        let pack = |nd: RankNode| nd.col * n + nd.row;
        let mut packed: Vec<(u8, u8)> = edges
            .iter()
            .map(|&(a, b)| {
                let (pa, pb) = (pack(a), pack(b));
                (pa.min(pb), pa.max(pb))
            })
            .collect();
        packed.sort_unstable();
        packed.dedup();
        StoredTopology { edges: packed }
    }

    /// Unpacks into rank-node edges.
    pub fn rank_edges(&self, n: u8) -> Vec<(RankNode, RankNode)> {
        self.edges
            .iter()
            .map(|&(a, b)| {
                (
                    RankNode::new(a / n, a % n),
                    RankNode::new(b / n, b % n),
                )
            })
            .collect()
    }
}

/// Per-degree statistics — the rows of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutStats {
    /// Net degree.
    pub degree: u8,
    /// Number of stored canonical patterns (`#Index`).
    pub num_patterns: usize,
    /// Average number of potentially optimal tree topologies per pattern
    /// (`#Topo`).
    pub avg_topologies: f64,
    /// Total topology references across all patterns.
    pub total_topologies: usize,
    /// Unique topologies after cross-pattern clustering (the paper's
    /// "store only one topology for each cluster").
    pub unique_topologies: usize,
    /// Approximate in-memory size in bytes of this degree's table.
    pub bytes: usize,
}

/// One degree's table: a cross-pattern topology pool plus per-pattern
/// index lists (the paper's clustering: identical topologies arising
/// under different patterns/sources are stored once).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct DegreeTable {
    /// Deduplicated topology storage.
    pub(crate) pool: Vec<StoredTopology>,
    /// Canonical pattern key → indices into `pool`.
    pub(crate) patterns: HashMap<u64, Vec<u32>>,
}

impl DegreeTable {
    /// Builds a degree table from per-pattern topology lists, pooling
    /// duplicates.
    pub(crate) fn from_lists(lists: HashMap<u64, Vec<StoredTopology>>) -> DegreeTable {
        let mut pool: Vec<StoredTopology> = Vec::new();
        let mut index: HashMap<StoredTopology, u32> = HashMap::new();
        let mut patterns = HashMap::with_capacity(lists.len());
        // Deterministic pool order: process patterns by key.
        let mut keys: Vec<u64> = lists.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let ids: Vec<u32> = lists[&key]
                .iter()
                .map(|t| {
                    *index.entry(t.clone()).or_insert_with(|| {
                        pool.push(t.clone());
                        (pool.len() - 1) as u32
                    })
                })
                .collect();
            patterns.insert(key, ids);
        }
        DegreeTable { pool, patterns }
    }
}

/// Lookup tables for every degree `2 ..= λ`.
///
/// Construct with [`crate::LutBuilder`] or load a serialized table with
/// [`LookupTable::read_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTable {
    pub(crate) lambda: u8,
    /// `tables[d]` for degree `d`; indices `0..3` stay empty.
    pub(crate) tables: Vec<DegreeTable>,
}

impl LookupTable {
    /// The largest tabulated degree λ.
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// The exact Pareto frontier of `net` with one witness tree per point,
    /// or `None` when the net's degree exceeds λ.
    ///
    /// The query canonicalizes the net's pattern, maps the stored
    /// topologies back through the inverse symmetry transform, evaluates
    /// them against the net's actual coordinates and prunes numerically.
    pub fn query(&self, net: &Net) -> Option<ParetoSet<RoutingTree>> {
        let n = net.degree();
        if n < 2 || n > self.lambda as usize {
            return None;
        }
        if n == 2 {
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut set = ParetoSet::new();
            set.insert(Cost::new(w, d), tree);
            return Some(set);
        }
        let grid = HananGrid::new(net);
        let (pattern, _) = Pattern::from_grid(&grid);
        let (canonical, transform) = pattern.canonical();
        let degree_table = &self.tables[n];
        let ids = degree_table.patterns.get(&canonical.key().as_u64())?;
        let inv = transform.inverse();
        let nb = n as u8;

        let mut witnesses: Vec<(Cost, RoutingTree)> = Vec::with_capacity(ids.len());
        for &id in ids {
            let topo = &degree_table.pool[id as usize];
            let pts: Vec<_> = topo
                .rank_edges(nb)
                .into_iter()
                .map(|(a, b)| {
                    let map = |nd: RankNode| {
                        let instance_node = inv.apply(nd, nb);
                        patlabor_geom::Point::new(
                            grid.xs()[instance_node.col as usize],
                            grid.ys()[instance_node.row as usize],
                        )
                    };
                    (map(a), map(b))
                })
                .collect();
            let tree = extract_from_union(net, &pts)
                .expect("stored topologies span every pattern pin");
            let (w, d) = tree.objectives();
            witnesses.push((Cost::new(w, d), tree));
        }
        Some(ParetoSet::from_unpruned(witnesses))
    }

    /// Number of stored patterns for `degree`.
    pub fn pattern_count(&self, degree: u8) -> usize {
        self.tables
            .get(degree as usize)
            .map_or(0, |t| t.patterns.len())
    }

    /// Statistics per degree (Table II).
    pub fn stats(&self) -> Vec<LutStats> {
        (3..=self.lambda)
            .map(|d| {
                let table = &self.tables[d as usize];
                let total: usize = table.patterns.values().map(Vec::len).sum();
                let bytes: usize = table
                    .pool
                    .iter()
                    .map(|t| 2 * t.edges.len() + 1)
                    .sum::<usize>()
                    + total * 4
                    + table.patterns.len() * 10;
                LutStats {
                    degree: d,
                    num_patterns: table.patterns.len(),
                    avg_topologies: if table.patterns.is_empty() {
                        0.0
                    } else {
                        total as f64 / table.patterns.len() as f64
                    },
                    total_topologies: total,
                    unique_topologies: table.pool.len(),
                    bytes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_topology_pack_roundtrip() {
        let n = 5u8;
        let edges = vec![
            (RankNode::new(0, 0), RankNode::new(3, 2)),
            (RankNode::new(4, 4), RankNode::new(1, 1)),
        ];
        let t = StoredTopology::from_rank_edges(&edges, n);
        let back = t.rank_edges(n);
        // Roundtrip preserves the edge set (endpoint order normalized).
        assert_eq!(back.len(), 2);
        assert!(back.contains(&(RankNode::new(0, 0), RankNode::new(3, 2))));
        assert!(back.contains(&(RankNode::new(1, 1), RankNode::new(4, 4))));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let n = 3u8;
        let e = (RankNode::new(0, 0), RankNode::new(2, 2));
        let t = StoredTopology::from_rank_edges(&[e, e, (e.1, e.0)], n);
        assert_eq!(t.edges.len(), 1);
    }

    #[test]
    fn pooling_dedupes_across_patterns() {
        let topo = StoredTopology {
            edges: vec![(0, 1), (1, 2)],
        };
        let other = StoredTopology {
            edges: vec![(0, 2)],
        };
        let mut lists = HashMap::new();
        lists.insert(1u64, vec![topo.clone(), other.clone()]);
        lists.insert(2u64, vec![topo.clone()]);
        lists.insert(3u64, vec![other.clone(), topo.clone()]);
        let table = DegreeTable::from_lists(lists);
        assert_eq!(table.pool.len(), 2, "two unique topologies");
        // Pattern 3 references both, in its own order.
        let ids3 = &table.patterns[&3];
        assert_eq!(table.pool[ids3[0] as usize], other);
        assert_eq!(table.pool[ids3[1] as usize], topo);
    }

    #[test]
    fn pooling_is_deterministic() {
        let mk = || {
            let mut lists = HashMap::new();
            for k in 0..20u64 {
                lists.insert(
                    k,
                    vec![StoredTopology {
                        edges: vec![(0, (k % 5) as u8)],
                    }],
                );
            }
            DegreeTable::from_lists(lists)
        };
        assert_eq!(mk(), mk());
    }
}
