//! The lookup table proper: CSR storage layout, the dot-product query
//! kernel and statistics.
//!
//! # v3 storage layout
//!
//! Each degree's table is a set of flat arenas (one allocation each, no
//! per-topology boxing):
//!
//! ```text
//! pool entry t (a pooled topology)
//!   edges  edge arena  [edge_off[t] .. edge_off[t+1])   packed (u8, u8)
//!   rows   cost arena  [t·stride .. (t+1)·stride)       u16, stride = n·(2n−2)
//!          ── W row (2n−2), then n−1 per-sink delay rows (2n−2 each)
//!
//! pattern p (canonical key, sorted ascending → binary search)
//!   ids    id arena    [pattern_off[p] .. pattern_off[p+1])  u32 pool ids
//! ```
//!
//! A query computes the net's canonical gap vector once, scores every
//! candidate topology with integer dot products against its stored rows
//! (`w = W·l`, `d = maxⱼ Dⱼ·l`), prunes the `(w, d)` pairs numerically,
//! and materializes [`RoutingTree`]s **only for the frontier survivors**.
//! Dominated candidates never touch the tree extractor.

use std::collections::HashMap;

use patlabor_dw::symbolic::{dot, SymbolicSolution};
use patlabor_geom::{Net, NetClass, RankNode};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union, RoutingTree};

/// One pooled topology: tree edges in the canonical pattern's rank grid
/// (packed as `col · n + row` byte pairs) plus its symbolic cost rows.
///
/// `rows` is the flattened block [`SymbolicSolution::flat_rows`] produces:
/// the wirelength multiplicities `W` (length `2n − 2`) followed by one
/// delay row per sink in ascending sink-column order. Two topologies from
/// different patterns pool into one entry only when **both** the edge set
/// and the rows agree — the rows are what the query kernel evaluates, so
/// pooling must never conflate topologies whose costs differ on some net.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoredTopology {
    /// Packed edges (endpoint node ids), sorted and deduplicated.
    pub edges: Vec<(u8, u8)>,
    /// Flattened cost rows: `n · (2n − 2)` multiplicities.
    pub rows: Vec<u16>,
}

impl StoredTopology {
    /// Packs a symbolic DP solution of a degree-`n` pattern.
    ///
    /// # Panics
    ///
    /// Panics if the solution's row shape does not match degree `n`
    /// (`2n − 2` gap dimensions, `n − 1` delay rows).
    pub fn from_solution(sol: &SymbolicSolution, n: u8) -> Self {
        let dims = 2 * n as usize - 2;
        assert_eq!(sol.w.len(), dims, "W row has wrong gap dimension");
        assert_eq!(
            sol.delays.len(),
            n as usize - 1,
            "final DP solutions carry one delay row per sink"
        );
        let pack = |nd: RankNode| nd.col * n + nd.row;
        let mut packed: Vec<(u8, u8)> = sol
            .edges
            .iter()
            .map(|&(a, b)| {
                let (pa, pb) = (pack(a), pack(b));
                (pa.min(pb), pa.max(pb))
            })
            .collect();
        packed.sort_unstable();
        packed.dedup();
        StoredTopology {
            edges: packed,
            rows: sol.flat_rows(),
        }
    }

    /// Unpacks into rank-node edges.
    pub fn rank_edges(&self, n: u8) -> Vec<(RankNode, RankNode)> {
        self.edges
            .iter()
            .map(|&(a, b)| {
                (
                    RankNode::new(a / n, a % n),
                    RankNode::new(b / n, b % n),
                )
            })
            .collect()
    }
}

/// Per-degree statistics — the rows of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutStats {
    /// Net degree.
    pub degree: u8,
    /// Number of stored canonical patterns (`#Index`).
    pub num_patterns: usize,
    /// Average number of potentially optimal tree topologies per pattern
    /// (`#Topo`).
    pub avg_topologies: f64,
    /// Total topology references across all patterns.
    pub total_topologies: usize,
    /// Unique topologies after cross-pattern clustering (the paper's
    /// "store only one topology for each cluster"; v3 clusters on
    /// `(edges, cost rows)` so pooled entries are query-equivalent).
    pub unique_topologies: usize,
    /// Approximate in-memory size in bytes of this degree's arenas.
    pub bytes: usize,
}

/// One degree's table as flat CSR arenas (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct DegreeTable {
    /// Degree `n` (0 for the empty placeholder tables below degree 3).
    pub(crate) n: u8,
    /// `edge_off[t] .. edge_off[t+1]` indexes `edges` for pool entry `t`;
    /// length `npool + 1`, starts at 0.
    pub(crate) edge_off: Vec<u32>,
    /// Packed edge arena.
    pub(crate) edges: Vec<(u8, u8)>,
    /// Cost arena: `npool × n × (2n − 2)` multiplicities, fixed stride.
    pub(crate) costs: Vec<u16>,
    /// Canonical pattern keys, sorted ascending (binary-searched).
    pub(crate) pattern_keys: Vec<u64>,
    /// `pattern_off[p] .. pattern_off[p+1]` indexes `pattern_ids`;
    /// length `npat + 1`, starts at 0.
    pub(crate) pattern_off: Vec<u32>,
    /// Pool-id arena.
    pub(crate) pattern_ids: Vec<u32>,
}

impl DegreeTable {
    /// Cost-arena stride per pool entry: one `W` row plus `n − 1` delay
    /// rows, each `2n − 2` long.
    pub(crate) fn row_stride(&self) -> usize {
        self.n as usize * (2 * self.n as usize).saturating_sub(2)
    }

    /// Number of pooled topologies.
    pub(crate) fn npool(&self) -> usize {
        self.edge_off.len().saturating_sub(1)
    }

    /// Packed edges of pool entry `id`.
    pub(crate) fn edges_of(&self, id: u32) -> &[(u8, u8)] {
        let (lo, hi) = (
            self.edge_off[id as usize] as usize,
            self.edge_off[id as usize + 1] as usize,
        );
        &self.edges[lo..hi]
    }

    /// Flattened cost rows of pool entry `id` (`W` first, then delays).
    pub(crate) fn rows_of(&self, id: u32) -> &[u16] {
        let stride = self.row_stride();
        &self.costs[id as usize * stride..(id as usize + 1) * stride]
    }

    /// Pool ids of a canonical pattern key, via binary search.
    pub(crate) fn ids_of(&self, key: u64) -> Option<&[u32]> {
        let p = self.pattern_keys.binary_search(&key).ok()?;
        let (lo, hi) = (
            self.pattern_off[p] as usize,
            self.pattern_off[p + 1] as usize,
        );
        Some(&self.pattern_ids[lo..hi])
    }

    /// Number of stored patterns.
    pub(crate) fn pattern_count(&self) -> usize {
        self.pattern_keys.len()
    }

    /// Reassembles pool entry `id` (test and tooling convenience; the
    /// query path reads the arenas directly).
    #[cfg(test)]
    pub(crate) fn topology(&self, id: u32) -> StoredTopology {
        StoredTopology {
            edges: self.edges_of(id).to_vec(),
            rows: self.rows_of(id).to_vec(),
        }
    }

    /// Builds a degree table from per-pattern topology lists, pooling
    /// entries whose `(edges, rows)` agree.
    ///
    /// # Panics
    ///
    /// Panics if a topology's row block has the wrong stride for `degree`.
    pub(crate) fn from_lists(
        degree: u8,
        lists: HashMap<u64, Vec<StoredTopology>>,
    ) -> DegreeTable {
        let mut table = DegreeTable {
            n: degree,
            edge_off: vec![0],
            pattern_off: vec![0],
            ..DegreeTable::default()
        };
        let stride = table.row_stride();
        let mut index: HashMap<StoredTopology, u32> = HashMap::new();
        // Deterministic arena order: process patterns by ascending key —
        // which is also the order `pattern_keys` needs for binary search.
        let mut keys: Vec<u64> = lists.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            for t in &lists[&key] {
                let id = *index.entry(t.clone()).or_insert_with(|| {
                    assert_eq!(t.rows.len(), stride, "row block has wrong stride");
                    table.edges.extend_from_slice(&t.edges);
                    table.edge_off.push(table.edges.len() as u32);
                    table.costs.extend_from_slice(&t.rows);
                    (table.edge_off.len() - 2) as u32
                });
                table.pattern_ids.push(id);
            }
            table.pattern_keys.push(key);
            table.pattern_off.push(table.pattern_ids.len() as u32);
        }
        table
    }
}

std::thread_local! {
    /// Per-thread count of `RoutingTree` materializations (see
    /// [`LookupTable::thread_materializations`]).
    static MATERIALIZATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };

    /// Reusable query scratch: `(cost, input position, pool id)` triples.
    /// Thread-local so concurrent batch workers never contend and the
    /// steady-state query allocates nothing for scoring.
    static SCORE_SCRATCH: std::cell::RefCell<Vec<(Cost, u32, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Lookup tables for every degree `2 ..= λ`.
///
/// Construct with [`crate::LutBuilder`] or load a serialized table with
/// [`LookupTable::read_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTable {
    pub(crate) lambda: u8,
    /// `tables[d]` for degree `d`; indices `0..3` stay empty.
    pub(crate) tables: Vec<DegreeTable>,
}

impl LookupTable {
    /// The largest tabulated degree λ.
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// The exact Pareto frontier of `net` with one witness tree per point,
    /// or `None` when the net's degree exceeds λ.
    ///
    /// The query canonicalizes the net's pattern, scores every stored
    /// candidate with integer dot products against its symbolic cost rows,
    /// prunes numerically, and materializes witness trees only for the
    /// surviving frontier.
    pub fn query(&self, net: &Net) -> Option<ParetoSet<RoutingTree>> {
        let n = net.degree();
        if n < 2 || n > self.lambda as usize {
            return None;
        }
        if n == 2 {
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut set = ParetoSet::new();
            set.insert(Cost::new(w, d), tree);
            return Some(set);
        }
        let class = self
            .classify(net)
            .expect("degree checked to be in 3..=lambda");
        Some(self.query_witnesses(net, &class)?.0)
    }

    /// Canonicalizes `net` for [`LookupTable::query_witnesses`] /
    /// [`LookupTable::query_ids`], or `None` when its degree is outside
    /// `3..=λ` (degree 2 has a closed-form answer and nothing to cache).
    ///
    /// The canonicalization itself lives in [`patlabor_geom::NetClass`] —
    /// the same object the frontier cache keys on — so the table and the
    /// cache can never disagree about which nets are congruent.
    pub fn classify(&self, net: &Net) -> Option<NetClass> {
        let n = net.degree();
        if n < 3 || n > self.lambda as usize {
            return None;
        }
        NetClass::of(net)
    }

    /// The candidate pool ids stored for `class`'s canonical pattern, or
    /// `None` when the pattern is not tabulated. This is the pure *lookup*
    /// stage of a query: one binary search over the sorted key array.
    pub fn candidate_ids(&self, class: &NetClass) -> Option<&[u32]> {
        self.tables[class.degree() as usize].ids_of(class.canonical_key())
    }

    /// The *score* stage: evaluates every candidate id by dot products
    /// against its stored cost rows and prunes the `(w, d)` pairs
    /// numerically. Returns the frontier as `(cost, pool id)` pairs in
    /// frontier order (wirelength ascending) — exactly the entries
    /// [`LookupTable::materialize`] should be called for.
    ///
    /// Ties between equal-cost candidates break toward the earlier `ids`
    /// position, matching [`ParetoSet::from_unpruned`]'s first-in-input
    /// rule, so the surviving ids are a pure function of `(canonical key,
    /// canonical gaps)`.
    pub fn score_candidates(&self, class: &NetClass, ids: &[u32]) -> Vec<(Cost, u32)> {
        let table = &self.tables[class.degree() as usize];
        let gaps = class.canonical_gaps();
        let dims = gaps.len();
        SCORE_SCRATCH.with(|cell| {
            let mut scored = cell.borrow_mut();
            scored.clear();
            for (seq, &id) in ids.iter().enumerate() {
                let rows = table.rows_of(id);
                let w = dot(&rows[..dims], gaps);
                let d = rows[dims..]
                    .chunks_exact(dims)
                    .map(|row| dot(row, gaps))
                    .max()
                    .unwrap_or(0);
                scored.push((Cost::new(w, d), seq as u32, id));
            }
            // The seq tie-break makes the key total, so the unstable sort
            // reproduces `from_unpruned`'s stable (w ↑, d ↑) order.
            scored.sort_unstable_by_key(|&(c, seq, _)| (c.wirelength, c.delay, seq));
            let mut frontier: Vec<(Cost, u32)> = Vec::new();
            for &(c, _, id) in scored.iter() {
                match frontier.last() {
                    Some(&(last, _)) if last.delay <= c.delay => {} // dominated
                    _ => frontier.push((c, id)),
                }
            }
            frontier
        })
    }

    /// The *materialize* stage: instantiates one stored topology against
    /// `net`'s coordinates, producing a witness [`RoutingTree`].
    pub fn materialize(&self, net: &Net, class: &NetClass, id: u32) -> RoutingTree {
        MATERIALIZATIONS.with(|c| c.set(c.get() + 1));
        let nb = class.degree();
        let table = &self.tables[nb as usize];
        let pts: Vec<_> = table
            .edges_of(id)
            .iter()
            .map(|&(a, b)| {
                let map = |packed: u8| class.instance_point(RankNode::new(packed / nb, packed % nb));
                (map(a), map(b))
            })
            .collect();
        extract_from_union(net, &pts).expect("stored topologies span every pattern pin")
    }

    /// Number of [`RoutingTree`] materializations performed by queries on
    /// the calling thread since it started. Instrumentation for tests and
    /// benchmarks asserting that trees are built only for frontier
    /// survivors; per-thread so concurrent tests never interfere.
    pub fn thread_materializations() -> u64 {
        MATERIALIZATIONS.with(|c| c.get())
    }

    /// The Pareto frontier of `net` together with the pool ids of the
    /// winning topologies (in frontier order), or `None` when the
    /// canonical pattern is not tabulated.
    ///
    /// Composes the three query stages: [`LookupTable::candidate_ids`]
    /// (binary search), [`LookupTable::score_candidates`] (dot products +
    /// numeric prune) and [`LookupTable::materialize`] (survivors only).
    ///
    /// The id list is exactly what a frontier cache needs to store:
    /// replaying it through [`LookupTable::query_ids`] on any net with the
    /// same canonical key and gap vector reproduces this frontier
    /// bit-for-bit, including tie-break order.
    pub fn query_witnesses(
        &self,
        net: &Net,
        class: &NetClass,
    ) -> Option<(ParetoSet<RoutingTree>, Vec<u32>)> {
        let ids = self.candidate_ids(class)?;
        let frontier = self.score_candidates(class, ids);
        let mut winners = Vec::with_capacity(frontier.len());
        let entries: Vec<(Cost, RoutingTree)> = frontier
            .into_iter()
            .map(|(cost, id)| {
                let tree = self.materialize(net, class, id);
                debug_assert_eq!(
                    (cost.wirelength, cost.delay),
                    tree.objectives(),
                    "dot-product score must equal the materialized tree's objectives"
                );
                winners.push(id);
                (cost, tree)
            })
            .collect();
        // Entries are already sorted ascending-w / strictly-descending-d,
        // so this sweep keeps every entry as-is.
        Some((ParetoSet::from_unpruned(entries), winners))
    }

    /// Re-evaluates a cached winning-id list against `net`.
    ///
    /// `ids` must come from a [`LookupTable::query_witnesses`] call whose
    /// class had the same canonical key and gap vector (the frontier
    /// cache's lookup key); the result then equals that call's frontier.
    pub fn query_ids(&self, net: &Net, class: &NetClass, ids: &[u32]) -> ParetoSet<RoutingTree> {
        let table = &self.tables[class.degree() as usize];
        let gaps = class.canonical_gaps();
        let dims = gaps.len();
        let witnesses: Vec<(Cost, RoutingTree)> = ids
            .iter()
            .map(|&id| {
                let rows = table.rows_of(id);
                let w = dot(&rows[..dims], gaps);
                let d = rows[dims..]
                    .chunks_exact(dims)
                    .map(|row| dot(row, gaps))
                    .max()
                    .unwrap_or(0);
                (Cost::new(w, d), self.materialize(net, class, id))
            })
            .collect();
        // Winners are mutually non-dominating and already in frontier
        // order, so this sort-and-sweep keeps every entry as-is.
        ParetoSet::from_unpruned(witnesses)
    }

    /// Reference query path: materializes **every** candidate topology and
    /// prunes by the trees' measured objectives — the pre-v3 behaviour.
    ///
    /// Kept for the equivalence tests (dot-product scores must reproduce
    /// this frontier exactly) and as the baseline the `BENCH_PR2` harness
    /// measures the dot-product kernel against.
    pub fn query_materialize_all(
        &self,
        net: &Net,
        class: &NetClass,
    ) -> Option<ParetoSet<RoutingTree>> {
        let ids = self.candidate_ids(class)?;
        let witnesses: Vec<(Cost, RoutingTree)> = ids
            .iter()
            .map(|&id| {
                let tree = self.materialize(net, class, id);
                let (w, d) = tree.objectives();
                (Cost::new(w, d), tree)
            })
            .collect();
        Some(ParetoSet::from_unpruned(witnesses))
    }

    /// Number of stored patterns for `degree`.
    pub fn pattern_count(&self, degree: u8) -> usize {
        self.tables
            .get(degree as usize)
            .map_or(0, DegreeTable::pattern_count)
    }

    /// Drops every stored pattern for `degree`, leaving an empty table in
    /// its place.
    ///
    /// This simulates a truncated or corrupt table file — the situation
    /// the router's `MissingDegree` error reports — without hand-crafting
    /// broken bytes. Fault-injection helper for tests and tooling; a table
    /// built by [`crate::LutBuilder`] never has gaps.
    ///
    /// This hook mutates one concrete table. For orchestrated drills —
    /// injecting the same failure mode across a corpus without doctoring
    /// the shared table — use the router's fault plane
    /// (`patlabor::FaultPlane`, kind `missing-degree`), which simulates
    /// this condition per net, deterministically by seed.
    pub fn remove_degree(&mut self, degree: u8) {
        if let Some(table) = self.tables.get_mut(degree as usize) {
            *table = DegreeTable {
                n: degree,
                edge_off: vec![0],
                pattern_off: vec![0],
                ..DegreeTable::default()
            };
        }
    }

    /// Adds `delta` to every multiplicity in pool entry `id`'s cost-row
    /// block for `degree`, de-synchronizing the stored symbolic rows from
    /// the topology's true objectives. Returns `false` (and changes
    /// nothing) when the degree or id is out of range.
    ///
    /// Fault-injection helper (sibling of [`LookupTable::remove_degree`])
    /// for the differential harness's mutation-smoke mode: the harness
    /// corrupts one row and asserts its LUT-vs-numeric-DW oracle *catches*
    /// the planted divergence, proving the oracle itself works. Any net
    /// whose query scores the corrupted row with a nonzero gap vector sees
    /// a shifted dot-product cost. Tables built by [`crate::LutBuilder`]
    /// are never corrupt.
    ///
    /// Like [`LookupTable::remove_degree`], this is the table-local hook;
    /// the router's fault plane (`patlabor::FaultPlane`, kind
    /// `corrupted-row`) injects the equivalent frontier perturbation per
    /// net without touching the table, and the router's frontier
    /// validation then demotes the net down the degradation ladder.
    pub fn corrupt_cost_row(&mut self, degree: u8, id: u32, delta: u16) -> bool {
        let Some(table) = self.tables.get_mut(degree as usize) else {
            return false;
        };
        if id as usize >= table.npool() {
            return false;
        }
        let stride = table.row_stride();
        for v in &mut table.costs[id as usize * stride..(id as usize + 1) * stride] {
            *v = v.wrapping_add(delta);
        }
        true
    }

    /// Statistics per degree (Table II).
    pub fn stats(&self) -> Vec<LutStats> {
        (3..=self.lambda)
            .map(|d| {
                let table = &self.tables[d as usize];
                let total = table.pattern_ids.len();
                let bytes = table.edges.len() * 2
                    + table.edge_off.len() * 4
                    + table.costs.len() * 2
                    + table.pattern_keys.len() * 8
                    + table.pattern_off.len() * 4
                    + table.pattern_ids.len() * 4;
                LutStats {
                    degree: d,
                    num_patterns: table.pattern_count(),
                    avg_topologies: if table.pattern_count() == 0 {
                        0.0
                    } else {
                        total as f64 / table.pattern_count() as f64
                    },
                    total_topologies: total,
                    unique_topologies: table.npool(),
                    bytes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(n: u8, edges: &[(RankNode, RankNode)]) -> SymbolicSolution {
        let dims = 2 * n as usize - 2;
        SymbolicSolution {
            w: vec![1; dims],
            delays: vec![vec![2; dims]; n as usize - 1],
            edges: edges.to_vec(),
        }
    }

    #[test]
    fn stored_topology_pack_roundtrip() {
        let n = 5u8;
        let edges = vec![
            (RankNode::new(0, 0), RankNode::new(3, 2)),
            (RankNode::new(4, 4), RankNode::new(1, 1)),
        ];
        let t = StoredTopology::from_solution(&sol(n, &edges), n);
        let back = t.rank_edges(n);
        // Roundtrip preserves the edge set (endpoint order normalized).
        assert_eq!(back.len(), 2);
        assert!(back.contains(&(RankNode::new(0, 0), RankNode::new(3, 2))));
        assert!(back.contains(&(RankNode::new(1, 1), RankNode::new(4, 4))));
        // Rows: W first, then the four delay rows.
        assert_eq!(t.rows.len(), 5 * 8);
        assert_eq!(&t.rows[..8], &[1; 8]);
        assert_eq!(&t.rows[8..16], &[2; 8]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let n = 3u8;
        let e = (RankNode::new(0, 0), RankNode::new(2, 2));
        let t = StoredTopology::from_solution(&sol(n, &[e, e, (e.1, e.0)]), n);
        assert_eq!(t.edges.len(), 1);
    }

    fn topo(edges: Vec<(u8, u8)>, rows: Vec<u16>) -> StoredTopology {
        StoredTopology { edges, rows }
    }

    #[test]
    fn pooling_dedupes_across_patterns() {
        // Degree 3: stride = 3 · 4 = 12.
        let a = topo(vec![(0, 1), (1, 2)], vec![7; 12]);
        let b = topo(vec![(0, 2)], vec![9; 12]);
        let mut lists = HashMap::new();
        lists.insert(1u64, vec![a.clone(), b.clone()]);
        lists.insert(2u64, vec![a.clone()]);
        lists.insert(3u64, vec![b.clone(), a.clone()]);
        let table = DegreeTable::from_lists(3, lists);
        assert_eq!(table.npool(), 2, "two unique topologies");
        // Pattern 3 references both, in its own order.
        let ids3 = table.ids_of(3).unwrap();
        assert_eq!(table.topology(ids3[0]), b);
        assert_eq!(table.topology(ids3[1]), a);
    }

    #[test]
    fn pooling_keeps_same_edges_with_different_rows_apart() {
        // Same tree shape but different cost rows (e.g. two patterns with
        // different source columns): the query evaluates the rows, so the
        // entries must not merge.
        let a = topo(vec![(0, 1)], vec![1; 12]);
        let b = topo(vec![(0, 1)], vec![2; 12]);
        let mut lists = HashMap::new();
        lists.insert(1u64, vec![a.clone()]);
        lists.insert(2u64, vec![b.clone()]);
        let table = DegreeTable::from_lists(3, lists);
        assert_eq!(table.npool(), 2);
        assert_ne!(
            table.topology(table.ids_of(1).unwrap()[0]),
            table.topology(table.ids_of(2).unwrap()[0])
        );
    }

    #[test]
    fn pooling_is_deterministic() {
        let mk = || {
            let mut lists = HashMap::new();
            for k in 0..20u64 {
                lists.insert(k, vec![topo(vec![(0, (k % 5) as u8)], vec![k as u16; 12])]);
            }
            DegreeTable::from_lists(3, lists)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn csr_accessors_are_consistent() {
        let a = topo(vec![(0, 1), (1, 2), (2, 5)], vec![3; 12]);
        let b = topo(vec![(0, 2)], vec![4; 12]);
        let mut lists = HashMap::new();
        lists.insert(10u64, vec![a.clone(), b.clone()]);
        let table = DegreeTable::from_lists(3, lists);
        assert_eq!(table.edges_of(0), &a.edges[..]);
        assert_eq!(table.edges_of(1), &b.edges[..]);
        assert_eq!(table.rows_of(0), &a.rows[..]);
        assert_eq!(table.rows_of(1), &b.rows[..]);
        assert!(table.ids_of(11).is_none());
        assert_eq!(table.ids_of(10), Some(&[0u32, 1][..]));
    }
}
