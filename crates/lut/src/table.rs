//! The lookup table proper: storage layout, query path and statistics.

use std::collections::HashMap;

use patlabor_geom::{HananGrid, Net, Pattern, RankNode, Transform};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union, RoutingTree};

/// One stored topology: tree edges in the canonical pattern's rank grid,
/// packed as `col · n + row` byte pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoredTopology {
    /// Packed edges (endpoint node ids).
    pub edges: Vec<(u8, u8)>,
}

impl StoredTopology {
    /// Packs rank-node edges.
    pub fn from_rank_edges(edges: &[(RankNode, RankNode)], n: u8) -> Self {
        let pack = |nd: RankNode| nd.col * n + nd.row;
        let mut packed: Vec<(u8, u8)> = edges
            .iter()
            .map(|&(a, b)| {
                let (pa, pb) = (pack(a), pack(b));
                (pa.min(pb), pa.max(pb))
            })
            .collect();
        packed.sort_unstable();
        packed.dedup();
        StoredTopology { edges: packed }
    }

    /// Unpacks into rank-node edges.
    pub fn rank_edges(&self, n: u8) -> Vec<(RankNode, RankNode)> {
        self.edges
            .iter()
            .map(|&(a, b)| {
                (
                    RankNode::new(a / n, a % n),
                    RankNode::new(b / n, b % n),
                )
            })
            .collect()
    }
}

/// Per-degree statistics — the rows of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutStats {
    /// Net degree.
    pub degree: u8,
    /// Number of stored canonical patterns (`#Index`).
    pub num_patterns: usize,
    /// Average number of potentially optimal tree topologies per pattern
    /// (`#Topo`).
    pub avg_topologies: f64,
    /// Total topology references across all patterns.
    pub total_topologies: usize,
    /// Unique topologies after cross-pattern clustering (the paper's
    /// "store only one topology for each cluster").
    pub unique_topologies: usize,
    /// Approximate in-memory size in bytes of this degree's table.
    pub bytes: usize,
}

/// One degree's table: a cross-pattern topology pool plus per-pattern
/// index lists (the paper's clustering: identical topologies arising
/// under different patterns/sources are stored once).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct DegreeTable {
    /// Deduplicated topology storage.
    pub(crate) pool: Vec<StoredTopology>,
    /// Canonical pattern key → indices into `pool`.
    pub(crate) patterns: HashMap<u64, Vec<u32>>,
}

impl DegreeTable {
    /// Builds a degree table from per-pattern topology lists, pooling
    /// duplicates.
    pub(crate) fn from_lists(lists: HashMap<u64, Vec<StoredTopology>>) -> DegreeTable {
        let mut pool: Vec<StoredTopology> = Vec::new();
        let mut index: HashMap<StoredTopology, u32> = HashMap::new();
        let mut patterns = HashMap::with_capacity(lists.len());
        // Deterministic pool order: process patterns by key.
        let mut keys: Vec<u64> = lists.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let ids: Vec<u32> = lists[&key]
                .iter()
                .map(|t| {
                    *index.entry(t.clone()).or_insert_with(|| {
                        pool.push(t.clone());
                        (pool.len() - 1) as u32
                    })
                })
                .collect();
            patterns.insert(key, ids);
        }
        DegreeTable { pool, patterns }
    }
}

/// Lookup tables for every degree `2 ..= λ`.
///
/// Construct with [`crate::LutBuilder`] or load a serialized table with
/// [`LookupTable::read_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTable {
    pub(crate) lambda: u8,
    /// `tables[d]` for degree `d`; indices `0..3` stay empty.
    pub(crate) tables: Vec<DegreeTable>,
}

/// The canonicalization of one net, precomputed once per query.
///
/// Splitting this out of [`LookupTable::query`] lets callers key a cache
/// on the canonical pattern and gap vector ([`QueryContext::canonical_key`]
/// / [`QueryContext::canonical_gaps`]) and, on a hit, replay only the
/// winning topology ids with [`LookupTable::query_ids`].
///
/// Both objectives are invariant under the dihedral symmetries (the L1
/// metric commutes with axis swaps and flips, and gap vectors carry the
/// full geometry), so the set of winning topology ids — and the order the
/// query evaluates them in — is a pure function of the canonical key and
/// canonical gap vector. That is what makes replaying cached ids
/// bit-identical to a full evaluation.
#[derive(Debug, Clone)]
pub struct QueryContext {
    grid: HananGrid,
    degree: u8,
    canonical_key: u64,
    /// Maps canonical rank nodes back to this net's rank space.
    inverse: Transform,
    canonical_gaps: Vec<i64>,
}

impl QueryContext {
    /// The canonical pattern key (encodes degree, source position and the
    /// canonical y-permutation).
    pub fn canonical_key(&self) -> u64 {
        self.canonical_key
    }

    /// The net's Hanan-grid gap vector mapped into canonical rank space
    /// (horizontal gaps first, then vertical; `2n − 2` entries).
    ///
    /// Two nets related by a grid symmetry produce the same canonical key
    /// *and* the same canonical gap vector, so `(key, gaps)` identifies a
    /// net up to congruence — exactly the granularity at which query
    /// results (winning topology ids) coincide.
    pub fn canonical_gaps(&self) -> &[i64] {
        &self.canonical_gaps
    }
}

impl LookupTable {
    /// The largest tabulated degree λ.
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// The exact Pareto frontier of `net` with one witness tree per point,
    /// or `None` when the net's degree exceeds λ.
    ///
    /// The query canonicalizes the net's pattern, maps the stored
    /// topologies back through the inverse symmetry transform, evaluates
    /// them against the net's actual coordinates and prunes numerically.
    pub fn query(&self, net: &Net) -> Option<ParetoSet<RoutingTree>> {
        let n = net.degree();
        if n < 2 || n > self.lambda as usize {
            return None;
        }
        if n == 2 {
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut set = ParetoSet::new();
            set.insert(Cost::new(w, d), tree);
            return Some(set);
        }
        let ctx = self
            .query_context(net)
            .expect("degree checked to be in 3..=lambda");
        Some(self.query_witnesses(net, &ctx)?.0)
    }

    /// Canonicalizes `net` for [`LookupTable::query_witnesses`] /
    /// [`LookupTable::query_ids`], or `None` when its degree is outside
    /// `3..=λ` (degree 2 has a closed-form answer and nothing to cache).
    pub fn query_context(&self, net: &Net) -> Option<QueryContext> {
        let n = net.degree();
        if n < 3 || n > self.lambda as usize {
            return None;
        }
        let grid = HananGrid::new(net);
        let (pattern, _) = Pattern::from_grid(&grid);
        let (canonical, transform) = pattern.canonical();
        // Map the instance gap vector into canonical rank space: the
        // canonicalizing transform applies the swap first, then the flips
        // (T = flips ∘ swap), mirroring `Transform::apply` on rank nodes.
        let mut h = grid.h_gaps();
        let mut v = grid.v_gaps();
        if transform.swap {
            std::mem::swap(&mut h, &mut v);
        }
        if transform.flip_x {
            h.reverse();
        }
        if transform.flip_y {
            v.reverse();
        }
        let mut canonical_gaps = h;
        canonical_gaps.append(&mut v);
        Some(QueryContext {
            grid,
            degree: n as u8,
            canonical_key: canonical.key().as_u64(),
            inverse: transform.inverse(),
            canonical_gaps,
        })
    }

    /// Instantiates one stored topology against `net`'s coordinates.
    fn instantiate(&self, net: &Net, ctx: &QueryContext, id: u32) -> RoutingTree {
        let nb = ctx.degree;
        let topo = &self.tables[nb as usize].pool[id as usize];
        let pts: Vec<_> = topo
            .rank_edges(nb)
            .into_iter()
            .map(|(a, b)| {
                let map = |nd: RankNode| {
                    let instance_node = ctx.inverse.apply(nd, nb);
                    patlabor_geom::Point::new(
                        ctx.grid.xs()[instance_node.col as usize],
                        ctx.grid.ys()[instance_node.row as usize],
                    )
                };
                (map(a), map(b))
            })
            .collect();
        extract_from_union(net, &pts).expect("stored topologies span every pattern pin")
    }

    /// The Pareto frontier of `net` together with the pool ids of the
    /// winning topologies (in frontier order), or `None` when the
    /// canonical pattern is not tabulated.
    ///
    /// The id list is exactly what a frontier cache needs to store:
    /// replaying it through [`LookupTable::query_ids`] on any net with the
    /// same canonical key and gap vector reproduces this frontier
    /// bit-for-bit, including tie-break order.
    pub fn query_witnesses(
        &self,
        net: &Net,
        ctx: &QueryContext,
    ) -> Option<(ParetoSet<RoutingTree>, Vec<u32>)> {
        let ids = self.tables[ctx.degree as usize]
            .patterns
            .get(&ctx.canonical_key)?;
        let witnesses: Vec<(Cost, (RoutingTree, u32))> = ids
            .iter()
            .map(|&id| {
                let tree = self.instantiate(net, ctx, id);
                let (w, d) = tree.objectives();
                (Cost::new(w, d), (tree, id))
            })
            .collect();
        // `from_unpruned` is a stable sort + sweep keyed on cost alone, so
        // tagging each witness with its id changes nothing about which
        // entries survive or their order.
        let mut winners = Vec::new();
        let frontier = ParetoSet::from_unpruned(witnesses)
            .into_entries()
            .into_iter()
            .map(|(cost, (tree, id))| {
                winners.push(id);
                (cost, tree)
            })
            .collect::<Vec<_>>();
        Some((ParetoSet::from_unpruned(frontier), winners))
    }

    /// Re-evaluates a cached winning-id list against `net`.
    ///
    /// `ids` must come from a [`LookupTable::query_witnesses`] call whose
    /// context had the same canonical key and gap vector (the frontier
    /// cache's lookup key); the result then equals that call's frontier.
    pub fn query_ids(&self, net: &Net, ctx: &QueryContext, ids: &[u32]) -> ParetoSet<RoutingTree> {
        let witnesses: Vec<(Cost, RoutingTree)> = ids
            .iter()
            .map(|&id| {
                let tree = self.instantiate(net, ctx, id);
                let (w, d) = tree.objectives();
                (Cost::new(w, d), tree)
            })
            .collect();
        // Winners are mutually non-dominating and already in frontier
        // order, so this sort-and-sweep keeps every entry as-is.
        ParetoSet::from_unpruned(witnesses)
    }

    /// Number of stored patterns for `degree`.
    pub fn pattern_count(&self, degree: u8) -> usize {
        self.tables
            .get(degree as usize)
            .map_or(0, |t| t.patterns.len())
    }

    /// Statistics per degree (Table II).
    pub fn stats(&self) -> Vec<LutStats> {
        (3..=self.lambda)
            .map(|d| {
                let table = &self.tables[d as usize];
                let total: usize = table.patterns.values().map(Vec::len).sum();
                let bytes: usize = table
                    .pool
                    .iter()
                    .map(|t| 2 * t.edges.len() + 1)
                    .sum::<usize>()
                    + total * 4
                    + table.patterns.len() * 10;
                LutStats {
                    degree: d,
                    num_patterns: table.patterns.len(),
                    avg_topologies: if table.patterns.is_empty() {
                        0.0
                    } else {
                        total as f64 / table.patterns.len() as f64
                    },
                    total_topologies: total,
                    unique_topologies: table.pool.len(),
                    bytes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_topology_pack_roundtrip() {
        let n = 5u8;
        let edges = vec![
            (RankNode::new(0, 0), RankNode::new(3, 2)),
            (RankNode::new(4, 4), RankNode::new(1, 1)),
        ];
        let t = StoredTopology::from_rank_edges(&edges, n);
        let back = t.rank_edges(n);
        // Roundtrip preserves the edge set (endpoint order normalized).
        assert_eq!(back.len(), 2);
        assert!(back.contains(&(RankNode::new(0, 0), RankNode::new(3, 2))));
        assert!(back.contains(&(RankNode::new(1, 1), RankNode::new(4, 4))));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let n = 3u8;
        let e = (RankNode::new(0, 0), RankNode::new(2, 2));
        let t = StoredTopology::from_rank_edges(&[e, e, (e.1, e.0)], n);
        assert_eq!(t.edges.len(), 1);
    }

    #[test]
    fn pooling_dedupes_across_patterns() {
        let topo = StoredTopology {
            edges: vec![(0, 1), (1, 2)],
        };
        let other = StoredTopology {
            edges: vec![(0, 2)],
        };
        let mut lists = HashMap::new();
        lists.insert(1u64, vec![topo.clone(), other.clone()]);
        lists.insert(2u64, vec![topo.clone()]);
        lists.insert(3u64, vec![other.clone(), topo.clone()]);
        let table = DegreeTable::from_lists(lists);
        assert_eq!(table.pool.len(), 2, "two unique topologies");
        // Pattern 3 references both, in its own order.
        let ids3 = &table.patterns[&3];
        assert_eq!(table.pool[ids3[0] as usize], other);
        assert_eq!(table.pool[ids3[1] as usize], topo);
    }

    #[test]
    fn pooling_is_deterministic() {
        let mk = || {
            let mut lists = HashMap::new();
            for k in 0..20u64 {
                lists.insert(
                    k,
                    vec![StoredTopology {
                        edges: vec![(0, (k % 5) as u8)],
                    }],
                );
            }
            DegreeTable::from_lists(lists)
        };
        assert_eq!(mk(), mk());
    }
}
