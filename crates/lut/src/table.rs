//! The lookup table proper: CSR storage layout, the dot-product query
//! kernel and statistics.
//!
//! # v4 storage layout
//!
//! Each degree's table is a set of flat arenas (one allocation — or one
//! borrowed mapping range — each, no per-topology boxing):
//!
//! ```text
//! pool entry t (a pooled topology)
//!   edges  edge arena  [2·edge_off[t] .. 2·edge_off[t+1])  packed u8 pairs
//!   rows   cost arena  [t·stride .. (t+1)·stride)          u16, stride = n·(2n−2)
//!          ── W row (2n−2), then n−1 per-sink delay rows (2n−2 each)
//!
//! pattern p (canonical key, sorted ascending)
//!   ids    id arena    [pattern_off[p] .. pattern_off[p+1])  u32 pool ids
//! ```
//!
//! Arenas are [`Arena`]s: either owned `Vec`s (built or stream-loaded
//! tables) or borrowed slices of a shared read-only file mapping
//! (zero-copy opens, see [`LookupTable::open_mmap`]). The query kernels
//! are backing-agnostic.
//!
//! Pattern keys are additionally indexed in an Eytzinger (BFS) layout
//! built at construction: the branchless descent touches one cache line
//! per level near the root and prefetches grandchildren, replacing the
//! cache-hostile middle-of-the-array probes of a plain binary search.
//!
//! A query computes the net's canonical gap vector once, scores every
//! candidate topology with integer dot products against its stored rows
//! (`w = W·l`, `d = maxⱼ Dⱼ·l`), prunes the `(w, d)` pairs numerically,
//! and materializes [`RoutingTree`]s **only for the frontier survivors**.
//! Dominated candidates never touch the tree extractor. The dot products
//! run through a chunked kernel with independent accumulators (wrapping
//! integer arithmetic is order-independent, so every code path —
//! autovectorized scalar or the `simd`-feature AVX2 path — is
//! bit-identical).

use std::collections::HashMap;

use patlabor_dw::symbolic::SymbolicSolution;
use patlabor_geom::{Net, NetClass, Point, RankNode};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union_with, ExtractScratch, RoutingTree};

use crate::arena::Arena;

/// One pooled topology: tree edges in the canonical pattern's rank grid
/// (packed as `col · n + row` byte pairs) plus its symbolic cost rows.
///
/// `rows` is the flattened block [`SymbolicSolution::flat_rows`] produces:
/// the wirelength multiplicities `W` (length `2n − 2`) followed by one
/// delay row per sink in ascending sink-column order. Two topologies from
/// different patterns pool into one entry only when **both** the edge set
/// and the rows agree — the rows are what the query kernel evaluates, so
/// pooling must never conflate topologies whose costs differ on some net.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoredTopology {
    /// Packed edges (endpoint node ids), sorted and deduplicated.
    pub edges: Vec<(u8, u8)>,
    /// Flattened cost rows: `n · (2n − 2)` multiplicities.
    pub rows: Vec<u16>,
}

impl StoredTopology {
    /// Packs a symbolic DP solution of a degree-`n` pattern.
    ///
    /// # Panics
    ///
    /// Panics if the solution's row shape does not match degree `n`
    /// (`2n − 2` gap dimensions, `n − 1` delay rows).
    pub fn from_solution(sol: &SymbolicSolution, n: u8) -> Self {
        let dims = 2 * n as usize - 2;
        assert_eq!(sol.w.len(), dims, "W row has wrong gap dimension");
        assert_eq!(
            sol.delays.len(),
            n as usize - 1,
            "final DP solutions carry one delay row per sink"
        );
        let pack = |nd: RankNode| nd.col * n + nd.row;
        let mut packed: Vec<(u8, u8)> = sol
            .edges
            .iter()
            .map(|&(a, b)| {
                let (pa, pb) = (pack(a), pack(b));
                (pa.min(pb), pa.max(pb))
            })
            .collect();
        packed.sort_unstable();
        packed.dedup();
        StoredTopology {
            edges: packed,
            rows: sol.flat_rows(),
        }
    }

    /// Unpacks into rank-node edges.
    pub fn rank_edges(&self, n: u8) -> Vec<(RankNode, RankNode)> {
        self.edges
            .iter()
            .map(|&(a, b)| {
                (
                    RankNode::new(a / n, a % n),
                    RankNode::new(b / n, b % n),
                )
            })
            .collect()
    }
}

/// Per-degree statistics — the rows of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutStats {
    /// Net degree.
    pub degree: u8,
    /// Number of stored canonical patterns (`#Index`).
    pub num_patterns: usize,
    /// Average number of potentially optimal tree topologies per pattern
    /// (`#Topo`).
    pub avg_topologies: f64,
    /// Total topology references across all patterns.
    pub total_topologies: usize,
    /// Unique topologies after cross-pattern clustering (the paper's
    /// "store only one topology for each cluster"; v3+ clusters on
    /// `(edges, cost rows)` so pooled entries are query-equivalent).
    pub unique_topologies: usize,
    /// Approximate in-memory size in bytes of this degree's arenas.
    pub bytes: usize,
}

/// How a [`LookupTable`]'s arenas are backed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Arenas are owned `Vec`s (built in-process or stream-parsed).
    Owned,
    /// Arenas borrow a shared read-only file mapping (zero-copy open).
    Mapped,
}

impl std::fmt::Display for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Owned => write!(f, "owned"),
            Backing::Mapped => write!(f, "mapped"),
        }
    }
}

/// One degree's table as flat CSR arenas (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct DegreeTable {
    /// Degree `n` (0 for the empty placeholder tables below degree 3).
    pub(crate) n: u8,
    /// `edge_off[t] .. edge_off[t+1]` indexes the edge *pairs* of pool
    /// entry `t`; length `npool + 1`, starts at 0.
    pub(crate) edge_off: Arena<u32>,
    /// Packed edge arena: 2 bytes per edge, flattened `(a, b)` pairs.
    pub(crate) edges: Arena<u8>,
    /// Cost arena: `npool × n × (2n − 2)` multiplicities, fixed stride.
    pub(crate) costs: Arena<u16>,
    /// Canonical pattern keys, sorted ascending.
    pub(crate) pattern_keys: Arena<u64>,
    /// `pattern_off[p] .. pattern_off[p+1]` indexes `pattern_ids`;
    /// length `npat + 1`, starts at 0.
    pub(crate) pattern_off: Arena<u32>,
    /// Pool-id arena.
    pub(crate) pattern_ids: Arena<u32>,
    /// `pattern_keys` in Eytzinger (BFS) order — derived at construction,
    /// always owned (it is small: one u64 + one u32 per pattern).
    eyt_keys: Vec<u64>,
    /// Sorted position of each Eytzinger slot, to recover the CSR index.
    eyt_pos: Vec<u32>,
}

impl DegreeTable {
    /// Builds a table from its arenas, deriving the Eytzinger key index.
    /// All construction paths (builder, stream parse, mmap open) funnel
    /// through here so the index can never be stale.
    pub(crate) fn assemble(
        n: u8,
        edge_off: Arena<u32>,
        edges: Arena<u8>,
        costs: Arena<u16>,
        pattern_keys: Arena<u64>,
        pattern_off: Arena<u32>,
        pattern_ids: Arena<u32>,
    ) -> DegreeTable {
        let (eyt_keys, eyt_pos) = eytzinger(&pattern_keys);
        DegreeTable {
            n,
            edge_off,
            edges,
            costs,
            pattern_keys,
            pattern_off,
            pattern_ids,
            eyt_keys,
            eyt_pos,
        }
    }

    /// An empty placeholder table for `degree`.
    pub(crate) fn empty(degree: u8) -> DegreeTable {
        DegreeTable::assemble(
            degree,
            vec![0].into(),
            Arena::default(),
            Arena::default(),
            Arena::default(),
            vec![0].into(),
            Arena::default(),
        )
    }

    /// Cost-arena stride per pool entry: one `W` row plus `n − 1` delay
    /// rows, each `2n − 2` long.
    pub(crate) fn row_stride(&self) -> usize {
        self.n as usize * (2 * self.n as usize).saturating_sub(2)
    }

    /// Number of pooled topologies.
    pub(crate) fn npool(&self) -> usize {
        self.edge_off.len().saturating_sub(1)
    }

    /// Packed edges of pool entry `id`, flattened (2 bytes per edge).
    pub(crate) fn edges_of(&self, id: u32) -> &[u8] {
        let (lo, hi) = (
            self.edge_off[id as usize] as usize,
            self.edge_off[id as usize + 1] as usize,
        );
        &self.edges[2 * lo..2 * hi]
    }

    /// Flattened cost rows of pool entry `id` (`W` first, then delays).
    pub(crate) fn rows_of(&self, id: u32) -> &[u16] {
        let stride = self.row_stride();
        &self.costs[id as usize * stride..(id as usize + 1) * stride]
    }

    /// CSR position of a canonical pattern key, via branchless Eytzinger
    /// descent with grandchild prefetch.
    fn find_key(&self, key: u64) -> Option<usize> {
        let m = self.eyt_keys.len();
        if m == 0 {
            return None;
        }
        let mut k = 1usize;
        while k <= m {
            #[cfg(target_arch = "x86_64")]
            // Touch the grandchild pair two levels down so it is in L1 by
            // the time the descent arrives.
            if 4 * k <= m {
                unsafe {
                    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    _mm_prefetch(self.eyt_keys.as_ptr().add(4 * k - 1).cast(), _MM_HINT_T0);
                }
            }
            k = 2 * k + usize::from(self.eyt_keys[k - 1] < key);
        }
        // Undo the right-turns: the lower bound is the ancestor reached by
        // the last left turn.
        k >>= k.trailing_ones() + 1;
        if k == 0 || self.eyt_keys[k - 1] != key {
            return None;
        }
        Some(self.eyt_pos[k - 1] as usize)
    }

    /// Pool ids of a canonical pattern key.
    pub(crate) fn ids_of(&self, key: u64) -> Option<&[u32]> {
        let p = self.find_key(key)?;
        let (lo, hi) = (
            self.pattern_off[p] as usize,
            self.pattern_off[p + 1] as usize,
        );
        Some(&self.pattern_ids[lo..hi])
    }

    /// Number of stored patterns.
    pub(crate) fn pattern_count(&self) -> usize {
        self.pattern_keys.len()
    }

    /// True when any arena borrows a file mapping.
    pub(crate) fn is_mapped(&self) -> bool {
        self.edge_off.is_mapped()
            || self.edges.is_mapped()
            || self.costs.is_mapped()
            || self.pattern_keys.is_mapped()
            || self.pattern_off.is_mapped()
            || self.pattern_ids.is_mapped()
    }

    /// Reassembles pool entry `id` (test and tooling convenience; the
    /// query path reads the arenas directly).
    #[cfg(test)]
    pub(crate) fn topology(&self, id: u32) -> StoredTopology {
        StoredTopology {
            edges: self
                .edges_of(id)
                .chunks_exact(2)
                .map(|p| (p[0], p[1]))
                .collect(),
            rows: self.rows_of(id).to_vec(),
        }
    }

    /// Builds a degree table from per-pattern topology lists, pooling
    /// entries whose `(edges, rows)` agree.
    ///
    /// # Panics
    ///
    /// Panics if a topology's row block has the wrong stride for `degree`.
    pub(crate) fn from_lists(
        degree: u8,
        lists: HashMap<u64, Vec<StoredTopology>>,
    ) -> DegreeTable {
        let mut edge_off: Vec<u32> = vec![0];
        let mut edges: Vec<u8> = Vec::new();
        let mut costs: Vec<u16> = Vec::new();
        let mut pattern_keys: Vec<u64> = Vec::new();
        let mut pattern_off: Vec<u32> = vec![0];
        let mut pattern_ids: Vec<u32> = Vec::new();
        let stride = degree as usize * (2 * degree as usize).saturating_sub(2);
        let mut index: HashMap<StoredTopology, u32> = HashMap::new();
        // Deterministic arena order: process patterns by ascending key —
        // which is also the order `pattern_keys` needs for binary search.
        let mut keys: Vec<u64> = lists.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            for t in &lists[&key] {
                let id = *index.entry(t.clone()).or_insert_with(|| {
                    assert_eq!(t.rows.len(), stride, "row block has wrong stride");
                    for &(a, b) in &t.edges {
                        edges.push(a);
                        edges.push(b);
                    }
                    edge_off.push((edges.len() / 2) as u32);
                    costs.extend_from_slice(&t.rows);
                    (edge_off.len() - 2) as u32
                });
                pattern_ids.push(id);
            }
            pattern_keys.push(key);
            pattern_off.push(pattern_ids.len() as u32);
        }
        DegreeTable::assemble(
            degree,
            edge_off.into(),
            edges.into(),
            costs.into(),
            pattern_keys.into(),
            pattern_off.into(),
            pattern_ids.into(),
        )
    }
}

/// Lays `keys` (sorted ascending) out in Eytzinger (BFS) order, returning
/// the reordered keys and each slot's original sorted position.
fn eytzinger(keys: &[u64]) -> (Vec<u64>, Vec<u32>) {
    fn fill(k: usize, next: &mut usize, keys: &[u64], eyt: &mut [u64], pos: &mut [u32]) {
        if k <= keys.len() {
            fill(2 * k, next, keys, eyt, pos);
            eyt[k - 1] = keys[*next];
            pos[k - 1] = *next as u32;
            *next += 1;
            fill(2 * k + 1, next, keys, eyt, pos);
        }
    }
    let mut eyt = vec![0u64; keys.len()];
    let mut pos = vec![0u32; keys.len()];
    let mut next = 0usize;
    fill(1, &mut next, keys, &mut eyt, &mut pos);
    (eyt, pos)
}

/// Integer dot product of a stored multiplicity row against the canonical
/// gap vector, chunked into four independent accumulators so the scalar
/// build autovectorizes and pipelines. Wrapping integer arithmetic is
/// associative and commutative, so every accumulation order — including
/// the AVX2 path below — produces bit-identical results.
#[inline]
fn dot_scalar(row: &[u16], gaps: &[i64]) -> i64 {
    let mut acc = [0i64; 4];
    let mut r4 = row.chunks_exact(4);
    let mut g4 = gaps.chunks_exact(4);
    for (r, g) in (&mut r4).zip(&mut g4) {
        for i in 0..4 {
            acc[i] = acc[i].wrapping_add((r[i] as i64).wrapping_mul(g[i]));
        }
    }
    let mut s = acc[0]
        .wrapping_add(acc[1])
        .wrapping_add(acc[2])
        .wrapping_add(acc[3]);
    for (&r, &g) in r4.remainder().iter().zip(g4.remainder()) {
        s = s.wrapping_add((r as i64).wrapping_mul(g));
    }
    s
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    //! AVX2 dot-product kernel, runtime-detected with the scalar chunked
    //! kernel as the always-available fallback. Multiplicities are u16, so
    //! a 64-bit product decomposes into 32×32→64 partials:
    //! `m·l = m·lo(l) + (m·hi(l) << 64-bit-wrap 32)`, both exact in
    //! unsigned 64-bit lanes since `m < 2¹⁶`.
    use std::arch::x86_64::*;

    pub(super) fn available() -> bool {
        // std's detection macro caches the cpuid probe internally.
        std::is_x86_feature_detected!("avx2")
    }

    /// # Safety
    ///
    /// Caller must have checked [`available`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(row: &[u16], gaps: &[i64]) -> i64 {
        let n = row.len().min(gaps.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let g = _mm256_loadu_si256(gaps.as_ptr().add(i).cast());
            let m128 = _mm_loadl_epi64(row.as_ptr().add(i).cast());
            let m = _mm256_cvtepu16_epi64(m128);
            let lo = _mm256_mul_epu32(g, m);
            let hi = _mm256_mul_epu32(_mm256_srli_epi64::<32>(g), m);
            let prod = _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(hi));
            acc = _mm256_add_epi64(acc, prod);
            i += 4;
        }
        let mut s = _mm256_extract_epi64::<0>(acc)
            .wrapping_add(_mm256_extract_epi64::<1>(acc))
            .wrapping_add(_mm256_extract_epi64::<2>(acc))
            .wrapping_add(_mm256_extract_epi64::<3>(acc));
        while i < n {
            s = s.wrapping_add((row[i] as i64).wrapping_mul(gaps[i]));
            i += 1;
        }
        s
    }
}

/// The dot-product kernel the scoring stages run on: the AVX2 path when
/// the `simd` feature is enabled and the CPU supports it, the chunked
/// scalar kernel otherwise. Both are bit-identical (wrapping integer
/// arithmetic; see [`dot_scalar`]).
#[inline]
pub(crate) fn kernel_dot(row: &[u16], gaps: &[i64]) -> i64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::available() {
        return unsafe { simd::dot(row, gaps) };
    }
    dot_scalar(row, gaps)
}

/// Scores one candidate's full row block: `(W·l, maxⱼ Dⱼ·l)`.
#[inline]
fn score_block(rows: &[u16], gaps: &[i64]) -> (i64, i64) {
    let dims = gaps.len();
    let w = kernel_dot(&rows[..dims], gaps);
    let d = rows[dims..]
        .chunks_exact(dims)
        .map(|row| kernel_dot(row, gaps))
        .max()
        .unwrap_or(0);
    (w, d)
}

std::thread_local! {
    /// Per-thread count of `RoutingTree` materializations (see
    /// [`LookupTable::thread_materializations`]).
    static MATERIALIZATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };

    /// Reusable query scratch: `(cost, input position, pool id)` triples.
    /// Thread-local so concurrent batch workers never contend and the
    /// steady-state query allocates nothing for scoring.
    static SCORE_SCRATCH: std::cell::RefCell<Vec<(Cost, u32, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };

    /// Reusable materialization scratch: the instantiated edge list plus
    /// the tree extractor's graph buffers. Steady-state materialization
    /// allocates only the returned tree.
    static MAT_SCRATCH: std::cell::RefCell<(Vec<(Point, Point)>, ExtractScratch)> =
        std::cell::RefCell::new((Vec::new(), ExtractScratch::new()));
}

/// Lookup tables for every degree `2 ..= λ`.
///
/// Construct with [`crate::LutBuilder`], load a serialized table with
/// [`LookupTable::read_from`] / [`LookupTable::load`] (owned arenas), or
/// serve it zero-copy from disk with [`LookupTable::open_mmap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTable {
    pub(crate) lambda: u8,
    /// `tables[d]` for degree `d`; indices `0..3` stay empty.
    pub(crate) tables: Vec<DegreeTable>,
}

impl LookupTable {
    /// The largest tabulated degree λ.
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// Whether the arenas are owned or borrow a file mapping.
    pub fn backing(&self) -> Backing {
        if self.tables.iter().any(DegreeTable::is_mapped) {
            Backing::Mapped
        } else {
            Backing::Owned
        }
    }

    /// The exact Pareto frontier of `net` with one witness tree per point,
    /// or `None` when the net's degree exceeds λ.
    ///
    /// The query canonicalizes the net's pattern, scores every stored
    /// candidate with integer dot products against its symbolic cost rows,
    /// prunes numerically, and materializes witness trees only for the
    /// surviving frontier.
    pub fn query(&self, net: &Net) -> Option<ParetoSet<RoutingTree>> {
        let n = net.degree();
        if n < 2 || n > self.lambda as usize {
            return None;
        }
        if n == 2 {
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut set = ParetoSet::new();
            set.insert(Cost::new(w, d), tree);
            return Some(set);
        }
        let class = self
            .classify(net)
            .expect("degree checked to be in 3..=lambda");
        Some(self.query_witnesses(net, &class)?.0)
    }

    /// Canonicalizes `net` for [`LookupTable::query_witnesses`] /
    /// [`LookupTable::query_ids`], or `None` when its degree is outside
    /// `3..=λ` (degree 2 has a closed-form answer and nothing to cache).
    ///
    /// The canonicalization itself lives in [`patlabor_geom::NetClass`] —
    /// the same object the frontier cache keys on — so the table and the
    /// cache can never disagree about which nets are congruent.
    pub fn classify(&self, net: &Net) -> Option<NetClass> {
        let n = net.degree();
        if n < 3 || n > self.lambda as usize {
            return None;
        }
        NetClass::of(net)
    }

    /// The candidate pool ids stored for `class`'s canonical pattern, or
    /// `None` when the pattern is not tabulated. This is the pure *lookup*
    /// stage of a query: one Eytzinger descent over the key index.
    pub fn candidate_ids(&self, class: &NetClass) -> Option<&[u32]> {
        self.tables[class.degree() as usize].ids_of(class.canonical_key())
    }

    /// The *score* stage: evaluates every candidate id by dot products
    /// against its stored cost rows and prunes the `(w, d)` pairs
    /// numerically. Returns the frontier as `(cost, pool id)` pairs in
    /// frontier order (wirelength ascending) — exactly the entries
    /// [`LookupTable::materialize`] should be called for.
    ///
    /// Ties between equal-cost candidates break toward the earlier `ids`
    /// position, matching [`ParetoSet::from_unpruned`]'s first-in-input
    /// rule, so the surviving ids are a pure function of `(canonical key,
    /// canonical gaps)`.
    pub fn score_candidates(&self, class: &NetClass, ids: &[u32]) -> Vec<(Cost, u32)> {
        let table = &self.tables[class.degree() as usize];
        let gaps = class.canonical_gaps();
        SCORE_SCRATCH.with(|cell| {
            let mut scored = cell.borrow_mut();
            scored.clear();
            for (seq, &id) in ids.iter().enumerate() {
                let (w, d) = score_block(table.rows_of(id), gaps);
                scored.push((Cost::new(w, d), seq as u32, id));
            }
            // The seq tie-break makes the key total, so the unstable sort
            // reproduces `from_unpruned`'s stable (w ↑, d ↑) order.
            scored.sort_unstable_by_key(|&(c, seq, _)| (c.wirelength, c.delay, seq));
            let mut frontier: Vec<(Cost, u32)> = Vec::new();
            for &(c, _, id) in scored.iter() {
                match frontier.last() {
                    Some(&(last, _)) if last.delay <= c.delay => {} // dominated
                    _ => frontier.push((c, id)),
                }
            }
            frontier
        })
    }

    /// The *materialize* stage: instantiates one stored topology against
    /// `net`'s coordinates, producing a witness [`RoutingTree`]. Reuses
    /// per-thread graph scratch — the steady state allocates only the
    /// returned tree.
    pub fn materialize(&self, net: &Net, class: &NetClass, id: u32) -> RoutingTree {
        MATERIALIZATIONS.with(|c| c.set(c.get() + 1));
        let nb = class.degree();
        let table = &self.tables[nb as usize];
        MAT_SCRATCH.with(|cell| {
            let (pts, scratch) = &mut *cell.borrow_mut();
            pts.clear();
            for pair in table.edges_of(id).chunks_exact(2) {
                let map = |packed: u8| {
                    class.instance_point(RankNode::new(packed / nb, packed % nb))
                };
                pts.push((map(pair[0]), map(pair[1])));
            }
            extract_from_union_with(net, pts, scratch)
                .expect("stored topologies span every pattern pin")
        })
    }

    /// Number of [`RoutingTree`] materializations performed by queries on
    /// the calling thread since it started. Instrumentation for tests and
    /// benchmarks asserting that trees are built only for frontier
    /// survivors; per-thread so concurrent tests never interfere.
    pub fn thread_materializations() -> u64 {
        MATERIALIZATIONS.with(|c| c.get())
    }

    /// The Pareto frontier of `net` together with the pool ids of the
    /// winning topologies (in frontier order), or `None` when the
    /// canonical pattern is not tabulated.
    ///
    /// Composes the three query stages: [`LookupTable::candidate_ids`]
    /// (key-index lookup), [`LookupTable::score_candidates`] (dot products
    /// + numeric prune) and [`LookupTable::materialize`] (survivors only).
    ///
    /// The id list is exactly what a frontier cache needs to store:
    /// replaying it through [`LookupTable::query_ids`] on any net with the
    /// same canonical key and gap vector reproduces this frontier
    /// bit-for-bit, including tie-break order.
    pub fn query_witnesses(
        &self,
        net: &Net,
        class: &NetClass,
    ) -> Option<(ParetoSet<RoutingTree>, Vec<u32>)> {
        let ids = self.candidate_ids(class)?;
        let frontier = self.score_candidates(class, ids);
        let mut winners = Vec::with_capacity(frontier.len());
        let entries: Vec<(Cost, RoutingTree)> = frontier
            .into_iter()
            .map(|(cost, id)| {
                let tree = self.materialize(net, class, id);
                debug_assert_eq!(
                    (cost.wirelength, cost.delay),
                    tree.objectives(),
                    "dot-product score must equal the materialized tree's objectives"
                );
                winners.push(id);
                (cost, tree)
            })
            .collect();
        // Entries are already sorted ascending-w / strictly-descending-d,
        // so this sweep keeps every entry as-is.
        Some((ParetoSet::from_unpruned(entries), winners))
    }

    /// Re-evaluates a cached winning-id list against `net`.
    ///
    /// `ids` must come from a [`LookupTable::query_witnesses`] call whose
    /// class had the same canonical key and gap vector (the frontier
    /// cache's lookup key); the result then equals that call's frontier.
    pub fn query_ids(&self, net: &Net, class: &NetClass, ids: &[u32]) -> ParetoSet<RoutingTree> {
        let table = &self.tables[class.degree() as usize];
        let gaps = class.canonical_gaps();
        let witnesses: Vec<(Cost, RoutingTree)> = ids
            .iter()
            .map(|&id| {
                let (w, d) = score_block(table.rows_of(id), gaps);
                (Cost::new(w, d), self.materialize(net, class, id))
            })
            .collect();
        // Winners are mutually non-dominating and already in frontier
        // order, so this sort-and-sweep keeps every entry as-is.
        ParetoSet::from_unpruned(witnesses)
    }

    /// Reference query path: materializes **every** candidate topology and
    /// prunes by the trees' measured objectives — the pre-v3 behaviour.
    ///
    /// Kept for the equivalence tests (dot-product scores must reproduce
    /// this frontier exactly) and as the baseline the `BENCH_PR2` harness
    /// measures the dot-product kernel against.
    pub fn query_materialize_all(
        &self,
        net: &Net,
        class: &NetClass,
    ) -> Option<ParetoSet<RoutingTree>> {
        let ids = self.candidate_ids(class)?;
        let witnesses: Vec<(Cost, RoutingTree)> = ids
            .iter()
            .map(|&id| {
                let tree = self.materialize(net, class, id);
                let (w, d) = tree.objectives();
                (Cost::new(w, d), tree)
            })
            .collect();
        Some(ParetoSet::from_unpruned(witnesses))
    }

    /// Number of stored patterns for `degree`.
    pub fn pattern_count(&self, degree: u8) -> usize {
        self.tables
            .get(degree as usize)
            .map_or(0, DegreeTable::pattern_count)
    }

    /// Drops every stored pattern for `degree`, leaving an empty table in
    /// its place.
    ///
    /// This simulates a truncated or corrupt table file — the situation
    /// the router's `MissingDegree` error reports — without hand-crafting
    /// broken bytes. Fault-injection helper for tests and tooling; a table
    /// built by [`crate::LutBuilder`] never has gaps.
    ///
    /// This hook mutates one concrete table. For orchestrated drills —
    /// injecting the same failure mode across a corpus without doctoring
    /// the shared table — use the router's fault plane
    /// (`patlabor::FaultPlane`, kind `missing-degree`), which simulates
    /// this condition per net, deterministically by seed.
    pub fn remove_degree(&mut self, degree: u8) {
        if let Some(table) = self.tables.get_mut(degree as usize) {
            *table = DegreeTable::empty(degree);
        }
    }

    /// Adds `delta` to every multiplicity in pool entry `id`'s cost-row
    /// block for `degree`, de-synchronizing the stored symbolic rows from
    /// the topology's true objectives. Returns `false` (and changes
    /// nothing) when the degree or id is out of range.
    ///
    /// Fault-injection helper (sibling of [`LookupTable::remove_degree`])
    /// for the differential harness's mutation-smoke mode: the harness
    /// corrupts one row and asserts its LUT-vs-numeric-DW oracle *catches*
    /// the planted divergence, proving the oracle itself works. Any net
    /// whose query scores the corrupted row with a nonzero gap vector sees
    /// a shifted dot-product cost. Tables built by [`crate::LutBuilder`]
    /// are never corrupt.
    ///
    /// On a mapped table this copies the cost arena out of the mapping
    /// first (copy-on-write) — the file and other tables sharing the
    /// mapping are never written through.
    ///
    /// Like [`LookupTable::remove_degree`], this is the table-local hook;
    /// the router's fault plane (`patlabor::FaultPlane`, kind
    /// `corrupted-row`) injects the equivalent frontier perturbation per
    /// net without touching the table, and the router's frontier
    /// validation then demotes the net down the degradation ladder.
    pub fn corrupt_cost_row(&mut self, degree: u8, id: u32, delta: u16) -> bool {
        let Some(table) = self.tables.get_mut(degree as usize) else {
            return false;
        };
        if id as usize >= table.npool() {
            return false;
        }
        let stride = table.row_stride();
        let costs = table.costs.to_mut();
        for v in &mut costs[id as usize * stride..(id as usize + 1) * stride] {
            *v = v.wrapping_add(delta);
        }
        true
    }

    /// Statistics per degree (Table II).
    pub fn stats(&self) -> Vec<LutStats> {
        (3..=self.lambda)
            .map(|d| {
                let table = &self.tables[d as usize];
                let total = table.pattern_ids.len();
                let bytes = table.edges.len()
                    + table.edge_off.len() * 4
                    + table.costs.len() * 2
                    + table.pattern_keys.len() * 8
                    + table.pattern_off.len() * 4
                    + table.pattern_ids.len() * 4;
                LutStats {
                    degree: d,
                    num_patterns: table.pattern_count(),
                    avg_topologies: if table.pattern_count() == 0 {
                        0.0
                    } else {
                        total as f64 / table.pattern_count() as f64
                    },
                    total_topologies: total,
                    unique_topologies: table.npool(),
                    bytes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(n: u8, edges: &[(RankNode, RankNode)]) -> SymbolicSolution {
        let dims = 2 * n as usize - 2;
        SymbolicSolution {
            w: vec![1; dims],
            delays: vec![vec![2; dims]; n as usize - 1],
            edges: edges.to_vec(),
        }
    }

    #[test]
    fn stored_topology_pack_roundtrip() {
        let n = 5u8;
        let edges = vec![
            (RankNode::new(0, 0), RankNode::new(3, 2)),
            (RankNode::new(4, 4), RankNode::new(1, 1)),
        ];
        let t = StoredTopology::from_solution(&sol(n, &edges), n);
        let back = t.rank_edges(n);
        // Roundtrip preserves the edge set (endpoint order normalized).
        assert_eq!(back.len(), 2);
        assert!(back.contains(&(RankNode::new(0, 0), RankNode::new(3, 2))));
        assert!(back.contains(&(RankNode::new(1, 1), RankNode::new(4, 4))));
        // Rows: W first, then the four delay rows.
        assert_eq!(t.rows.len(), 5 * 8);
        assert_eq!(&t.rows[..8], &[1; 8]);
        assert_eq!(&t.rows[8..16], &[2; 8]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let n = 3u8;
        let e = (RankNode::new(0, 0), RankNode::new(2, 2));
        let t = StoredTopology::from_solution(&sol(n, &[e, e, (e.1, e.0)]), n);
        assert_eq!(t.edges.len(), 1);
    }

    fn topo(edges: Vec<(u8, u8)>, rows: Vec<u16>) -> StoredTopology {
        StoredTopology { edges, rows }
    }

    #[test]
    fn pooling_dedupes_across_patterns() {
        // Degree 3: stride = 3 · 4 = 12.
        let a = topo(vec![(0, 1), (1, 2)], vec![7; 12]);
        let b = topo(vec![(0, 2)], vec![9; 12]);
        let mut lists = HashMap::new();
        lists.insert(1u64, vec![a.clone(), b.clone()]);
        lists.insert(2u64, vec![a.clone()]);
        lists.insert(3u64, vec![b.clone(), a.clone()]);
        let table = DegreeTable::from_lists(3, lists);
        assert_eq!(table.npool(), 2, "two unique topologies");
        // Pattern 3 references both, in its own order.
        let ids3 = table.ids_of(3).unwrap();
        assert_eq!(table.topology(ids3[0]), b);
        assert_eq!(table.topology(ids3[1]), a);
    }

    #[test]
    fn pooling_keeps_same_edges_with_different_rows_apart() {
        // Same tree shape but different cost rows (e.g. two patterns with
        // different source columns): the query evaluates the rows, so the
        // entries must not merge.
        let a = topo(vec![(0, 1)], vec![1; 12]);
        let b = topo(vec![(0, 1)], vec![2; 12]);
        let mut lists = HashMap::new();
        lists.insert(1u64, vec![a.clone()]);
        lists.insert(2u64, vec![b.clone()]);
        let table = DegreeTable::from_lists(3, lists);
        assert_eq!(table.npool(), 2);
        assert_ne!(
            table.topology(table.ids_of(1).unwrap()[0]),
            table.topology(table.ids_of(2).unwrap()[0])
        );
    }

    #[test]
    fn pooling_is_deterministic() {
        let mk = || {
            let mut lists = HashMap::new();
            for k in 0..20u64 {
                lists.insert(k, vec![topo(vec![(0, (k % 5) as u8)], vec![k as u16; 12])]);
            }
            DegreeTable::from_lists(3, lists)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn csr_accessors_are_consistent() {
        let a = topo(vec![(0, 1), (1, 2), (2, 5)], vec![3; 12]);
        let b = topo(vec![(0, 2)], vec![4; 12]);
        let mut lists = HashMap::new();
        lists.insert(10u64, vec![a.clone(), b.clone()]);
        let table = DegreeTable::from_lists(3, lists);
        assert_eq!(table.edges_of(0), &[0, 1, 1, 2, 2, 5]);
        assert_eq!(table.edges_of(1), &[0, 2]);
        assert_eq!(table.rows_of(0), &a.rows[..]);
        assert_eq!(table.rows_of(1), &b.rows[..]);
        assert!(table.ids_of(11).is_none());
        assert_eq!(table.ids_of(10), Some(&[0u32, 1][..]));
    }

    #[test]
    fn eytzinger_search_agrees_with_binary_search() {
        // Exhaustive over sizes 0..=70 with stride-3 keys: every present
        // key is found at its sorted position, every absent probe misses.
        for m in 0..=70u64 {
            let keys: Vec<u64> = (0..m).map(|i| 3 * i + 1).collect();
            let (eyt, pos) = eytzinger(&keys);
            let table = DegreeTable {
                pattern_keys: keys.clone().into(),
                eyt_keys: eyt,
                eyt_pos: pos,
                ..DegreeTable::default()
            };
            for probe in 0..=(3 * m + 3) {
                assert_eq!(
                    table.find_key(probe),
                    keys.binary_search(&probe).ok(),
                    "m={m} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn kernel_dot_matches_reference() {
        // The kernel (any path) must equal the naive dot on mixed-sign
        // gaps and all alignments/lengths 0..=17.
        let rows: Vec<u16> = (0..17).map(|i| (i * 37 + 5) as u16).collect();
        let gaps: Vec<i64> = (0..17)
            .map(|i| (i as i64 - 8) * 1_000_000_007)
            .collect();
        for len in 0..=17usize {
            let expect: i64 = rows[..len]
                .iter()
                .zip(&gaps[..len])
                .map(|(&m, &l)| (m as i64).wrapping_mul(l))
                .fold(0i64, |a, x| a.wrapping_add(x));
            assert_eq!(kernel_dot(&rows[..len], &gaps[..len]), expect, "len={len}");
            assert_eq!(dot_scalar(&rows[..len], &gaps[..len]), expect, "len={len}");
        }
    }

    #[test]
    fn lookup_table_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LookupTable>();
    }
}
