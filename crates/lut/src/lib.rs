//! Pareto lookup tables for small-degree nets (paper §V-A).
//!
//! The paper's key practical idea, borrowed from FLUTE: routing millions of
//! nets cannot afford an exponential DP per net, but the *set of
//! potentially Pareto-optimal topologies* of a net depends only on its
//! [`Pattern`](patlabor_geom::Pattern) — the rank order of its pin
//! coordinates plus the source position — and there are finitely many
//! patterns per degree. So for every canonical pattern of degree
//! `n ≤ λ` we precompute that topology set once with the symbolic
//! Pareto-DW ([`patlabor_dw::symbolic`]), and a query reduces to: pattern
//! lookup → evaluate the stored topologies against the net's actual gap
//! lengths → numeric Pareto prune. The result is the exact frontier, in
//! microseconds per net.
//!
//! * [`LutBuilder`] — parallel table generation (one symbolic DP per
//!   canonical pattern, Lemma 1 pruning via exact LP);
//! * [`LookupTable`] — the query path and [`LutStats`] (Table II);
//! * [`LookupTable::write_to`] / [`LookupTable::read_from`] — a compact
//!   binary format so generated tables can be shipped and reloaded.
//!
//! # Example
//!
//! ```
//! use patlabor_geom::{Net, Point};
//! use patlabor_lut::LutBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let table = LutBuilder::new(4).build(); // tables for degrees 2..=4
//! let net = Net::new(vec![Point::new(0, 0), Point::new(4, 2), Point::new(2, 4)])?;
//! let frontier = table.query(&net).expect("degree 3 ≤ λ");
//! assert_eq!(frontier.len(), 1); // degree-3 nets have one-point frontiers
//! # Ok(())
//! # }
//! ```

mod arena;
mod builder;
mod format;
mod mmap;
mod table;

pub use builder::LutBuilder;
pub use format::{fnv1a64_striped, ReadTableError, SectionInfo, TableInfo};
pub use table::{Backing, LookupTable, LutStats, StoredTopology};

// The canonicalization the query path is keyed on; re-exported so callers
// holding only a table handle can name the classify result.
pub use patlabor_geom::NetClass;
