//! Owned-or-mapped element storage for the CSR arenas.
//!
//! Every arena of a [`crate::LookupTable`] is either an owned `Vec<T>`
//! (built tables, streaming loads) or a borrowed slice of a shared
//! read-only file [`Mapping`] (zero-copy opens). Consumers only ever see
//! `&[T]` — the query kernels are agnostic to the backing — and the
//! mapped variant keeps its mapping alive through an `Arc`, so cloning a
//! table clones pointers, not megabytes.
//!
//! Mapped arenas are constructed exclusively by the v4 open path after it
//! has validated bounds, alignment and the checksum, which is what makes
//! the raw-pointer reinterpretation here sound.

use std::ops::Deref;
use std::sync::Arc;

use crate::mmap::Mapping;

/// Marker for element types whose every bit pattern is a valid value, so a
/// validated, aligned byte range of a mapping can be reinterpreted as a
/// slice of them. Sealed to the integer types the format stores.
pub(crate) trait Pod: Copy + 'static {}
impl Pod for u8 {}
impl Pod for u16 {}
impl Pod for u32 {}
impl Pod for u64 {}

pub(crate) enum Arena<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        ptr: *const T,
        len: usize,
        /// Keeps the mapped file alive for as long as any arena borrows it.
        map: Arc<Mapping>,
    },
}

// A mapped arena is an immutable view of an immutable mapping; an owned
// arena is a Vec. Both are freely shareable across threads.
unsafe impl<T: Pod + Send + Sync> Send for Arena<T> {}
unsafe impl<T: Pod + Send + Sync> Sync for Arena<T> {}

impl<T: Pod> Arena<T> {
    /// Borrows `count` elements of the mapping starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or misaligned — the format
    /// validator must have established both before building arenas.
    pub(crate) fn mapped(map: &Arc<Mapping>, offset: usize, count: usize) -> Arena<T> {
        let size = std::mem::size_of::<T>();
        let bytes = count.checked_mul(size).expect("arena byte size overflow");
        let end = offset.checked_add(bytes).expect("arena end overflow");
        assert!(end <= map.len(), "arena range escapes the mapping");
        let ptr = unsafe { map.bytes().as_ptr().add(offset) };
        assert_eq!(
            ptr as usize % std::mem::align_of::<T>(),
            0,
            "arena offset misaligned for element type"
        );
        Arena::Mapped {
            ptr: ptr.cast(),
            len: count,
            map: Arc::clone(map),
        }
    }

    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Arena::Owned(v) => v,
            Arena::Mapped { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
        }
    }

    /// True when this arena borrows a file mapping.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, Arena::Mapped { .. })
    }

    /// Mutable access, converting a mapped arena to owned first
    /// (copy-on-write; used by the fault-injection hooks, never by the
    /// serving path).
    pub(crate) fn to_mut(&mut self) -> &mut Vec<T> {
        if let Arena::Mapped { .. } = self {
            *self = Arena::Owned(self.as_slice().to_vec());
        }
        match self {
            Arena::Owned(v) => v,
            Arena::Mapped { .. } => unreachable!("just converted to owned"),
        }
    }
}

impl<T: Pod> Deref for Arena<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Arena<T> {
    fn from(v: Vec<T>) -> Self {
        Arena::Owned(v)
    }
}

impl<T: Pod> Default for Arena<T> {
    fn default() -> Self {
        Arena::Owned(Vec::new())
    }
}

impl<T: Pod> Clone for Arena<T> {
    fn clone(&self) -> Self {
        match self {
            Arena::Owned(v) => Arena::Owned(v.clone()),
            Arena::Mapped { ptr, len, map } => Arena::Mapped {
                ptr: *ptr,
                len: *len,
                map: Arc::clone(map),
            },
        }
    }
}

// Backing-agnostic equality: an owned table and its mapped image compare
// equal, which is exactly what the round-trip and parity tests assert.
impl<T: Pod + PartialEq> PartialEq for Arena<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Pod + Eq> Eq for Arena<T> {}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_mapped() {
            write!(f, "Mapped")?;
        }
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_arena_derefs_and_compares() {
        let a: Arena<u32> = vec![1, 2, 3].into();
        let b: Arena<u32> = vec![1, 2, 3].into();
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn mapped_arena_reads_the_mapping() {
        let dir = std::env::temp_dir().join("patlabor_arena_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.bin");
        let mut bytes = vec![0u8; 64];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&9u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let map = Arc::new(Mapping::open(&path).unwrap());
        let arena: Arena<u64> = Arena::mapped(&map, 64, 2);
        assert_eq!(&arena[..], &[7, 9]);
        assert!(arena.is_mapped());
        let owned: Arena<u64> = vec![7, 9].into();
        assert_eq!(arena, owned, "backing must not affect equality");
        let cloned = arena.clone();
        drop(arena);
        assert_eq!(&cloned[..], &[7, 9], "clone keeps the mapping alive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn to_mut_copies_out_of_the_mapping() {
        let dir = std::env::temp_dir().join("patlabor_arena_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.bin");
        std::fs::write(&path, vec![3u8; 16]).unwrap();
        let map = Arc::new(Mapping::open(&path).unwrap());
        let mut arena: Arena<u8> = Arena::mapped(&map, 0, 16);
        arena.to_mut()[0] = 9;
        assert!(!arena.is_mapped());
        assert_eq!(arena[0], 9);
        assert_eq!(map.bytes()[0], 3, "the mapping itself is untouched");
        std::fs::remove_file(&path).ok();
    }
}
