//! Read-only file mappings for zero-copy table serving.
//!
//! On unix the file is `mmap`ed shared read-only, so N processes opening
//! the same table share one set of physical pages straight from the page
//! cache and open-to-ready cost is independent of table size (modulo the
//! one checksum pass). Elsewhere the "mapping" is a 64-byte-aligned heap
//! buffer filled by a single bulk read — same API, same alignment
//! guarantees, no sharing.
//!
//! The mapping is immutable for its whole lifetime: it is created,
//! validated once by the v4 open path, and then only ever read. That
//! immutability is what makes the `Send + Sync` claims of the borrowing
//! arenas sound.

use std::fs::File;
use std::io;
use std::path::Path;

/// Section alignment of the v4 format; mappings guarantee at least this.
pub(crate) const MAP_ALIGN: usize = 64;

enum Backing {
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    Heap {
        ptr: *mut u8,
        len: usize,
        layout: std::alloc::Layout,
    },
}

/// An immutable byte buffer backed by an `mmap` (unix) or an aligned heap
/// allocation (fallback), always aligned to [`MAP_ALIGN`].
pub(crate) struct Mapping {
    backing: Backing,
}

// The buffer is never written after construction; sharing &[u8] views
// across threads is exactly what page-cache serving means.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only. Empty files are rejected (no v4 table fits
    /// in zero bytes, and zero-length mappings are not portable).
    pub(crate) fn open(path: &Path) -> io::Result<Mapping> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty table file",
            ));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "table too large to map"))?;
        Mapping::from_file(file, len)
    }

    #[cfg(unix)]
    fn from_file(file: File, len: usize) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;

        // Minimal FFI surface: the two libc calls zero-copy serving needs.
        // std already links libc, so no new dependency is involved.
        const PROT_READ: i32 = 1;
        const MAP_SHARED: i32 = 1;
        extern "C" {
            fn mmap(
                addr: *mut std::ffi::c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut std::ffi::c_void;
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // Page alignment (>= 4096) implies the 64-byte section alignment.
        debug_assert_eq!(ptr as usize % MAP_ALIGN, 0);
        Ok(Mapping {
            backing: Backing::Mmap {
                ptr: ptr.cast(),
                len,
            },
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: File, len: usize) -> io::Result<Mapping> {
        Mapping::read_aligned(file, len)
    }

    /// Fallback path: one aligned allocation, one bulk read.
    #[cfg_attr(unix, allow(dead_code))]
    fn read_aligned(mut file: File, len: usize) -> io::Result<Mapping> {
        use std::io::Read;
        let layout = std::alloc::Layout::from_size_align(len, MAP_ALIGN)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "table too large to map"))?;
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        // Constructing the Mapping before the read puts the buffer under
        // Drop, so an I/O error frees it with the allocating layout.
        let mut mapping = Mapping {
            backing: Backing::Heap { ptr, len, layout },
        };
        let buf = match &mut mapping.backing {
            Backing::Heap { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts_mut(*ptr, *len)
            },
            #[cfg(unix)]
            Backing::Mmap { .. } => unreachable!(),
        };
        file.read_exact(buf)?;
        Ok(mapping)
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.bytes().len()
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { ptr, len } => {
                extern "C" {
                    fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
                }
                unsafe {
                    munmap(ptr.cast::<std::ffi::c_void>(), *len);
                }
            }
            Backing::Heap { ptr, layout, .. } => unsafe {
                std::alloc::dealloc(*ptr, *layout);
            },
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_a_file_with_alignment() {
        let dir = std::env::temp_dir().join("patlabor_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        std::fs::write(&path, &data).unwrap();
        let map = Mapping::open(&path).unwrap();
        assert_eq!(map.bytes(), &data[..]);
        assert_eq!(map.bytes().as_ptr() as usize % MAP_ALIGN, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_matches() {
        let dir = std::env::temp_dir().join("patlabor_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.bin");
        let data = vec![7u8; 777];
        std::fs::write(&path, &data).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mapping::read_aligned(file, data.len()).unwrap();
        assert_eq!(map.bytes(), &data[..]);
        assert_eq!(map.bytes().as_ptr() as usize % MAP_ALIGN, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_rejected() {
        let dir = std::env::temp_dir().join("patlabor_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        assert!(Mapping::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
