//! Parallel lookup-table generation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use patlabor_dw::{boundary::boundary_position, symbolic::symbolic_frontier, DwConfig};
use patlabor_geom::Pattern;

use crate::table::{DegreeTable, LookupTable, StoredTopology};

/// Estimated symbolic-DW cost of a pattern, for scheduling.
///
/// The DP's split enumeration is O(k²) for subsets whose sinks all sit on
/// the grid boundary (Lemma 4 consecutive splits) but falls back to
/// enumerating exponentially many subset splits when interior sinks are
/// present, so interior-sink count dominates runtime. Sinks far from the
/// boundary break the lemma for more subsets, so their total boundary
/// distance is the secondary signal.
fn estimated_dw_cost(p: &Pattern) -> u64 {
    let n = p.n() as usize;
    let mut interior = 0u64;
    let mut spread = 0u64;
    for c in 0..p.n() {
        if c == p.source_col() {
            continue;
        }
        let nd = p.pin_node(c);
        let (col, row) = (nd.col as usize, nd.row as usize);
        if boundary_position(col, row, n).is_none() {
            interior += 1;
            spread += col.min(row).min(n - 1 - col).min(n - 1 - row) as u64;
        }
    }
    (interior << 32) | spread
}

/// Builder for [`LookupTable`]s.
///
/// Generation runs one symbolic Pareto-DW per canonical pattern of every
/// degree up to λ, pruning candidates with the exact LP dominance check
/// (paper Lemma 1), then pools identical topologies across patterns (the
/// paper's clustering step). Work is spread over `threads` OS threads.
///
/// The paper uses λ = 9 (4.76 h on 16 cores). Generation here is exact for
/// any λ ≤ 9; pick λ to taste — degrees ≤ 6 take seconds, 7 takes minutes,
/// 8–9 are an offline job.
///
/// # Example
///
/// ```
/// use patlabor_lut::LutBuilder;
///
/// let table = LutBuilder::new(4).threads(2).build();
/// assert_eq!(table.lambda(), 4);
/// assert_eq!(table.pattern_count(4), 16);
/// ```
#[derive(Debug, Clone)]
pub struct LutBuilder {
    lambda: u8,
    threads: usize,
    config: DwConfig,
}

impl LutBuilder {
    /// Creates a builder for tables covering degrees `2 ..= lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `3 ..= 9`.
    pub fn new(lambda: u8) -> Self {
        assert!(
            (3..=9).contains(&lambda),
            "lookup tables support 3 <= lambda <= 9, got {lambda}"
        );
        LutBuilder {
            lambda,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            config: DwConfig::default(),
        }
    }

    /// Sets the number of generation threads (default: all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the DP pruning configuration (used by equivalence tests).
    pub fn config(mut self, config: DwConfig) -> Self {
        self.config = config;
        self
    }

    /// Generates the tables.
    pub fn build(self) -> LookupTable {
        let mut tables: Vec<DegreeTable> =
            (0..=self.lambda).map(|_| DegreeTable::default()).collect();
        for degree in 3..=self.lambda {
            tables[degree as usize] = DegreeTable::from_lists(degree, self.build_degree(degree));
        }
        LookupTable {
            lambda: self.lambda,
            tables,
        }
    }

    fn build_degree(&self, degree: u8) -> HashMap<u64, Vec<StoredTopology>> {
        let mut patterns = Pattern::enumerate_canonical(degree);
        // Straggler fix: hand out the heaviest patterns first, so the
        // λ = 7 tail is many cheap patterns instead of one thread grinding
        // a late-scheduled expensive one. Key tie-break keeps the schedule
        // (not the output — that is keyed by pattern) deterministic.
        patterns.sort_by_key(|p| (std::cmp::Reverse(estimated_dw_cost(p)), p.key().as_u64()));
        let next = AtomicUsize::new(0);
        let out: Mutex<HashMap<u64, Vec<StoredTopology>>> = Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(patterns.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(pattern) = patterns.get(i) else {
                        break;
                    };
                    let solutions = symbolic_frontier(pattern, &self.config);
                    let mut topos: Vec<StoredTopology> = solutions
                        .iter()
                        .map(|s| StoredTopology::from_solution(s, degree))
                        .collect();
                    // Within-pattern dedup: distinct solutions often share
                    // a topology (same tree, different bookkeeping). Rows
                    // are part of the identity — entries with equal edges
                    // but different cost rows must both survive.
                    topos.sort();
                    topos.dedup();
                    out.lock()
                        .expect("generation thread panicked")
                        .insert(pattern.key().as_u64(), topos);
                });
            }
        });
        out.into_inner().expect("generation thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_dw::numeric;
    use patlabor_geom::{Net, Point};

    #[test]
    fn builds_all_degree_3_and_4_patterns() {
        let table = LutBuilder::new(4).threads(2).build();
        assert_eq!(table.pattern_count(3), 4);
        assert_eq!(table.pattern_count(4), 16);
        // Every pattern stores at least one topology; pooling never
        // inflates counts.
        for stats in table.stats() {
            assert!(stats.avg_topologies >= 1.0, "{stats:?}");
            assert!(stats.unique_topologies <= stats.total_topologies);
            assert!(stats.unique_topologies >= 1);
        }
    }

    #[test]
    fn pooling_is_row_aware() {
        // v3 pools on (edges, rows): a pool entry may be shared only when
        // the dot-product kernel would score it identically for both
        // patterns. In practice delay rows encode the source position, so
        // cross-pattern sharing essentially vanishes (v2 shared edge sets
        // whose costs were re-derived per net at query time) — the pool is
        // a deduplicated arena, never an inflated one, and every stored
        // entry must carry a full row block.
        let table = LutBuilder::new(5).threads(2).build();
        let s5 = table
            .stats()
            .into_iter()
            .find(|s| s.degree == 5)
            .expect("degree 5 generated");
        assert!(
            s5.unique_topologies <= s5.total_topologies,
            "pooling must never inflate: {s5:?}"
        );
        assert_eq!(s5.num_patterns, 89);
        assert!(s5.total_topologies >= s5.num_patterns);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_out_of_range_lambda() {
        let _ = LutBuilder::new(10);
    }

    #[test]
    fn query_matches_numeric_dw_on_random_nets() {
        let table = LutBuilder::new(5).threads(2).build();
        let mut seed = 0xdead_beefu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..60 {
            let degree = 3 + (trial % 3) as usize; // 3, 4, 5
            let pins: Vec<Point> = (0..degree)
                .map(|_| Point::new((rng() % 32) as i64, (rng() % 32) as i64))
                .collect();
            let net = Net::new(pins).unwrap();
            let expected = numeric::pareto_frontier(&net, &DwConfig::default());
            let got = table.query(&net).expect("degree within lambda");
            assert_eq!(
                got.cost_vec(),
                expected.cost_vec(),
                "LUT/DW mismatch on {:?}",
                net.pins()
            );
            for (c, t) in got.iter() {
                t.validate(&net).unwrap();
                assert_eq!((c.wirelength, c.delay), t.objectives());
            }
        }
    }

    #[test]
    fn query_handles_degree_2_and_out_of_range() {
        let table = LutBuilder::new(4).threads(1).build();
        let net2 = Net::new(vec![Point::new(0, 0), Point::new(3, 4)]).unwrap();
        let f = table.query(&net2).unwrap();
        assert_eq!(f.len(), 1);
        let big = Net::new((0..6).map(|i| Point::new(i, i * i)).collect()).unwrap();
        assert!(table.query(&big).is_none());
    }

    #[test]
    fn query_handles_tied_coordinates() {
        let table = LutBuilder::new(4).threads(1).build();
        let net = Net::new(vec![
            Point::new(0, 0),
            Point::new(0, 5),
            Point::new(5, 5),
            Point::new(5, 0),
        ])
        .unwrap();
        let expected = numeric::pareto_frontier(&net, &DwConfig::default());
        let got = table.query(&net).unwrap();
        assert_eq!(got.cost_vec(), expected.cost_vec());
    }
}
