//! Pruning configuration for the Pareto-DW dynamic programs.

/// Which acceleration rules the DP applies (paper §V-A, Lemmas 2–4).
///
/// All rules are *exact* (they never change the computed frontier); tests
/// compare pruned and unpruned runs. The default enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwConfig {
    /// Lemma 2: skip Hanan-grid nodes that are corner nodes (no pin in one
    /// of their four closed quadrants).
    pub corner_pruning: bool,
    /// Lemma 3: only run the subset-merge transition at nodes inside the
    /// bounding box of the subset's pins (outside nodes are reached by
    /// projection + edge growth).
    pub bbox_shortcut: bool,
    /// Lemma 4: when every pin of the current subset lies on the grid
    /// boundary, only split the subset into circularly consecutive runs.
    pub separator_split: bool,
    /// Optional cap on the number of solutions kept per DP state. `None`
    /// keeps the DP exact; `Some(k)` turns it into a beam-style
    /// approximation (used only for robustness experiments).
    pub max_frontier: Option<usize>,
}

impl Default for DwConfig {
    fn default() -> Self {
        DwConfig {
            corner_pruning: true,
            bbox_shortcut: true,
            separator_split: true,
            max_frontier: None,
        }
    }
}

impl DwConfig {
    /// A configuration with every pruning rule disabled — the reference
    /// the pruned runs are tested against.
    pub fn unpruned() -> Self {
        DwConfig {
            corner_pruning: false,
            bbox_shortcut: false,
            separator_split: false,
            max_frontier: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_lemmas() {
        let c = DwConfig::default();
        assert!(c.corner_pruning && c.bbox_shortcut && c.separator_split);
        assert_eq!(c.max_frontier, None);
    }

    #[test]
    fn unpruned_disables_all_lemmas() {
        let c = DwConfig::unpruned();
        assert!(!c.corner_pruning && !c.bbox_shortcut && !c.separator_split);
    }
}
