//! Pareto-Dreyfus–Wagner: exact Pareto frontiers for timing-driven routing.
//!
//! This crate implements the paper's §IV-A algorithm in two flavors:
//!
//! * [`numeric`] — the per-instance dynamic program over the Hanan grid:
//!   states `S_{v,Q}` hold Pareto sets of `(w, d)` pairs with their partial
//!   topologies, combined by Eq. (1)'s edge-growth and subset-merge
//!   transitions. Returns the exact Pareto frontier together with one
//!   witness [`RoutingTree`](patlabor_tree::RoutingTree) per frontier point.
//! * [`symbolic`] — the per-*pattern* variant used to generate lookup
//!   tables (§V-A): solutions are `(W, D)` pairs of gap-multiplicity
//!   vectors, and dominance is decided for **all** gap lengths at once via
//!   exact LP ([`patlabor_lp::cone`]), replacing the paper's SMT calls.
//!
//! Pruning Lemmas 2 (corner nodes), 3 (bounding-box projection) and 4
//! (boundary separators) are implemented behind [`DwConfig`] flags so tests
//! can verify they do not change results.
//!
//! # Example
//!
//! ```
//! use patlabor_geom::{Net, Point};
//! use patlabor_dw::{numeric::pareto_frontier, DwConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Net::new(vec![Point::new(0, 0), Point::new(4, 2), Point::new(2, 4)])?;
//! let frontier = pareto_frontier(&net, &DwConfig::default());
//! assert!(!frontier.is_empty());
//! // The wirelength-optimal end of the frontier is an RSMT.
//! let (best_w, _) = frontier.min_wirelength().expect("non-empty");
//! assert_eq!(best_w.wirelength, 8);
//! # Ok(())
//! # }
//! ```

pub mod boundary;
mod config;
pub mod numeric;
pub mod oracle;
pub mod symbolic;

pub use config::DwConfig;

/// Returned by [`numeric::pareto_frontier_cancellable`] when its
/// cooperative cancellation hook fires (a deadline budget expired): the
/// enumeration was abandoned and no partial frontier is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("enumeration cancelled by its budget hook")
    }
}

impl std::error::Error for Cancelled {}
