//! The per-instance Pareto-DW dynamic program (paper §IV-A).
//!
//! States `S_{v,Q}` (Hanan-grid node `v`, sink subset `Q`) hold Pareto sets
//! of `(w, d)` objective pairs, each carrying its partial topology for
//! reconstruction. Transitions follow Eq. (1):
//!
//! * **edge growth** — `S_{u,Q} + ‖u − v‖₁`: attach the subtree to a new
//!   root by one rectilinear edge. A single all-pairs pass suffices because
//!   `l₁` obeys the triangle inequality, so relayed growth is dominated;
//! * **subset merge** — `S_{v,Q₁} ⊕ S_{v,Q₂}`: glue two subtrees at their
//!   shared root (wirelengths add, delays max).
//!
//! Merged unions may overlap edges, making the bookkept objectives an
//! *upper bound*; the final answer re-extracts a genuine tree per frontier
//! candidate (see [`patlabor_tree::extract_from_union`]) and re-prunes, so
//! the returned frontier is exact and every point has a tree witness.

use patlabor_geom::{BoundingBox, HananGrid, Net};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union, RoutingTree};

use crate::boundary::{boundary_position, consecutive_splits};
use crate::{Cancelled, DwConfig};

/// Partial topology: edges between packed Hanan-grid node ids.
type Edges = Vec<(u16, u16)>;

/// The largest degree [`pareto_frontier`] accepts (the DP is exponential;
/// larger nets must go through the local-search path).
pub const MAX_DEGREE: usize = 13;

/// Computes the exact Pareto frontier of a net, with one witness tree per
/// frontier point.
///
/// Runs in `O*(3ⁿ · |S|²)` time; intended for small degrees (the paper's
/// lookup tables cover `n ≤ 9`; this routine is practical to roughly the
/// same range).
///
/// # Panics
///
/// Panics if the net degree exceeds [`MAX_DEGREE`] (13 is admitted only so
/// the Theorem-1 experiments can verify 4-gadget chains exactly).
pub fn pareto_frontier(net: &Net, config: &DwConfig) -> ParetoSet<RoutingTree> {
    match pareto_frontier_cancellable(net, config, &|| false) {
        Ok(frontier) => frontier,
        Err(Cancelled) => unreachable!("a never-true cancel hook cannot cancel"),
    }
}

/// [`pareto_frontier`] with a cooperative cancellation hook for deadline
/// budgets: `cancel` is polled once per subset-mask iteration (the DP's
/// outer loop, `2ⁿ⁻¹ − 1` checkpoints) and once more before witness
/// reconstruction; the first `true` abandons the enumeration.
///
/// The hook keeps the exponential kernel preemptible without threading a
/// clock through this crate — the router passes a closure reading its
/// [`Budget`](https://docs.rs/patlabor), tests pass a counter or a flag.
///
/// # Errors
///
/// Returns [`Cancelled`] when the hook fires; the partial DP state is
/// discarded (no partial frontier is ever observable).
///
/// # Panics
///
/// Panics if the net degree exceeds [`MAX_DEGREE`], like [`pareto_frontier`].
pub fn pareto_frontier_cancellable(
    net: &Net,
    config: &DwConfig,
    cancel: &dyn Fn() -> bool,
) -> Result<ParetoSet<RoutingTree>, Cancelled> {
    let n = net.degree();
    assert!(
        (2..=MAX_DEGREE).contains(&n),
        "numeric Pareto-DW supports degrees 2..={MAX_DEGREE}, got {n}"
    );
    let grid = HananGrid::new(net);
    let nn = grid.node_count();
    let num_sinks = n - 1;
    let full: u32 = (1u32 << num_sinks) - 1;

    // Plane coordinates per node id, for O(1) distances.
    let node_pt: Vec<_> = (0..nn).map(|id| grid.point(grid.node_from_id(id))).collect();
    let dist = |a: usize, b: usize| node_pt[a].l1(node_pt[b]);

    let sink_node: Vec<usize> = (1..n).map(|i| grid.node_id(grid.pin_node(i))).collect();
    let root_node = grid.node_id(grid.pin_node(0));

    // Lemma 2: corner nodes carry no states.
    let alive: Vec<bool> = (0..nn)
        .map(|id| !config.corner_pruning || !is_corner_node(net, node_pt[id]))
        .collect();
    debug_assert!(alive[root_node] && sink_node.iter().all(|&s| alive[s]));

    // Boundary positions for Lemma 4 (pattern grid boundary).
    let sink_boundary_pos: Vec<Option<usize>> = (1..n)
        .map(|i| {
            let node = grid.pin_node(i);
            boundary_position(node.col as usize, node.row as usize, grid.size())
        })
        .collect();

    let empty_state: Vec<ParetoSet<Edges>> = vec![ParetoSet::new(); nn];
    let mut states: Vec<Vec<ParetoSet<Edges>>> = vec![empty_state.clone(); (full as usize) + 1];

    for mask in 1..=full {
        if cancel() {
            return Err(Cancelled);
        }
        let members: Vec<usize> = (0..num_sinks).filter(|i| mask >> i & 1 == 1).collect();
        let mut pre: Vec<ParetoSet<Edges>> = vec![ParetoSet::new(); nn];

        if members.len() == 1 {
            // Base case: direct connection v → sink.
            let q = sink_node[members[0]];
            for v in 0..nn {
                if !alive[v] {
                    continue;
                }
                let d = dist(v, q);
                let edges: Edges = if v == q {
                    Vec::new()
                } else {
                    vec![(v as u16, q as u16)]
                };
                pre[v].insert(Cost::new(d, d), edges);
            }
        } else {
            let splits = enumerate_splits(mask, &members, &sink_boundary_pos, config);
            // Lemma 3: only merge at nodes inside the subset's pin bbox.
            let bbox = BoundingBox::of_points(
                members.iter().map(|&i| net.pins()[i + 1]),
            )
            .expect("non-empty member set");
            for v in 0..nn {
                if !alive[v] {
                    continue;
                }
                if config.bbox_shortcut && !bbox.contains(node_pt[v]) {
                    continue;
                }
                let mut acc: Vec<(Cost, Edges)> = Vec::new();
                for &(m1, m2) in &splits {
                    let s1 = &states[m1 as usize][v];
                    let s2 = &states[m2 as usize][v];
                    for (c1, e1) in s1.iter() {
                        for (c2, e2) in s2.iter() {
                            let mut edges = e1.clone();
                            edges.extend_from_slice(e2);
                            acc.push((c1.combine(c2), edges));
                        }
                    }
                }
                pre[v] = ParetoSet::from_unpruned(acc);
            }
        }

        // Edge-growth closure: one all-pairs pass.
        let mut fin: Vec<ParetoSet<Edges>> = vec![ParetoSet::new(); nn];
        for v in 0..nn {
            if !alive[v] {
                continue;
            }
            let mut acc: Vec<(Cost, Edges)> = Vec::new();
            for u in 0..nn {
                if !alive[u] || pre[u].is_empty() {
                    continue;
                }
                let step = dist(u, v);
                for (c, e) in pre[u].iter() {
                    let mut edges = e.clone();
                    if u != v {
                        edges.push((u as u16, v as u16));
                    }
                    acc.push((c.shift(step), edges));
                }
            }
            let mut set = ParetoSet::from_unpruned(acc);
            if let Some(cap) = config.max_frontier {
                set = truncate_frontier(set, cap);
            }
            fin[v] = set;
        }
        states[mask as usize] = fin;
    }

    // Reconstruct real trees from the final state's edge unions.
    if cancel() {
        return Err(Cancelled);
    }
    let final_state = &states[full as usize][root_node];
    let mut witnesses: Vec<(Cost, RoutingTree)> = Vec::with_capacity(final_state.len());
    for (_, edges) in final_state.iter() {
        let pts: Vec<_> = edges
            .iter()
            .map(|&(a, b)| (node_pt[a as usize], node_pt[b as usize]))
            .collect();
        let tree = extract_from_union(net, &pts)
            .expect("DP unions connect every pin by construction");
        let (w, d) = tree.objectives();
        witnesses.push((Cost::new(w, d), tree));
    }
    Ok(ParetoSet::from_unpruned(witnesses))
}

/// Lemma 2 test: `p` is a corner node when one of its four closed
/// quadrants contains no pin.
fn is_corner_node(net: &Net, p: patlabor_geom::Point) -> bool {
    let mut ll = true; // no pin with x ≤ p.x and y ≤ p.y
    let mut lr = true;
    let mut ul = true;
    let mut ur = true;
    for &q in net.pins() {
        if q.x <= p.x && q.y <= p.y {
            ll = false;
        }
        if q.x >= p.x && q.y <= p.y {
            lr = false;
        }
        if q.x <= p.x && q.y >= p.y {
            ul = false;
        }
        if q.x >= p.x && q.y >= p.y {
            ur = false;
        }
    }
    ll || lr || ul || ur
}

/// Enumerates unordered subset splits `(m1, m2)` of `mask` per the active
/// configuration.
fn enumerate_splits(
    mask: u32,
    members: &[usize],
    sink_boundary_pos: &[Option<usize>],
    config: &DwConfig,
) -> Vec<(u32, u32)> {
    if config.separator_split {
        let positions: Option<Vec<usize>> =
            members.iter().map(|&i| sink_boundary_pos[i]).collect();
        if let Some(positions) = positions {
            if let Some(local) = consecutive_splits(&positions) {
                return local
                    .into_iter()
                    .map(|(l1, l2)| (expand_mask(l1, members), expand_mask(l2, members)))
                    .collect();
            }
        }
    }
    // Full enumeration of unordered proper splits.
    let mut out = Vec::new();
    let mut m1 = (mask - 1) & mask;
    while m1 > 0 {
        let m2 = mask ^ m1;
        if m1 > m2 {
            out.push((m1, m2));
        }
        m1 = (m1 - 1) & mask;
    }
    out
}

/// Maps a mask over local member indices back to the global sink mask.
fn expand_mask(local: u32, members: &[usize]) -> u32 {
    let mut out = 0u32;
    for (i, &m) in members.iter().enumerate() {
        if local >> i & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

/// Keeps at most `cap` solutions, evenly spread along the frontier (always
/// keeping both extreme points).
fn truncate_frontier<T>(set: ParetoSet<T>, cap: usize) -> ParetoSet<T> {
    let len = set.len();
    if len <= cap || cap == 0 {
        return set;
    }
    let entries = set.into_entries();
    let mut kept = Vec::with_capacity(cap);
    for (rank, entry) in entries.into_iter().enumerate() {
        // Evenly spaced indices including first and last.
        let keep = (rank * (cap - 1)).is_multiple_of(len - 1) || rank == len - 1;
        if keep && kept.len() < cap {
            kept.push(entry);
        }
    }
    ParetoSet::from_unpruned(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Point;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn degree_two_is_a_single_direct_edge() {
        let f = pareto_frontier(&net(&[(0, 0), (7, 3)]), &DwConfig::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f.cost_vec(), vec![Cost::new(10, 10)]);
    }

    #[test]
    fn degree_three_l_shape() {
        // Collinear-ish pins: the RSMT is also the shortest-path tree, so
        // the frontier is a single point.
        let f = pareto_frontier(&net(&[(0, 0), (4, 0), (8, 0)]), &DwConfig::default());
        assert_eq!(f.cost_vec(), vec![Cost::new(8, 8)]);
    }

    #[test]
    fn degree_three_with_steiner_point() {
        let f = pareto_frontier(&net(&[(0, 0), (4, 2), (2, 4)]), &DwConfig::default());
        // RSMT via Steiner (2,2): w=8; every sink path is shortest (6), so
        // single frontier point (8, 6).
        assert_eq!(f.cost_vec(), vec![Cost::new(8, 6)]);
        for (c, t) in f.iter() {
            assert_eq!((c.wirelength, c.delay), t.objectives());
            t.validate(&net(&[(0, 0), (4, 2), (2, 4)])).unwrap();
        }
    }

    #[test]
    fn tradeoff_instance_has_multiple_points() {
        // Source left, two sinks arranged so minimizing w forces a detour.
        let n = net(&[(0, 0), (10, 1), (10, -1)]);
        let f = pareto_frontier(&n, &DwConfig::default());
        // w-optimal: trunk to (10,0)-ish then split: w=12, d=11.
        // d-optimal: star: w=22, d=11 — same delay! So actually single point.
        let (wopt, _) = f.min_wirelength().unwrap();
        assert_eq!(wopt.wirelength, 12);
        for (c, t) in f.iter() {
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn genuine_tradeoff_frontier() {
        // Degree-5 instance with a real w/d tradeoff (degree-3 nets never
        // have one — the median Steiner tree is distance-preserving — and
        // degree-4 tradeoffs are vanishingly rare, matching Table IV).
        let n = net(&[(19, 2), (8, 4), (4, 3), (5, 4), (13, 12)]);
        let f = pareto_frontier(&n, &DwConfig::default());
        assert_eq!(
            f.cost_vec(),
            vec![Cost::new(26, 18), Cost::new(27, 16)],
            "expected the known two-point frontier"
        );
        let (w_end, _) = f.min_wirelength().unwrap();
        let (d_end, _) = f.min_delay().unwrap();
        assert!(w_end.wirelength < d_end.wirelength);
        assert!(d_end.delay < w_end.delay);
    }

    #[test]
    fn pruning_lemmas_do_not_change_results() {
        let nets = [
            net(&[(0, 0), (6, 6), (7, 5)]),
            net(&[(0, 0), (10, 1), (10, -1)]),
            net(&[(3, 3), (0, 7), (7, 0), (9, 9)]),
            net(&[(5, 0), (0, 5), (9, 4), (4, 9)]),
            net(&[(0, 0), (2, 7), (5, 3), (8, 8), (7, 1)]),
        ];
        for n in &nets {
            let unpruned = pareto_frontier(n, &DwConfig::unpruned());
            let pruned = pareto_frontier(n, &DwConfig::default());
            assert_eq!(
                unpruned.cost_vec(),
                pruned.cost_vec(),
                "pruning changed the frontier on {:?}",
                n
            );
        }
    }

    #[test]
    fn duplicate_pin_positions_are_handled() {
        let n = net(&[(0, 0), (5, 5), (5, 5)]);
        let f = pareto_frontier(&n, &DwConfig::default());
        assert_eq!(f.cost_vec(), vec![Cost::new(10, 10)]);
    }

    #[test]
    fn witnesses_match_reported_costs() {
        let n = net(&[(1, 8), (0, 0), (8, 2), (9, 9), (4, 5)]);
        let f = pareto_frontier(&n, &DwConfig::default());
        assert!(!f.is_empty());
        for (c, t) in f.iter() {
            t.validate(&n).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
        // Frontier ends are bounded by the trivial bounds.
        let (d_end, _) = f.min_delay().unwrap();
        assert!(d_end.delay >= n.delay_lower_bound());
    }

    #[test]
    fn cancellable_with_inert_hook_matches_plain_enumeration() {
        use std::cell::Cell;
        let n = net(&[(19, 2), (8, 4), (4, 3), (5, 4), (13, 12)]);
        let checkpoints = Cell::new(0u32);
        let cancel = || {
            checkpoints.set(checkpoints.get() + 1);
            false
        };
        let cancellable =
            pareto_frontier_cancellable(&n, &DwConfig::default(), &cancel).expect("never cancels");
        assert_eq!(cancellable, pareto_frontier(&n, &DwConfig::default()));
        // One checkpoint per subset mask (2^4 − 1) plus the final one.
        assert_eq!(checkpoints.get(), 16);
    }

    #[test]
    fn cancellation_mid_enumeration_returns_cancelled() {
        use std::cell::Cell;
        let n = net(&[(0, 0), (2, 7), (5, 3), (8, 8), (7, 1)]);
        let budget = Cell::new(3u32);
        let cancel = || {
            let left = budget.get();
            budget.set(left.saturating_sub(1));
            left == 0
        };
        assert_eq!(
            pareto_frontier_cancellable(&n, &DwConfig::default(), &cancel),
            Err(Cancelled)
        );
    }

    #[test]
    fn immediate_cancellation_does_no_work() {
        let n = net(&[(0, 0), (4, 2), (2, 4)]);
        assert_eq!(
            pareto_frontier_cancellable(&n, &DwConfig::default(), &|| true),
            Err(Cancelled)
        );
    }

    #[test]
    fn max_frontier_cap_keeps_extremes() {
        let n = net(&[(0, 0), (6, 6), (7, 5), (3, 9)]);
        let full = pareto_frontier(&n, &DwConfig::default());
        let capped = pareto_frontier(
            &n,
            &DwConfig {
                max_frontier: Some(2),
                ..DwConfig::default()
            },
        );
        assert!(capped.len() <= full.len());
        assert!(!capped.is_empty());
    }
}
