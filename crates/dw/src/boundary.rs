//! Grid-boundary bookkeeping for the Lemma 4 separator rule.
//!
//! When every pin of a subset lies on the boundary of the Hanan grid, the
//! outer-planar separator argument of the paper shows that the subset-merge
//! transition only needs splits into *circularly consecutive* boundary runs
//! (Lemma 4), replacing `2^k` subset splits by `O(k²)` runs.

/// Clockwise position of a grid node on the boundary of an `n × n` grid,
/// or `None` for interior nodes.
///
/// Positions start at the lower-left corner `(0, 0)` and walk up the left
/// edge, across the top, down the right edge and back along the bottom.
///
/// # Example
///
/// ```
/// use patlabor_dw::boundary::boundary_position;
///
/// assert_eq!(boundary_position(0, 0, 4), Some(0));
/// assert_eq!(boundary_position(0, 3, 4), Some(3)); // top-left corner
/// assert_eq!(boundary_position(3, 3, 4), Some(6)); // top-right corner
/// assert_eq!(boundary_position(1, 1, 4), None);    // interior
/// ```
pub fn boundary_position(col: usize, row: usize, n: usize) -> Option<usize> {
    debug_assert!(col < n && row < n);
    if n == 1 {
        return Some(0);
    }
    let last = n - 1;
    if col == 0 {
        Some(row)
    } else if row == last {
        Some(last + col)
    } else if col == last {
        Some(2 * last + (last - row))
    } else if row == 0 {
        Some(3 * last + (last - col))
    } else {
        None
    }
}

/// Enumerates the subset splits Lemma 4 allows.
///
/// `members` are the sink indices of the current subset and `positions`
/// their clockwise boundary positions (same order). Returns pairs of
/// bitmasks `(m1, m2)` over the *local* indices `0..members.len()` such
/// that each side is a circular run; every unordered split appears once.
/// Returns `None` when fewer than two members exist (no split needed).
pub fn consecutive_splits(positions: &[usize]) -> Option<Vec<(u32, u32)>> {
    let k = positions.len();
    if k < 2 {
        return None;
    }
    // Sort members clockwise.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| positions[i]);
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for start in 0..k {
        for len in 1..k {
            let mut m1: u32 = 0;
            for offset in 0..len {
                m1 |= 1 << order[(start + offset) % k];
            }
            let m2 = full & !m1;
            let key = (m1.min(m2), m1.max(m2));
            if seen.insert(key) {
                out.push(key);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_walk_is_a_cycle() {
        let n = 4;
        let mut positions = Vec::new();
        for c in 0..n {
            for r in 0..n {
                if let Some(p) = boundary_position(c, r, n) {
                    positions.push(p);
                }
            }
        }
        positions.sort_unstable();
        // 4x4 grid boundary has 12 nodes with positions 0..12.
        assert_eq!(positions, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn interior_nodes_have_no_position() {
        for c in 1..3 {
            for r in 1..3 {
                assert_eq!(boundary_position(c, r, 4), None);
            }
        }
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(boundary_position(0, 0, 1), Some(0));
        assert_eq!(boundary_position(0, 0, 2), Some(0));
        assert_eq!(boundary_position(1, 1, 2), Some(2));
    }

    #[test]
    fn splits_of_three_members() {
        // Three members anywhere on the boundary: every split of a 3-cycle
        // into two runs is (singleton, pair) → 3 unordered splits.
        let splits = consecutive_splits(&[0, 5, 9]).unwrap();
        assert_eq!(splits.len(), 3);
        for (m1, m2) in splits {
            assert_eq!(m1 | m2, 0b111);
            assert_eq!(m1 & m2, 0);
        }
    }

    #[test]
    fn splits_of_four_members_exclude_interleaved() {
        // Members labeled clockwise 0,1,2,3: the split {0,2}|{1,3} is NOT
        // consecutive and must be absent.
        let splits = consecutive_splits(&[0, 1, 2, 3]).unwrap();
        assert!(!splits.contains(&(0b0101, 0b1010)));
        // Runs: 4 singleton splits + 2 pair splits... circular runs of len
        // 1: 4; len 2: 4 but complement also len 2 → dedup to ... count:
        let expect: std::collections::HashSet<(u32, u32)> = [
            (0b0001, 0b1110),
            (0b0010, 0b1101),
            (0b0100, 0b1011),
            (0b0111, 0b1000),
            (0b0011, 0b1100),
            (0b0110, 0b1001),
        ]
        .into_iter()
        .collect();
        let got: std::collections::HashSet<(u32, u32)> = splits.into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn no_split_for_single_member() {
        assert_eq!(consecutive_splits(&[3]), None);
        assert_eq!(consecutive_splits(&[]), None);
    }
}
