//! Brute-force reference frontier for tiny nets.
//!
//! Exhaustively enumerates every Steiner topology on the Hanan grid —
//! all subsets of up to `n − 2` candidate Steiner points and all labeled
//! spanning trees over pins + chosen points (via Prüfer sequences) — and
//! returns the exact Pareto frontier. Any Pareto-optimal tree can be
//! brought to this form: Steiner nodes of degree ≤ 2 splice away without
//! worsening either objective, leaving at most `n − 2` branching Steiner
//! nodes, all on the Hanan grid.
//!
//! Cost is super-exponential; the functions guard against degrees above 5.
//! This module exists to validate [`crate::numeric`] and the lookup tables,
//! not for production routing.

use patlabor_geom::{HananGrid, Net, Point};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::RoutingTree;

/// Exhaustive exact frontier for nets of degree ≤ 5.
///
/// # Panics
///
/// Panics if the degree exceeds 5 (the enumeration would take hours).
pub fn exhaustive_frontier(net: &Net) -> ParetoSet<RoutingTree> {
    let n = net.degree();
    assert!(n <= 5, "oracle supports degree <= 5, got {n}");
    exhaustive_frontier_with(net, n.saturating_sub(2))
}

/// Exhaustive frontier with an explicit cap on Steiner-point count.
///
/// With `max_steiner ≥ n − 2` the result is the exact frontier; smaller
/// caps yield a (still useful) restricted frontier.
///
/// # Panics
///
/// Panics if the degree exceeds 6.
pub fn exhaustive_frontier_with(net: &Net, max_steiner: usize) -> ParetoSet<RoutingTree> {
    let n = net.degree();
    assert!(n <= 6, "oracle supports degree <= 6, got {n}");
    let grid = HananGrid::new(net);
    let pin_pts: Vec<Point> = net.pins().to_vec();
    let candidates: Vec<Point> = grid
        .nodes()
        .map(|nd| grid.point(nd))
        .filter(|p| !pin_pts.contains(p))
        .collect();

    let mut frontier: ParetoSet<Vec<Point>> = ParetoSet::new();
    // `payload` = full node list whose best tree achieved the cost; we
    // rebuild the witness tree at the end.
    let mut best_trees: Vec<(Cost, Vec<Point>, Vec<usize>)> = Vec::new();

    for s in 0..=max_steiner.min(candidates.len()) {
        for combo in combinations(candidates.len(), s) {
            let mut pts = pin_pts.clone();
            pts.extend(combo.iter().map(|&i| candidates[i]));
            let k = pts.len();
            for_each_labeled_tree(k, |parent| {
                let (w, d) = evaluate(&pts, parent, n);
                let cost = Cost::new(w, d);
                if frontier.insert(cost, pts.clone()) {
                    best_trees.push((cost, pts.clone(), parent.to_vec()));
                }
            });
        }
    }

    // Build witness trees for surviving frontier points (last insert wins
    // per cost; scan from the back).
    let mut out: Vec<(Cost, RoutingTree)> = Vec::new();
    for cost in frontier.costs() {
        let (_, pts, parent) = best_trees
            .iter()
            .rev()
            .find(|(c, _, _)| *c == cost)
            .expect("frontier cost must come from an enumerated tree");
        let tree = RoutingTree::from_parents(pts.clone(), parent.clone(), n)
            .expect("enumerated parent vectors are valid trees");
        out.push((cost, tree));
    }
    ParetoSet::from_unpruned(out)
}

/// Evaluates `(w, d)` of the tree given by `parent` over `pts`
/// (`parent[0]` ignored; pins are `0..num_pins`).
fn evaluate(pts: &[Point], parent: &[usize], num_pins: usize) -> (i64, i64) {
    let k = pts.len();
    let mut w = 0;
    for v in 1..k {
        w += pts[v].l1(pts[parent[v]]);
    }
    let mut dist = vec![-1i64; k];
    dist[0] = 0;
    fn resolve(v: usize, pts: &[Point], parent: &[usize], dist: &mut [i64]) -> i64 {
        if dist[v] >= 0 {
            return dist[v];
        }
        let d = resolve(parent[v], pts, parent, dist) + pts[v].l1(pts[parent[v]]);
        dist[v] = d;
        d
    }
    let mut d = 0;
    for pin in 1..num_pins {
        d = d.max(resolve(pin, pts, parent, &mut dist));
    }
    (w, d)
}

/// Calls `f` with the parent vector of every labeled tree on `k` nodes
/// rooted at node 0, enumerated through Prüfer sequences.
fn for_each_labeled_tree<F: FnMut(&[usize])>(k: usize, mut f: F) {
    if k == 2 {
        f(&[0, 0]);
        return;
    }
    let len = k - 2;
    let mut seq = vec![0usize; len];
    loop {
        let parent = prufer_to_parents(&seq, k);
        f(&parent);
        // Increment the sequence in base k.
        let mut i = 0;
        loop {
            if i == len {
                return;
            }
            seq[i] += 1;
            if seq[i] < k {
                break;
            }
            seq[i] = 0;
            i += 1;
        }
    }
}

/// Decodes a Prüfer sequence into a parent vector rooted at 0.
fn prufer_to_parents(seq: &[usize], k: usize) -> Vec<usize> {
    let mut degree = vec![1usize; k];
    for &v in seq {
        degree[v] += 1;
    }
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(k - 1);
    let mut degree_work = degree.clone();
    let mut seq_iter = seq.iter();
    // Standard O(k²) decode (k ≤ 8 here).
    let mut used = vec![false; k];
    for &v in seq_iter.by_ref() {
        let leaf = (0..k)
            .find(|&u| degree_work[u] == 1 && !used[u])
            .expect("valid Prüfer sequence");
        edges.push((leaf, v));
        used[leaf] = true;
        degree_work[leaf] -= 1;
        degree_work[v] -= 1;
    }
    let rest: Vec<usize> = (0..k).filter(|&u| !used[u] && degree_work[u] == 1).collect();
    debug_assert_eq!(rest.len(), 2);
    edges.push((rest[0], rest[1]));

    // Orient toward root 0 with BFS.
    let mut adj = vec![Vec::new(); k];
    for &(a, b) in &edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut parent = vec![usize::MAX; k];
    parent[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if parent[v] == usize::MAX {
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

/// All `C(n, k)` index combinations.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{numeric, DwConfig};

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn prufer_covers_all_trees() {
        // Cayley: 4 nodes → 16 labeled trees.
        let mut count = 0;
        let mut seen = std::collections::HashSet::new();
        for_each_labeled_tree(4, |parent| {
            count += 1;
            let mut edges: Vec<(usize, usize)> = (1..4)
                .map(|v| (v.min(parent[v]), v.max(parent[v])))
                .collect();
            edges.sort_unstable();
            seen.insert(edges);
        });
        assert_eq!(count, 16);
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(5, 2).len(), 10);
        assert_eq!(combinations(4, 0).len(), 1);
        assert_eq!(combinations(3, 3).len(), 1);
    }

    #[test]
    fn oracle_degree_2_and_3() {
        let f2 = exhaustive_frontier(&net(&[(0, 0), (3, 4)]));
        assert_eq!(f2.cost_vec(), vec![Cost::new(7, 7)]);
        let f3 = exhaustive_frontier(&net(&[(0, 0), (4, 2), (2, 4)]));
        assert_eq!(f3.cost_vec(), vec![Cost::new(8, 6)]);
    }

    #[test]
    fn oracle_agrees_with_numeric_dw_on_degree_4() {
        let nets = [
            net(&[(0, 0), (6, 6), (7, 5), (2, 8)]),
            net(&[(3, 3), (0, 7), (7, 0), (9, 9)]),
            net(&[(5, 0), (0, 5), (9, 4), (4, 9)]),
            net(&[(0, 0), (1, 9), (9, 1), (8, 8)]),
        ];
        for n in &nets {
            let oracle = exhaustive_frontier(n);
            let dw = numeric::pareto_frontier(n, &DwConfig::default());
            assert_eq!(
                oracle.cost_vec(),
                dw.cost_vec(),
                "oracle/DW mismatch on {n:?}"
            );
        }
    }

    #[test]
    fn oracle_witnesses_are_valid() {
        let n = net(&[(0, 0), (6, 6), (7, 5), (2, 8)]);
        let f = exhaustive_frontier(&n);
        for (c, t) in f.iter() {
            t.validate(&n).unwrap();
            // Witness cost may only be equal (frontier stores exact costs).
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }
}
