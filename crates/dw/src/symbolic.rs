//! The per-pattern (symbolic) Pareto-DW used to generate lookup tables
//! (paper §V-A).
//!
//! A solution here is not a concrete `(w, d)` pair but a pair `(W, D)` of
//! gap-multiplicity data: `w = Σᵢ Wᵢ lᵢ` and `d = maxᵢ Σⱼ Dᵢⱼ lⱼ` over the
//! `2n − 2` Hanan gap lengths `l ≥ 0` of whatever net instantiates the
//! pattern. A candidate is pruned only when it is dominated **for every**
//! non-negative gap vector (Lemma 1):
//!
//! * the wirelength condition `Σ (W² − W¹)ᵢ lᵢ ≥ 0 ∀ l ≥ 0` is simply
//!   componentwise `W¹ ≤ W²`;
//! * the delay condition holds iff for every row `a` of `D¹` the strict
//!   system `{(a − bₖ)·l > 0, l ≥ 0}` over the rows `bₖ` of `D²` is
//!   infeasible — decided exactly by [`patlabor_lp::cone::strictly_feasible`]
//!   (the paper calls an SMT solver here; the condition is linear, so exact
//!   LP is a complete decision procedure).
//!
//! Cheap componentwise and sampled prefilters skip almost all LP calls.

use patlabor_geom::{Pattern, RankNode};
use patlabor_lp::cone::strictly_feasible_with;
use patlabor_lp::SimplexScratch;

use crate::boundary::{boundary_position, consecutive_splits};
use crate::DwConfig;

/// Multiplicities over the `2n − 2` gap lengths (horizontal gaps first).
pub type GapVec = Vec<u16>;

/// The symbolic-cost dot product: `Σᵢ weights[i] · gaps[i]`.
///
/// This is the entire query kernel of the v3 lookup tables: a stored
/// topology's wirelength is `dot(W, l)` and its delay is the max of
/// `dot(Dⱼ, l)` over its per-sink delay rows, so serving a tabulated net
/// costs a handful of integer dot products instead of tree
/// materializations. Exposed so [`patlabor_lut`](../../patlabor_lut)
/// evaluates pooled rows with exactly the arithmetic the symbolic DP
/// used to prune them.
///
/// # Panics
///
/// Debug-asserts equal lengths; in release the shorter slice wins.
#[inline]
pub fn dot(weights: &[u16], gaps: &[i64]) -> i64 {
    debug_assert_eq!(weights.len(), gaps.len(), "gap vector length mismatch");
    weights
        .iter()
        .zip(gaps)
        .map(|(&m, &l)| m as i64 * l)
        .sum()
}

/// A potentially Pareto-optimal topology of a pattern, in symbolic form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicSolution {
    /// Wirelength multiplicities `W` (length `2n − 2`).
    pub w: GapVec,
    /// One delay row per sink of the covered subset, ordered by ascending
    /// sink column rank.
    pub delays: Vec<GapVec>,
    /// Topology edges between rank-grid nodes.
    pub edges: Vec<(RankNode, RankNode)>,
}

impl SymbolicSolution {
    /// Evaluates the bookkept objectives against concrete gap lengths.
    ///
    /// # Panics
    ///
    /// Panics if `gaps.len()` differs from the solution's gap dimension.
    pub fn evaluate(&self, gaps: &[i64]) -> (i64, i64) {
        assert_eq!(gaps.len(), self.w.len(), "gap vector length mismatch");
        let w = dot(&self.w, gaps);
        let d = self.delays.iter().map(|row| dot(row, gaps)).max().unwrap_or(0);
        (w, d)
    }

    /// Evaluates the objectives for a classified net.
    ///
    /// The solution must come from the symbolic DP of the class's
    /// canonical pattern — [`NetClass`](patlabor_geom::NetClass) carries
    /// the gap vector already mapped into canonical rank space, so this
    /// is the one correct pairing of symbolic rows and concrete gaps.
    /// Serving-side consumers should use this instead of calling
    /// [`SymbolicSolution::evaluate`] with hand-canonicalized gaps.
    ///
    /// # Panics
    ///
    /// Panics if the class's degree differs from the solution's.
    pub fn evaluate_for(&self, class: &patlabor_geom::NetClass) -> (i64, i64) {
        self.evaluate(class.canonical_gaps())
    }

    /// The cost rows flattened in lookup-table storage order: the `W` row
    /// first, then the delay rows in ascending sink-column order, each of
    /// length `2n − 2`.
    ///
    /// This is the payload the v3 table format stores per pooled topology;
    /// evaluating a stored row block against a gap vector with [`dot`]
    /// reproduces [`SymbolicSolution::evaluate`] exactly.
    pub fn flat_rows(&self) -> Vec<u16> {
        let dims = self.w.len();
        let mut rows = Vec::with_capacity(dims * (1 + self.delays.len()));
        rows.extend_from_slice(&self.w);
        for row in &self.delays {
            debug_assert_eq!(row.len(), dims, "ragged delay row");
            rows.extend_from_slice(row);
        }
        rows
    }
}

/// Runs the symbolic Pareto-DW on a pattern, returning every potentially
/// Pareto-optimal topology (the lookup-table entry for this pattern).
///
/// The result is exact in the following sense: for **any** gap lengths
/// `l ≥ 0`, evaluating the returned topologies on the instantiated net and
/// pruning numerically yields the true Pareto frontier of that net.
///
/// # Panics
///
/// Panics if the pattern degree exceeds 10.
pub fn symbolic_frontier(pattern: &Pattern, config: &DwConfig) -> Vec<SymbolicSolution> {
    let n = pattern.n() as usize;
    assert!(n <= 10, "symbolic Pareto-DW supports degree <= 10");
    let dims = 2 * n - 2;
    let nn = n * n;
    let node = |id: usize| RankNode::new((id / n) as u8, (id % n) as u8);
    let id_of = |nd: RankNode| nd.col as usize * n + nd.row as usize;

    // Sinks in ascending column order; the source column is excluded.
    let sinks: Vec<u8> = (0..pattern.n())
        .filter(|&c| c != pattern.source_col())
        .collect();
    let num_sinks = sinks.len();
    let full: u32 = (1u32 << num_sinks) - 1;
    let sink_node: Vec<usize> = sinks.iter().map(|&c| id_of(pattern.pin_node(c))).collect();
    let source_node = id_of(pattern.source_node());

    // Symbolic distance vectors between all node pairs.
    let gap_vec = |a: RankNode, b: RankNode| -> GapVec {
        let mut v = vec![0u16; dims];
        let (c0, c1) = (a.col.min(b.col) as usize, a.col.max(b.col) as usize);
        for x in &mut v[c0..c1] {
            *x += 1;
        }
        let (r0, r1) = (a.row.min(b.row) as usize, a.row.max(b.row) as usize);
        for x in &mut v[n - 1 + r0..n - 1 + r1] {
            *x += 1;
        }
        v
    };

    // Lemma 2 in rank space.
    let pins: Vec<RankNode> = pattern.pin_nodes();
    let alive: Vec<bool> = (0..nn)
        .map(|id| {
            if !config.corner_pruning {
                return true;
            }
            let p = node(id);
            !is_corner(&pins, p)
        })
        .collect();

    let sink_boundary_pos: Vec<Option<usize>> = sinks
        .iter()
        .map(|&c| {
            let nd = pattern.pin_node(c);
            boundary_position(nd.col as usize, nd.row as usize, n)
        })
        .collect();

    let sampler = GapSampler::new(dims);
    let mut states: Vec<Vec<Vec<SymbolicSolution>>> =
        vec![vec![Vec::new(); nn]; full as usize + 1];

    for mask in 1..=full {
        let members: Vec<usize> = (0..num_sinks).filter(|i| mask >> i & 1 == 1).collect();
        let mut pre: Vec<Vec<SymbolicSolution>> = vec![Vec::new(); nn];

        if members.len() == 1 {
            let q = sink_node[members[0]];
            for v in 0..nn {
                if !alive[v] {
                    continue;
                }
                let e = gap_vec(node(v), node(q));
                let edges = if v == q {
                    Vec::new()
                } else {
                    vec![(node(v), node(q))]
                };
                pre[v].push(SymbolicSolution {
                    w: e.clone(),
                    delays: vec![e],
                    edges,
                });
            }
        } else {
            let splits = symbolic_splits(mask, &members, &sink_boundary_pos, config);
            // Lemma 3 in rank space: merge only inside the members' bbox.
            let (mut c_lo, mut c_hi, mut r_lo, mut r_hi) = (u8::MAX, 0u8, u8::MAX, 0u8);
            for &i in &members {
                let p = pattern.pin_node(sinks[i]);
                c_lo = c_lo.min(p.col);
                c_hi = c_hi.max(p.col);
                r_lo = r_lo.min(p.row);
                r_hi = r_hi.max(p.row);
            }
            for v in 0..nn {
                if !alive[v] {
                    continue;
                }
                let p = node(v);
                if config.bbox_shortcut
                    && !(c_lo <= p.col && p.col <= c_hi && r_lo <= p.row && p.row <= r_hi)
                {
                    continue;
                }
                let mut acc: Vec<SymbolicSolution> = Vec::new();
                for &(m1, m2) in &splits {
                    for s1 in &states[m1 as usize][v] {
                        for s2 in &states[m2 as usize][v] {
                            acc.push(combine(s1, s2, m1, m2));
                        }
                    }
                }
                pre[v] = prune(acc, &sampler);
            }
        }

        // Edge growth: single all-pairs pass (triangle inequality holds per
        // gap component, so relayed growth is componentwise dominated).
        let mut fin: Vec<Vec<SymbolicSolution>> = vec![Vec::new(); nn];
        for v in 0..nn {
            if !alive[v] {
                continue;
            }
            let mut acc: Vec<SymbolicSolution> = Vec::new();
            for u in 0..nn {
                if !alive[u] || pre[u].is_empty() {
                    continue;
                }
                let step = gap_vec(node(u), node(v));
                for s in &pre[u] {
                    let mut w = s.w.clone();
                    add(&mut w, &step);
                    let delays = s
                        .delays
                        .iter()
                        .map(|row| {
                            let mut r = row.clone();
                            add(&mut r, &step);
                            r
                        })
                        .collect();
                    let mut edges = s.edges.clone();
                    if u != v {
                        edges.push((node(u), node(v)));
                    }
                    acc.push(SymbolicSolution { w, delays, edges });
                }
            }
            fin[v] = prune(acc, &sampler);
        }
        states[mask as usize] = fin;
    }

    let final_state = std::mem::take(&mut states[full as usize][source_node]);
    prune_exact(final_state, &sampler, &mut DominanceScratch::default())
}

fn is_corner(pins: &[RankNode], p: RankNode) -> bool {
    let mut ll = true;
    let mut lr = true;
    let mut ul = true;
    let mut ur = true;
    for q in pins {
        if q.col <= p.col && q.row <= p.row {
            ll = false;
        }
        if q.col >= p.col && q.row <= p.row {
            lr = false;
        }
        if q.col <= p.col && q.row >= p.row {
            ul = false;
        }
        if q.col >= p.col && q.row >= p.row {
            ur = false;
        }
    }
    ll || lr || ul || ur
}

fn add(target: &mut GapVec, other: &GapVec) {
    for (t, &o) in target.iter_mut().zip(other) {
        *t += o;
    }
}

/// Merges two disjoint-subset solutions rooted at the same node: `W` adds,
/// delay rows interleave by global sink order.
fn combine(s1: &SymbolicSolution, s2: &SymbolicSolution, m1: u32, m2: u32) -> SymbolicSolution {
    let mut w = s1.w.clone();
    add(&mut w, &s2.w);
    let mask = m1 | m2;
    let mut delays = Vec::with_capacity(s1.delays.len() + s2.delays.len());
    let (mut i1, mut i2) = (0usize, 0usize);
    for bit in 0..32 {
        if mask >> bit & 1 == 0 {
            continue;
        }
        if m1 >> bit & 1 == 1 {
            delays.push(s1.delays[i1].clone());
            i1 += 1;
        } else {
            delays.push(s2.delays[i2].clone());
            i2 += 1;
        }
    }
    let mut edges = s1.edges.clone();
    edges.extend_from_slice(&s2.edges);
    SymbolicSolution { w, delays, edges }
}

fn symbolic_splits(
    mask: u32,
    members: &[usize],
    sink_boundary_pos: &[Option<usize>],
    config: &DwConfig,
) -> Vec<(u32, u32)> {
    if config.separator_split {
        let positions: Option<Vec<usize>> =
            members.iter().map(|&i| sink_boundary_pos[i]).collect();
        if let Some(positions) = positions {
            if let Some(local) = consecutive_splits(&positions) {
                return local
                    .into_iter()
                    .map(|(l1, l2)| {
                        (expand_local(l1, members), expand_local(l2, members))
                    })
                    .collect();
            }
        }
    }
    let mut out = Vec::new();
    let mut m1 = (mask - 1) & mask;
    while m1 > 0 {
        let m2 = mask ^ m1;
        if m1 > m2 {
            out.push((m1, m2));
        }
        m1 = (m1 - 1) & mask;
    }
    out
}

fn expand_local(local: u32, members: &[usize]) -> u32 {
    let mut out = 0u32;
    for (i, &m) in members.iter().enumerate() {
        if local >> i & 1 == 1 {
            out |= 1 << m;
        }
    }
    out
}

/// Deterministic sample gap vectors used to prefilter dominance checks.
struct GapSampler {
    samples: Vec<Vec<i64>>,
}

impl GapSampler {
    fn new(dims: usize) -> Self {
        // Duplicate samples cost evaluations without adding filtering
        // power (likely at small `dims`, where the mod-13 pseudo-random
        // vectors collide), so only distinct vectors are kept.
        let mut samples: Vec<Vec<i64>> = Vec::new();
        let push_unique = |samples: &mut Vec<Vec<i64>>, v: Vec<i64>| {
            if !samples.contains(&v) {
                samples.push(v);
            }
        };
        push_unique(&mut samples, vec![1i64; dims]);
        // A few deterministic pseudo-random positive vectors.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..6 {
            let mut v = Vec::with_capacity(dims);
            for _ in 0..dims {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v.push((state % 13 + 1) as i64);
            }
            push_unique(&mut samples, v);
        }
        // Near-degenerate vectors catch zero-gap corner cases.
        for k in 0..dims.min(4) {
            let mut v = vec![1i64; dims];
            v[k] = 100;
            push_unique(&mut samples, v);
        }
        GapSampler { samples }
    }

    /// `false` when some sample proves `a` does **not** dominate `b`.
    fn may_dominate(&self, a: &SymbolicSolution, b: &SymbolicSolution) -> bool {
        for l in &self.samples {
            let (wa, da) = a.evaluate(l);
            let (wb, db) = b.evaluate(l);
            if wa > wb || da > db {
                return false;
            }
        }
        true
    }
}

/// Reusable buffers for [`dominates_with`].
///
/// The exact check builds one row-difference matrix per delay row of `a`
/// and solves an LP over it; both the matrix and the simplex tableau are
/// the same shape across the thousands of checks a pattern generates, so
/// threading one scratch through [`prune_exact`] removes essentially all
/// allocation from the pruning inner loop.
#[derive(Debug, Default)]
pub struct DominanceScratch {
    /// Row-difference matrix `ra − rbₖ` (hoisted out of the per-`ra`
    /// loop; rows are overwritten in place for each `ra`).
    diff: Vec<Vec<i64>>,
    /// Simplex buffers for the strict-feasibility LP.
    lp: SimplexScratch,
}

/// Exact symbolic dominance `a ⪯ b` (Lemma 1).
pub fn dominates(a: &SymbolicSolution, b: &SymbolicSolution) -> bool {
    dominates_with(a, b, &mut DominanceScratch::default())
}

/// [`dominates`] with caller-provided scratch buffers (identical result).
pub fn dominates_with(
    a: &SymbolicSolution,
    b: &SymbolicSolution,
    scratch: &mut DominanceScratch,
) -> bool {
    // Wirelength: componentwise.
    if a.w.iter().zip(&b.w).any(|(&x, &y)| x > y) {
        return false;
    }
    // Delay, cheap sufficient check: every row of a is componentwise below
    // some row of b.
    let covered = a.delays.iter().all(|ra| {
        b.delays
            .iter()
            .any(|rb| ra.iter().zip(rb).all(|(&x, &y)| x <= y))
    });
    if covered {
        return true;
    }
    // Exact: row `ra` may exceed max-of-b-rows somewhere iff the strict
    // system {(ra − rb)·l > 0 ∀ rb} is feasible.
    let m = b.delays.len();
    scratch.diff.truncate(m);
    while scratch.diff.len() < m {
        scratch.diff.push(Vec::new());
    }
    for ra in &a.delays {
        for (row, rb) in scratch.diff.iter_mut().zip(&b.delays) {
            row.clear();
            row.extend(ra.iter().zip(rb).map(|(&x, &y)| x as i64 - y as i64));
        }
        if strictly_feasible_with(&scratch.diff, &mut scratch.lp) {
            return false;
        }
    }
    true
}

/// Prunes with cheap checks (dedupe + componentwise dominance + sampled
/// prefilter); used on every DP state.
fn prune(mut solutions: Vec<SymbolicSolution>, sampler: &GapSampler) -> Vec<SymbolicSolution> {
    // Sort by total wirelength first: a dominator's W is componentwise ≤
    // its victim's, hence its ΣW too, so ascending-ΣW order meets
    // dominators before their victims — dominated candidates die against
    // an early `keep` entry instead of growing the quadratic sweep. The
    // lexicographic tail makes the order total (up to exact duplicates,
    // which the dedup below removes), keeping the survivors
    // deterministic.
    solutions.sort_by(|a, b| {
        let sa: u32 = a.w.iter().map(|&x| x as u32).sum();
        let sb: u32 = b.w.iter().map(|&x| x as u32).sum();
        sa.cmp(&sb)
            .then_with(|| (&a.w, &a.delays).cmp(&(&b.w, &b.delays)))
    });
    solutions.dedup_by(|a, b| a.w == b.w && a.delays == b.delays);

    let mut keep: Vec<SymbolicSolution> = Vec::with_capacity(solutions.len());
    'outer: for s in solutions {
        let mut i = 0;
        while i < keep.len() {
            if cheap_dominates(&keep[i], &s, sampler) {
                continue 'outer;
            }
            if cheap_dominates(&s, &keep[i], sampler) {
                keep.swap_remove(i);
            } else {
                i += 1;
            }
        }
        keep.push(s);
    }
    keep
}

/// Componentwise-only dominance (sound, incomplete, no LP).
fn cheap_dominates(a: &SymbolicSolution, b: &SymbolicSolution, sampler: &GapSampler) -> bool {
    if a.w.iter().zip(&b.w).any(|(&x, &y)| x > y) {
        return false;
    }
    if !sampler.may_dominate(a, b) {
        return false;
    }
    a.delays.iter().all(|ra| {
        b.delays
            .iter()
            .any(|rb| ra.iter().zip(rb).all(|(&x, &y)| x <= y))
    })
}

/// Exact prune with the LP decision procedure; used on the final state.
///
/// `prune` leaves the candidates sorted by total wirelength, so the exact
/// sweep also meets dominators early; `scratch` is threaded through every
/// LP call (see [`DominanceScratch`]).
fn prune_exact(
    solutions: Vec<SymbolicSolution>,
    sampler: &GapSampler,
    scratch: &mut DominanceScratch,
) -> Vec<SymbolicSolution> {
    let solutions = prune(solutions, sampler);
    let mut keep: Vec<SymbolicSolution> = Vec::with_capacity(solutions.len());
    'outer: for s in solutions {
        let mut i = 0;
        while i < keep.len() {
            // Sampled prefilter first; LP only when samples cannot refute.
            if sampler.may_dominate(&keep[i], &s) && dominates_with(&keep[i], &s, scratch) {
                continue 'outer;
            }
            if sampler.may_dominate(&s, &keep[i]) && dominates_with(&s, &keep[i], scratch) {
                keep.swap_remove(i);
            } else {
                i += 1;
            }
        }
        keep.push(s);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric;
    use patlabor_geom::Net;
    use patlabor_pareto::{Cost, ParetoSet};
    use patlabor_tree::extract_from_union;

    fn sol(w: &[u16], delays: &[&[u16]]) -> SymbolicSolution {
        SymbolicSolution {
            w: w.to_vec(),
            delays: delays.iter().map(|d| d.to_vec()).collect(),
            edges: Vec::new(),
        }
    }

    #[test]
    fn gap_sampler_has_no_duplicate_samples() {
        for dims in 1..=10 {
            let s = GapSampler::new(dims);
            assert!(!s.samples.is_empty());
            for (i, v) in s.samples.iter().enumerate() {
                assert!(!s.samples[..i].contains(v), "duplicate at dims={dims}");
            }
        }
    }

    #[test]
    fn evaluate_dots_gaps() {
        let s = sol(&[1, 2], &[&[1, 0], &[0, 3]]);
        assert_eq!(s.evaluate(&[10, 100]), (210, 300));
    }

    /// `evaluate_for` must agree with evaluating the canonical gap vector
    /// directly, for every D4 orientation of an instantiated pattern — the
    /// symbolic rows live in canonical rank space and `NetClass` delivers
    /// gaps in exactly that space.
    #[test]
    fn evaluate_for_netclass_matches_canonical_gap_evaluation() {
        use patlabor_geom::NetClass;
        for pattern in Pattern::enumerate_canonical(4).into_iter().take(8) {
            let sols = symbolic_frontier(&pattern, &DwConfig::default());
            let net = pattern.instantiate(&[3, 5, 2], &[4, 1, 6]);
            let class = NetClass::of(&net).expect("degree 4 classifies");
            assert_eq!(class.key(), pattern.key());
            for s in &sols {
                assert_eq!(s.evaluate_for(&class), s.evaluate(class.canonical_gaps()));
            }
        }
    }

    #[test]
    fn dominance_componentwise_cases() {
        let a = sol(&[1, 1], &[&[1, 0]]);
        let b = sol(&[2, 1], &[&[1, 1]]);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(dominates(&a, &a));
    }

    #[test]
    fn dominance_needs_lp_for_row_mixtures() {
        // a's single row (1,1) vs b's rows (2,0) and (0,2):
        // max(2l₀, 2l₁) ≥ l₀ + l₁ for all l ≥ 0, so a dominates b even
        // though (1,1) is not below either row componentwise.
        let a = sol(&[1, 1], &[&[1, 1]]);
        let b = sol(&[1, 1], &[&[2, 0], &[0, 2]]);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a)); // e.g. l=(1,1): max = 2 ≤ 2 … but
                                     // l=(1,0): b gives 2 > a's 1 — wait,
                                     // b must be ≤ a to dominate: 2 > 1 ✗.
    }

    #[test]
    fn dominance_is_refuted_by_witness_gap() {
        // a better at l=(1,0), b better at l=(0,1) → incomparable.
        let a = sol(&[1, 2], &[&[1, 0]]);
        let b = sol(&[2, 1], &[&[1, 0]]);
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    /// Core exactness test: instantiate each degree-4 pattern with several
    /// gap vectors; the evaluated + pruned symbolic frontier must equal the
    /// numeric Pareto-DW frontier of the instantiated net.
    #[test]
    fn symbolic_matches_numeric_on_degree_4_patterns() {
        let gaps_list: [(&[i64], &[i64]); 3] =
            [(&[3, 5, 2], &[4, 1, 6]), (&[1, 1, 1], &[1, 1, 1]), (&[7, 2, 9], &[3, 8, 2])];
        for pattern in Pattern::enumerate_canonical(4) {
            let sols = symbolic_frontier(&pattern, &DwConfig::default());
            assert!(!sols.is_empty());
            for (h, v) in gaps_list {
                let net = pattern.instantiate(h, v);
                check_against_numeric(&pattern, &sols, &net, h, v);
            }
        }
    }

    #[test]
    fn symbolic_handles_zero_gaps() {
        // Degenerate instantiations (tied coordinates) must still evaluate
        // to the exact frontier.
        let pattern = Pattern::new(vec![2, 0, 1, 3], 1);
        let sols = symbolic_frontier(&pattern, &DwConfig::default());
        let h: &[i64] = &[0, 4, 3];
        let v: &[i64] = &[2, 0, 5];
        let net = pattern.instantiate(h, v);
        check_against_numeric(&pattern, &sols, &net, h, v);
    }

    #[test]
    fn symbolic_pruning_lemmas_preserve_instantiated_frontiers() {
        let pattern = Pattern::new(vec![1, 3, 0, 2], 0);
        let pruned = symbolic_frontier(&pattern, &DwConfig::default());
        let unpruned = symbolic_frontier(&pattern, &DwConfig::unpruned());
        for (h, v) in [(&[2i64, 5, 1], &[3i64, 2, 7]), (&[1, 1, 9], &[9, 1, 1])] {
            let net = pattern.instantiate(h, v);
            let fa = instantiated_frontier(&pruned, &net, h, v);
            let fb = instantiated_frontier(&unpruned, &net, h, v);
            assert_eq!(fa.cost_vec(), fb.cost_vec());
        }
    }

    fn instantiated_frontier(
        sols: &[SymbolicSolution],
        net: &Net,
        h: &[i64],
        v: &[i64],
    ) -> ParetoSet<()> {
        let n = net.degree();
        let mut xs = vec![0i64; n];
        let mut ys = vec![0i64; n];
        for i in 1..n {
            xs[i] = xs[i - 1] + h[i - 1];
            ys[i] = ys[i - 1] + v[i - 1];
        }
        sols.iter()
            .map(|s| {
                let pts: Vec<_> = s
                    .edges
                    .iter()
                    .map(|&(a, b)| {
                        (
                            patlabor_geom::Point::new(xs[a.col as usize], ys[a.row as usize]),
                            patlabor_geom::Point::new(xs[b.col as usize], ys[b.row as usize]),
                        )
                    })
                    .collect();
                let tree = extract_from_union(net, &pts).expect("LUT topology spans the net");
                let (w, d) = tree.objectives();
                Cost::new(w, d)
            })
            .collect()
    }

    fn check_against_numeric(
        pattern: &Pattern,
        sols: &[SymbolicSolution],
        net: &Net,
        h: &[i64],
        v: &[i64],
    ) {
        let expected = numeric::pareto_frontier(net, &DwConfig::default());
        let got = instantiated_frontier(sols, net, h, v);
        assert_eq!(
            got.cost_vec(),
            expected.cost_vec(),
            "pattern {pattern:?} gaps ({h:?}, {v:?})"
        );
    }
}
