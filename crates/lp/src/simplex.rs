//! Two-phase tableau simplex over exact rationals.
//!
//! Sized for the tiny systems that symbolic dominance checking produces
//! (≲ 20 variables, ≲ 20 constraints): reduced costs are recomputed from
//! the tableau every iteration, which is quadratic per pivot but simple
//! and impossible to desynchronize. Bland's anti-cycling rule guarantees
//! termination.

use crate::Rational;

/// The sense of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<Rational>,
    rel: Relation,
    rhs: Rational,
}

/// A linear program in the form
/// `maximize c·x  subject to  Aᵢ·x {≤,=,≥} bᵢ,  x ≥ 0`.
///
/// Build with [`Problem::new`], [`Problem::maximize`] and
/// [`Problem::constrain`], then pass to [`solve`].
#[derive(Debug, Clone)]
pub struct Problem {
    num_vars: usize,
    objective: Vec<Rational>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a program over `num_vars` non-negative variables with the
    /// zero objective.
    pub fn new(num_vars: usize) -> Self {
        Problem {
            num_vars,
            objective: vec![Rational::ZERO; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Sets the maximization objective `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != num_vars`.
    pub fn maximize(&mut self, c: &[Rational]) -> &mut Self {
        assert_eq!(c.len(), self.num_vars, "objective length mismatch");
        self.objective = c.to_vec();
        self
    }

    /// Adds the constraint `coeffs · x rel rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn constrain(&mut self, coeffs: &[Rational], rel: Relation, rhs: Rational) -> &mut Self {
        assert_eq!(coeffs.len(), self.num_vars, "constraint length mismatch");
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
        self
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }
}

/// Result of [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution exists; `point` holds the structural variables.
    Optimal {
        /// Optimal objective value.
        value: Rational,
        /// Optimal assignment of the structural variables.
        point: Vec<Rational>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// Reusable buffers for [`solve_with`].
///
/// The tableau is the dominant allocation of a solve (`m` rows of
/// `num_cols + 1` rationals); callers issuing many small LPs back to back
/// — the symbolic dominance checks do thousands per pattern — keep one
/// scratch alive and amortize every row allocation across calls.
#[derive(Debug, Default)]
pub struct SimplexScratch {
    rows: Vec<Vec<Rational>>,
    basis: Vec<usize>,
    costs: Vec<Rational>,
    allowed: Vec<bool>,
}

struct Tableau<'a> {
    /// `rows × cols` matrix; the last column is the rhs.
    rows: &'a mut Vec<Vec<Rational>>,
    basis: &'a mut Vec<usize>,
    num_structural: usize,
    /// Total variable columns (excludes rhs).
    num_cols: usize,
}

impl Tableau<'_> {
    fn rhs(&self, i: usize) -> Rational {
        self.rows[i][self.num_cols]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let inv = self.rows[row][col].recip();
        for v in self.rows[row].iter_mut() {
            *v = *v * inv;
        }
        for i in 0..self.rows.len() {
            if i == row || self.rows[i][col].is_zero() {
                continue;
            }
            let factor = self.rows[i][col];
            for j in 0..=self.num_cols {
                let delta = factor * self.rows[row][j];
                self.rows[i][j] = self.rows[i][j] - delta;
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex with cost vector `costs` (length `num_cols`), columns
    /// with `allowed[j] == false` never enter. Returns `None` on unbounded.
    fn optimize(&mut self, costs: &[Rational], allowed: &[bool]) -> Option<Rational> {
        loop {
            // Reduced costs r_j = c_j - c_B · column_j (tableau is B⁻¹A).
            let mut entering = None;
            for j in 0..self.num_cols {
                if !allowed[j] || self.basis.contains(&j) {
                    continue;
                }
                let mut r = costs[j];
                for (i, &b) in self.basis.iter().enumerate() {
                    if !costs[b].is_zero() {
                        r = r - costs[b] * self.rows[i][j];
                    }
                }
                if r.is_positive() {
                    entering = Some(j); // Bland: smallest improving index
                    break;
                }
            }
            let Some(col) = entering else {
                // Optimal: objective value = c_B · rhs.
                let mut value = Rational::ZERO;
                for (i, &b) in self.basis.iter().enumerate() {
                    value = value + costs[b] * self.rhs(i);
                }
                return Some(value);
            };
            // Ratio test with Bland tie-breaking on basis index.
            let mut leave: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][col];
                if !a.is_positive() {
                    continue;
                }
                let ratio = self.rhs(i) / a;
                match &leave {
                    Some((li, lr)) => {
                        if ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li]) {
                            leave = Some((i, ratio));
                        }
                    }
                    None => leave = Some((i, ratio)),
                }
            }
            let (row, _) = leave?;
            self.pivot(row, col);
        }
    }
}

/// Solves the linear program with two-phase simplex.
///
/// Exact: the returned `value` and `point` are rationals satisfying the
/// constraints exactly.
///
/// # Example
///
/// ```
/// use patlabor_lp::{solve, LpOutcome, Problem, Rational, Relation};
///
/// // maximize 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2
/// let mut p = Problem::new(2);
/// p.maximize(&[Rational::from(3), Rational::from(2)]);
/// p.constrain(&[Rational::from(1), Rational::from(1)], Relation::Le, Rational::from(4));
/// p.constrain(&[Rational::from(1), Rational::from(0)], Relation::Le, Rational::from(2));
/// let LpOutcome::Optimal { value, .. } = solve(&p) else { panic!() };
/// assert_eq!(value, Rational::from(10)); // x=2, y=2
/// ```
pub fn solve(problem: &Problem) -> LpOutcome {
    solve_with(problem, &mut SimplexScratch::default())
}

/// [`solve`] with caller-provided scratch buffers.
///
/// Identical results; the tableau, basis and cost vectors live in
/// `scratch` and are reused across calls, so a long run of solves stops
/// allocating once the largest problem size has been seen.
pub fn solve_with(problem: &Problem, scratch: &mut SimplexScratch) -> LpOutcome {
    let n = problem.num_vars;
    let m = problem.constraints.len();

    // A constraint with a negative rhs is normalized by flipping its sign
    // while the tableau row is filled (no constraint cloning); this is the
    // relation it effectively contributes.
    let effective_rel = |c: &Constraint| {
        if c.rhs.is_negative() {
            match c.rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            }
        } else {
            c.rel
        }
    };

    // Count auxiliary columns: one slack/surplus per inequality, one
    // artificial per Ge/Eq (after rhs normalization).
    let num_slack = problem
        .constraints
        .iter()
        .filter(|c| effective_rel(c) != Relation::Eq)
        .count();
    let num_artificial = problem
        .constraints
        .iter()
        .filter(|c| effective_rel(c) != Relation::Le)
        .count();
    let artificial_start = n + num_slack;
    let num_cols = n + num_slack + num_artificial;

    scratch.rows.truncate(m);
    while scratch.rows.len() < m {
        scratch.rows.push(Vec::new());
    }
    scratch.basis.clear();
    let mut slack_idx = n;
    let mut art_idx = artificial_start;
    for (c, row) in problem.constraints.iter().zip(scratch.rows.iter_mut()) {
        row.clear();
        row.resize(num_cols + 1, Rational::ZERO);
        let flip = c.rhs.is_negative();
        for (dst, &v) in row[..n].iter_mut().zip(&c.coeffs) {
            *dst = if flip { -v } else { v };
        }
        row[num_cols] = if flip { -c.rhs } else { c.rhs };
        match effective_rel(c) {
            Relation::Le => {
                row[slack_idx] = Rational::ONE;
                scratch.basis.push(slack_idx);
                slack_idx += 1;
            }
            Relation::Ge => {
                row[slack_idx] = -Rational::ONE;
                slack_idx += 1;
                row[art_idx] = Rational::ONE;
                scratch.basis.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                row[art_idx] = Rational::ONE;
                scratch.basis.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut tab = Tableau {
        rows: &mut scratch.rows,
        basis: &mut scratch.basis,
        num_structural: n,
        num_cols,
    };
    let costs = &mut scratch.costs;
    let allowed = &mut scratch.allowed;

    // Phase 1: maximize -(sum of artificials).
    if num_artificial > 0 {
        costs.clear();
        costs.resize(num_cols, Rational::ZERO);
        for c in &mut costs[artificial_start..] {
            *c = -Rational::ONE;
        }
        allowed.clear();
        allowed.resize(num_cols, true);
        let value = tab
            .optimize(costs, allowed)
            .expect("phase 1 is bounded by construction");
        if value.is_negative() {
            return LpOutcome::Infeasible;
        }
        // Drive any remaining basic artificials out of the basis.
        for i in 0..tab.rows.len() {
            if tab.basis[i] >= artificial_start {
                debug_assert!(tab.rhs(i).is_zero(), "feasible but artificial has value");
                if let Some(col) =
                    (0..artificial_start).find(|&j| !tab.rows[i][j].is_zero())
                {
                    tab.pivot(i, col);
                }
                // Otherwise the row is redundant (all-zero over real
                // columns); leaving the artificial basic at value 0 is
                // harmless because artificials are banned in phase 2.
            }
        }
    }

    // Phase 2: original objective, artificial columns banned.
    costs.clear();
    costs.resize(num_cols, Rational::ZERO);
    costs[..n].copy_from_slice(&problem.objective);
    allowed.clear();
    allowed.resize(num_cols, true);
    for a in allowed.iter_mut().skip(artificial_start) {
        *a = false;
    }
    match tab.optimize(costs, allowed) {
        Some(value) => {
            let mut point = vec![Rational::ZERO; tab.num_structural];
            for (i, &b) in tab.basis.iter().enumerate() {
                if b < tab.num_structural {
                    point[b] = tab.rhs(i);
                }
            }
            LpOutcome::Optimal { value, point }
        }
        None => LpOutcome::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    fn check_point(problem: &Problem, point: &[Rational]) {
        for c in &problem.constraints {
            let lhs = c
                .coeffs
                .iter()
                .zip(point)
                .fold(Rational::ZERO, |acc, (&a, &x)| acc + a * x);
            let ok = match c.rel {
                Relation::Le => lhs <= c.rhs,
                Relation::Eq => lhs == c.rhs,
                Relation::Ge => lhs >= c.rhs,
            };
            assert!(ok, "constraint violated: {lhs} vs {}", c.rhs);
        }
        for &x in point {
            assert!(!x.is_negative(), "negative variable");
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6)
        let mut p = Problem::new(2);
        p.maximize(&[r(3), r(5)]);
        p.constrain(&[r(1), r(0)], Relation::Le, r(4));
        p.constrain(&[r(0), r(2)], Relation::Le, r(12));
        p.constrain(&[r(3), r(2)], Relation::Le, r(18));
        let LpOutcome::Optimal { value, point } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(36));
        assert_eq!(point, vec![r(2), r(6)]);
        check_point(&p, &point);
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6 → 14/5 at (8/5, 6/5)
        let mut p = Problem::new(2);
        p.maximize(&[r(1), r(1)]);
        p.constrain(&[r(1), r(2)], Relation::Le, r(4));
        p.constrain(&[r(3), r(1)], Relation::Le, r(6));
        let LpOutcome::Optimal { value, point } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, Rational::new(14, 5));
        assert_eq!(point, vec![Rational::new(8, 5), Rational::new(6, 5)]);
    }

    #[test]
    fn detects_infeasible() {
        // x ≥ 3 and x ≤ 1
        let mut p = Problem::new(1);
        p.maximize(&[r(1)]);
        p.constrain(&[r(1)], Relation::Ge, r(3));
        p.constrain(&[r(1)], Relation::Le, r(1));
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(2);
        p.maximize(&[r(1), r(0)]);
        p.constrain(&[r(0), r(1)], Relation::Le, r(5));
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, x ≤ 2 → (0,3)? y unbounded? y≥0, x≥0.
        // x + y = 3 forces y = 3 - x; objective x + 2(3-x) = 6 - x, max at x=0 → 6.
        let mut p = Problem::new(2);
        p.maximize(&[r(1), r(2)]);
        p.constrain(&[r(1), r(1)], Relation::Eq, r(3));
        p.constrain(&[r(1), r(0)], Relation::Le, r(2));
        let LpOutcome::Optimal { value, point } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(6));
        check_point(&p, &point);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x ≤ -2  ⟺  x ≥ 2; max -x → value -2.
        let mut p = Problem::new(1);
        p.maximize(&[r(-1)]);
        p.constrain(&[r(-1)], Relation::Le, r(-2));
        let LpOutcome::Optimal { value, .. } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(-2));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate instance (multiple ties); Bland must not cycle.
        let mut p = Problem::new(3);
        p.maximize(&[Rational::new(3, 4), r(-150), Rational::new(1, 50)]);
        p.constrain(
            &[Rational::new(1, 4), r(-60), Rational::new(-1, 25)],
            Relation::Le,
            r(0),
        );
        p.constrain(
            &[Rational::new(1, 2), r(-90), Rational::new(-1, 50)],
            Relation::Le,
            r(0),
        );
        p.constrain(&[r(0), r(0), r(1)], Relation::Le, r(1));
        let LpOutcome::Optimal { value, point } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, Rational::new(1, 20));
        check_point(&p, &point);
    }

    #[test]
    fn zero_constraint_problem() {
        let mut p = Problem::new(2);
        p.maximize(&[r(0), r(0)]);
        let LpOutcome::Optimal { value, .. } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(0));
    }

    #[test]
    fn redundant_equalities() {
        let mut p = Problem::new(2);
        p.maximize(&[r(1), r(1)]);
        p.constrain(&[r(1), r(1)], Relation::Eq, r(2));
        p.constrain(&[r(2), r(2)], Relation::Eq, r(4)); // same plane
        let LpOutcome::Optimal { value, point } = solve(&p) else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(2));
        check_point(&p, &point);
    }

    proptest! {
        /// Random bounded LPs: the solver's point must satisfy constraints
        /// and achieve the reported value; the value must weakly dominate a
        /// random sample of feasible points.
        #[test]
        fn prop_optimal_point_is_feasible_and_no_worse_than_samples(
            c0 in -5i64..5, c1 in -5i64..5,
            rows in proptest::collection::vec(
                (0i64..5, 0i64..5, 1i64..20), 1..5),
        ) {
            let mut p = Problem::new(2);
            p.maximize(&[r(c0), r(c1)]);
            // Constraints a·x + b·y ≤ rhs with a,b ≥ 0 keep the region
            // bounded only if a+b > 0 in every row and objective ≤ 0 in
            // unconstrained directions; add a box to be safe.
            for (a, b, rhs) in &rows {
                p.constrain(&[r(*a), r(*b)], Relation::Le, r(*rhs));
            }
            p.constrain(&[r(1), r(0)], Relation::Le, r(50));
            p.constrain(&[r(0), r(1)], Relation::Le, r(50));
            let LpOutcome::Optimal { value, point } = solve(&p) else {
                return Err(TestCaseError::fail("bounded LP must be optimal"));
            };
            check_point(&p, &point);
            let achieved = r(c0) * point[0] + r(c1) * point[1];
            prop_assert_eq!(achieved, value);
            // Sample grid points; any feasible one must not beat the optimum.
            for x in 0..6i64 {
                for y in 0..6i64 {
                    let feasible = rows.iter().all(|(a, b, rhs)| a * x + b * y <= *rhs)
                        && x <= 50 && y <= 50;
                    if feasible {
                        prop_assert!(r(c0 * x + c1 * y) <= value);
                    }
                }
            }
        }
    }
}
