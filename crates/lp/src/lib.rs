//! Exact rational linear programming for symbolic Pareto dominance.
//!
//! The paper prunes lookup-table candidates with an SMT solver (Lemma 1 /
//! Eq. 2): a symbolic solution `(W², D²)` is dominated by `(W¹, D¹)` when
//! for **all** non-negative Hanan gap vectors `l ≥ 0` the first solution is
//! no worse in either objective. That condition lives in the linear
//! fragment of arithmetic, so instead of shipping a foreign SMT solver this
//! crate implements the decision procedure directly:
//!
//! * [`Rational`] — exact `i128` rational arithmetic (no rounding, ever);
//! * [`Problem`] / [`solve`] — a two-phase tableau **simplex** with Bland's
//!   rule (guaranteed termination) over those rationals;
//! * [`cone::strictly_feasible`] — the specific query dominance checking
//!   needs: *does there exist `l ≥ 0` with `Aᵢ·l > 0` for every row?*
//!
//! # Example
//!
//! ```
//! use patlabor_lp::{Problem, Rational, Relation, solve, LpOutcome};
//!
//! // maximize x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6,  x,y ≥ 0
//! let mut p = Problem::new(2);
//! p.maximize(&[Rational::from(1), Rational::from(1)]);
//! p.constrain(&[Rational::from(1), Rational::from(2)], Relation::Le, Rational::from(4));
//! p.constrain(&[Rational::from(3), Rational::from(1)], Relation::Le, Rational::from(6));
//! match solve(&p) {
//!     LpOutcome::Optimal { value, .. } => assert_eq!(value, Rational::new(14, 5)),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

pub mod cone;
mod rational;
mod simplex;

pub use rational::Rational;
pub use simplex::{solve, solve_with, LpOutcome, Problem, Relation, SimplexScratch};
