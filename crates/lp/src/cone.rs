//! Strict feasibility of homogeneous systems — the query behind Lemma 1.
//!
//! Symbolic dominance checking reduces to: *given integer rows
//! `a₁ … aₘ ∈ Zᵏ`, does some `l ≥ 0` satisfy `aᵢ·l > 0` for every `i`?*
//! (If yes, the candidate solution is strictly better somewhere in gap
//! space and must be kept; if no, it can be pruned.)
//!
//! By homogeneity we may normalize `Σ l = 1` and ask for the maximum `t`
//! with `aᵢ·l ≥ t` — the system is strictly feasible iff that optimum is
//! positive. This turns the question into one exact LP.

use crate::{solve_with, LpOutcome, Problem, Rational, Relation, SimplexScratch};

/// Decides whether some `l ≥ 0` satisfies `row · l > 0` for **every** row.
///
/// Rows must all have the same length `k ≥ 1`. An empty row set is
/// vacuously feasible (returns `true`).
///
/// # Panics
///
/// Panics if rows have inconsistent lengths or length zero.
///
/// # Example
///
/// ```
/// use patlabor_lp::cone::strictly_feasible;
///
/// // l₀ > l₁ and l₁ > l₀ cannot hold simultaneously …
/// assert!(!strictly_feasible(&[vec![1, -1], vec![-1, 1]]));
/// // … but a single strict inequality is easy to satisfy.
/// assert!(strictly_feasible(&[vec![1, -1]]));
/// ```
pub fn strictly_feasible(rows: &[Vec<i64>]) -> bool {
    strictly_feasible_with(rows, &mut SimplexScratch::default())
}

/// [`strictly_feasible`] with caller-provided simplex scratch.
///
/// Dominance checking issues these queries in tight loops; threading one
/// [`SimplexScratch`] through them reuses the tableau allocation across
/// every LP call.
pub fn strictly_feasible_with(rows: &[Vec<i64>], scratch: &mut SimplexScratch) -> bool {
    if rows.is_empty() {
        return true;
    }
    let k = rows[0].len();
    assert!(k >= 1, "rows must have at least one column");
    assert!(
        rows.iter().all(|r| r.len() == k),
        "rows must share one length"
    );

    // Fast path: a row that is ≤ 0 everywhere can never be made positive.
    if rows.iter().any(|r| r.iter().all(|&v| v <= 0)) {
        return false;
    }
    // Fast path: if every row has all-nonnegative entries and at least one
    // positive, l = all-ones works.
    if rows.iter().all(|r| r.iter().all(|&v| v >= 0)) {
        return true;
    }

    // Variables: l₀ … l_{k-1}, t  (all ≥ 0).
    // maximize t   s.t.  Σ l = 1,  row·l − t ≥ 0 for every row.
    let mut p = Problem::new(k + 1);
    let mut objective = vec![Rational::ZERO; k + 1];
    objective[k] = Rational::ONE;
    p.maximize(&objective);

    let mut sum = vec![Rational::ONE; k + 1];
    sum[k] = Rational::ZERO;
    p.constrain(&sum, Relation::Eq, Rational::ONE);

    for row in rows {
        let mut coeffs: Vec<Rational> = row.iter().map(|&v| Rational::from(v)).collect();
        coeffs.push(-Rational::ONE);
        p.constrain(&coeffs, Relation::Ge, Rational::ZERO);
    }

    match solve_with(&p, scratch) {
        LpOutcome::Optimal { value, .. } => value.is_positive(),
        // Restricting t ≥ 0 can make the LP infeasible exactly when no
        // l ≥ 0 on the simplex satisfies row·l ≥ 0 for all rows — certainly
        // not strictly feasible then.
        LpOutcome::Infeasible => false,
        // t is bounded by max row entry on the simplex; unbounded cannot
        // happen for well-formed inputs.
        LpOutcome::Unbounded => unreachable!("t is bounded on the simplex"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_row_cases() {
        assert!(strictly_feasible(&[vec![1]]));
        assert!(!strictly_feasible(&[vec![0]]));
        assert!(!strictly_feasible(&[vec![-1]]));
        assert!(strictly_feasible(&[vec![-5, 1]]));
    }

    #[test]
    fn empty_is_vacuously_feasible() {
        assert!(strictly_feasible(&[]));
    }

    #[test]
    fn contradictory_rows() {
        assert!(!strictly_feasible(&[vec![1, -1], vec![-1, 1]]));
        // Sum of the three rows is the zero vector → infeasible.
        assert!(!strictly_feasible(&[
            vec![1, -1, 0],
            vec![0, 1, -1],
            vec![-1, 0, 1],
        ]));
    }

    #[test]
    fn compatible_rows() {
        assert!(strictly_feasible(&[vec![2, -1], vec![-1, 2]])); // l = (1,1)
        assert!(strictly_feasible(&[vec![1, 0], vec![0, 1]]));
    }

    #[test]
    fn zero_row_blocks_feasibility() {
        assert!(!strictly_feasible(&[vec![1, 1], vec![0, 0]]));
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn mismatched_lengths_panic() {
        let _ = strictly_feasible(&[vec![1], vec![1, 2]]);
    }

    /// Brute-force check on a dense grid of candidate `l` vectors.
    fn grid_feasible(rows: &[Vec<i64>], k: usize) -> bool {
        // All l in {0..4}^k (excluding the origin).
        let mut l = vec![0i64; k];
        loop {
            // advance counter
            let mut i = 0;
            loop {
                if i == k {
                    return false;
                }
                l[i] += 1;
                if l[i] <= 4 {
                    break;
                }
                l[i] = 0;
                i += 1;
            }
            if rows
                .iter()
                .all(|r| r.iter().zip(&l).map(|(&a, &x)| a * x).sum::<i64>() > 0)
            {
                return true;
            }
        }
    }

    proptest! {
        /// The LP decision must agree with grid search whenever grid search
        /// finds a witness, and must never contradict an explicit witness.
        #[test]
        fn prop_agrees_with_grid_witnesses(
            rows in proptest::collection::vec(
                proptest::collection::vec(-3i64..4, 3), 1..5),
        ) {
            let lp = strictly_feasible(&rows);
            if grid_feasible(&rows, 3) {
                prop_assert!(lp, "grid found a witness but LP said infeasible");
            }
            // Converse is not exact for a finite grid, but rational
            // witnesses scale: if LP says feasible, solve again and verify
            // by re-deriving a witness through feasibility of each row at
            // the LP optimum. We settle for consistency: infeasible LP ⇒
            // no grid witness.
            if !lp {
                prop_assert!(!grid_feasible(&rows, 3));
            }
        }
    }
}
