//! Exact rational numbers over `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
///
/// The simplex tableaus this crate manipulates start from tiny integer
/// coefficients (Hanan-grid edge multiplicities, 0–9), so `i128` numerators
/// and denominators never come close to overflowing in practice; all
/// arithmetic is nevertheless `checked_*` and panics loudly rather than
/// wrapping if the assumption is ever violated.
///
/// # Example
///
/// ```
/// use patlabor_lp::Rational;
///
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`, or if the reduced value is not representable
    /// (the only such case is a reduced denominator of exactly `2^127`,
    /// e.g. `Rational::new(1, i128::MIN)`).
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        // Reduce in unsigned space: `gcd` can be `2^127` (both arguments
        // `i128::MIN`), which a bare `as i128` cast would wrap negative and
        // silently corrupt the reduction. Signs are reapplied afterwards
        // with checked conversions so every unrepresentable edge panics
        // loudly instead of wrapping.
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        let num_mag = num.unsigned_abs() / g;
        let den_mag = den.unsigned_abs() / g;
        let negative = (num < 0) != (den < 0);
        let den = i128::try_from(den_mag)
            .expect("rational overflow: reduced denominator exceeds i128::MAX");
        let num = if negative {
            // A negative numerator can carry one more magnitude step than
            // a positive one (down to -2^127 = i128::MIN).
            if num_mag == i128::MIN.unsigned_abs() {
                i128::MIN
            } else {
                -i128::try_from(num_mag)
                    .expect("rational overflow: reduced numerator exceeds i128::MAX")
            }
        } else {
            i128::try_from(num_mag)
                .expect("rational overflow: reduced numerator exceeds i128::MAX")
        };
        Rational { num, den }
    }

    /// The numerator (sign-carrying).
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denominator(self) -> i128 {
        self.den
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Lossy conversion for reporting only.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b.max(1);
    }
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn mul_checked(a: i128, b: i128) -> i128 {
    a.checked_mul(b).expect("rational arithmetic overflow")
}

impl Add for Rational {
    type Output = Rational;

    fn add(self, rhs: Rational) -> Rational {
        let num = mul_checked(self.num, rhs.den)
            .checked_add(mul_checked(rhs.num, self.den))
            .expect("rational arithmetic overflow");
        Rational::new(num, mul_checked(self.den, rhs.den))
    }
}

impl Sub for Rational {
    type Output = Rational;

    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;

    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den.unsigned_abs()) as i128;
        Rational::new(
            mul_checked(self.num / g1, rhs.num / g2),
            mul_checked(self.den / g2, rhs.den / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;

    // Division by a rational IS multiplication by its reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;

    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        mul_checked(self.num, other.den).cmp(&mul_checked(other.num, self.den))
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn i128_min_edges_reduce_exactly() {
        // gcd(|MIN|, |MIN|) = 2^127 does not fit in i128; the reduction
        // must still produce the exact value instead of wrapping.
        assert_eq!(Rational::new(i128::MIN, i128::MIN), Rational::ONE);
        assert_eq!(
            Rational::new(i128::MIN, 2),
            Rational::new(i128::MIN / 2, 1)
        );
        assert_eq!(Rational::new(i128::MIN, -2), Rational::new(-(i128::MIN / 2), 1));
        let extreme = Rational::new(i128::MIN, 1);
        assert_eq!(extreme.numerator(), i128::MIN);
        assert_eq!(extreme.denominator(), 1);
        assert_eq!(Rational::new(0, i128::MIN), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "rational overflow")]
    fn unrepresentable_denominator_panics_loudly() {
        // 1 / i128::MIN needs denominator 2^127 > i128::MAX: must panic,
        // not wrap.
        let _ = Rational::new(1, i128::MIN);
    }

    #[test]
    fn arithmetic_examples() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from(2i64));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rational::new(1, 3) > Rational::new(333, 1000));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-3, 7).to_string(), "-3/7");
    }

    fn rat() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in rat(), b in rat(), c in rat()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + Rational::ZERO, a);
            prop_assert_eq!(a * Rational::ONE, a);
            prop_assert_eq!(a - a, Rational::ZERO);
        }

        #[test]
        fn prop_recip_inverts(a in rat()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.recip(), Rational::ONE);
            }
        }

        #[test]
        fn prop_order_total_and_compatible(a in rat(), b in rat(), c in rat()) {
            if a < b {
                prop_assert!(a + c < b + c);
                if c.is_positive() {
                    prop_assert!(a * c < b * c);
                }
            }
        }
    }
}
