//! Routing instances `(r, P)`.

use std::fmt;

use crate::{BoundingBox, Point};

/// A routing net: one source pin followed by one or more sink pins.
///
/// The source is always `pins[0]`, matching the paper's convention
/// `r = p₁`. Duplicate pin *positions* are allowed (real netlists contain
/// them); a net must however contain at least two pins and no duplicate of
/// the source among the sinks is removed automatically — callers that want
/// dedup should do it explicitly before construction.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Point};
///
/// # fn main() -> Result<(), patlabor_geom::InvalidNetError> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(2, 3)])?;
/// assert_eq!(net.sinks().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Net {
    pins: Vec<Point>,
}

/// Error returned when constructing a [`Net`] from fewer than two pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidNetError {
    /// Number of pins that were supplied.
    pub pin_count: usize,
}

impl fmt::Display for InvalidNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a net needs at least two pins (source and one sink), got {}",
            self.pin_count
        )
    }
}

impl std::error::Error for InvalidNetError {}

impl Net {
    /// Creates a net from its pins; `pins[0]` is the source.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNetError`] when fewer than two pins are given.
    pub fn new(pins: Vec<Point>) -> Result<Self, InvalidNetError> {
        if pins.len() < 2 {
            return Err(InvalidNetError {
                pin_count: pins.len(),
            });
        }
        Ok(Net { pins })
    }

    /// The source pin `r`.
    pub fn source(&self) -> Point {
        self.pins[0]
    }

    /// All pins, source first.
    pub fn pins(&self) -> &[Point] {
        &self.pins
    }

    /// Number of pins `n` (the *degree* of the net).
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Iterator over the sink pins `p₂ … pₙ`.
    pub fn sinks(&self) -> impl Iterator<Item = Point> + '_ {
        self.pins[1..].iter().copied()
    }

    /// Bounding box of all pins.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::of_points(self.pins.iter().copied()).expect("net has at least two pins")
    }

    /// Half-perimeter wirelength of the pins — a classic lower bound on the
    /// wirelength of any routing tree for up to three pins and a common
    /// normalization constant.
    pub fn hpwl(&self) -> i64 {
        self.bounding_box().half_perimeter()
    }

    /// Lower bound on the delay of *any* routing tree: the largest `l₁`
    /// distance from the source to a sink (every tree path is at least the
    /// straight rectilinear distance).
    pub fn delay_lower_bound(&self) -> i64 {
        self.sinks()
            .map(|s| self.source().l1(s))
            .max()
            .expect("net has at least one sink")
    }

    /// Returns a copy of the net with every pin transformed by `f`.
    /// The source stays first.
    pub fn map_points<F>(&self, mut f: F) -> Net
    where
        F: FnMut(Point) -> Point,
    {
        Net {
            pins: self.pins.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Returns the same pin set with exact duplicates of earlier pins
    /// removed (keeping first occurrences, so the source always survives).
    ///
    /// Degree-n statistics in the paper are computed on deduplicated nets.
    pub fn dedup_pins(&self) -> Net {
        let mut seen = std::collections::HashSet::new();
        let pins: Vec<Point> = self
            .pins
            .iter()
            .copied()
            .filter(|p| seen.insert(*p))
            .collect();
        // At worst everything collapsed onto the source; keep the net valid
        // by retaining one sink copy in that degenerate case.
        if pins.len() < 2 {
            Net {
                pins: vec![self.pins[0], self.pins[0]],
            }
        } else {
            Net { pins }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_tiny_pin_sets() {
        assert_eq!(Net::new(vec![]).unwrap_err().pin_count, 0);
        assert_eq!(Net::new(vec![Point::new(0, 0)]).unwrap_err().pin_count, 1);
        let msg = Net::new(vec![]).unwrap_err().to_string();
        assert!(msg.contains("at least two pins"));
    }

    #[test]
    fn accessors_follow_paper_convention() {
        let n = net(&[(1, 1), (4, 5), (0, 9)]);
        assert_eq!(n.source(), Point::new(1, 1));
        assert_eq!(n.degree(), 3);
        let sinks: Vec<_> = n.sinks().collect();
        assert_eq!(sinks, vec![Point::new(4, 5), Point::new(0, 9)]);
    }

    #[test]
    fn hpwl_and_delay_lower_bound() {
        let n = net(&[(0, 0), (3, 4), (6, 1)]);
        assert_eq!(n.hpwl(), 6 + 4);
        assert_eq!(n.delay_lower_bound(), 7);
    }

    #[test]
    fn dedup_keeps_first_occurrences() {
        let n = net(&[(0, 0), (3, 4), (3, 4), (0, 0), (1, 1)]);
        let d = n.dedup_pins();
        assert_eq!(
            d.pins(),
            &[Point::new(0, 0), Point::new(3, 4), Point::new(1, 1)]
        );
    }

    #[test]
    fn dedup_degenerate_all_same_point_stays_valid() {
        let n = net(&[(5, 5), (5, 5), (5, 5)]);
        let d = n.dedup_pins();
        assert_eq!(d.degree(), 2);
        assert_eq!(d.source(), Point::new(5, 5));
    }

    #[test]
    fn map_points_preserves_order() {
        let n = net(&[(0, 0), (1, 2)]);
        let m = n.map_points(|p| Point::new(p.y, p.x));
        assert_eq!(m.source(), Point::new(0, 0));
        assert_eq!(m.pins()[1], Point::new(2, 1));
    }
}
