//! Rank-space patterns of nets (paper §V-A).
//!
//! The Pareto structure of a net on its Hanan grid depends only on the
//! *relative order* of the pin coordinates and on which pin is the source —
//! the concrete gap lengths `l₁ … l₂ₙ₋₂` only enter when a stored topology
//! is evaluated. A [`Pattern`] captures exactly that order information:
//! pin `c` (in x-rank order) sits at rank node `(c, yperm[c])` and one column
//! holds the source. There are `n! · n` patterns of degree `n`, reduced by
//! the [`Transform`] symmetry group before table generation.

use crate::{HananGrid, Net, Transform, ALL_TRANSFORMS};

/// A node of the `n × n` rank grid of a [`Pattern`].
///
/// Unlike [`crate::GridNode`] this is deliberately a separate type: rank
/// nodes live in pattern space (always `n` columns and rows, `u8` indices)
/// while grid nodes live on a concrete net's Hanan grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RankNode {
    /// Column rank, `0 ≤ col < n`.
    pub col: u8,
    /// Row rank, `0 ≤ row < n`.
    pub row: u8,
}

impl RankNode {
    /// Creates a rank node.
    pub const fn new(col: u8, row: u8) -> Self {
        RankNode { col, row }
    }
}

/// Compact identifier of a pattern, usable as a lookup-table index.
///
/// Encodes `(n, source column, Lehmer code of the y-permutation)` into a
/// `u64`; patterns of the same degree are densely comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PatternKey(u64);

impl PatternKey {
    /// The raw encoded value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// The rank-space pattern of a degree-`n` net: a y-rank permutation plus the
/// source column.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Pattern, Point};
///
/// # fn main() -> Result<(), patlabor_geom::InvalidNetError> {
/// let net = Net::new(vec![Point::new(9, 1), Point::new(0, 5), Point::new(4, 2)])?;
/// let (pattern, cols) = Pattern::from_net(&net);
/// assert_eq!(pattern.n(), 3);
/// // x-order is pin1 (x=0), pin2 (x=4), pin0 (x=9): the source is column 2.
/// assert_eq!(pattern.source_col(), 2);
/// assert_eq!(cols, vec![1, 2, 0]); // pin index living in each column
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pattern {
    n: u8,
    /// `yperm[c]` = row rank of the pin in column `c`.
    yperm: Vec<u8>,
    /// Column rank of the source pin.
    source: u8,
}

impl Pattern {
    /// Creates a pattern from its y-permutation and source column.
    ///
    /// # Panics
    ///
    /// Panics if `yperm` is not a permutation of `0..n` or `source` is out
    /// of range (patterns are internal artifacts; malformed ones are bugs).
    pub fn new(yperm: Vec<u8>, source: u8) -> Self {
        let n = yperm.len();
        assert!((2..=16).contains(&n), "pattern degree out of range: {n}");
        assert!((source as usize) < n, "source column out of range");
        let mut seen = vec![false; n];
        for &r in &yperm {
            assert!((r as usize) < n && !seen[r as usize], "yperm not a permutation");
            seen[r as usize] = true;
        }
        Pattern {
            n: n as u8,
            yperm,
            source,
        }
    }

    /// Extracts the pattern of a net together with the pin index occupying
    /// each column (`cols[c]` = original pin index).
    pub fn from_net(net: &Net) -> (Pattern, Vec<usize>) {
        let grid = HananGrid::new(net);
        Pattern::from_grid(&grid)
    }

    /// Same as [`Pattern::from_net`] when the Hanan grid is already built.
    pub fn from_grid(grid: &HananGrid) -> (Pattern, Vec<usize>) {
        let n = grid.size();
        let mut yperm = vec![0u8; n];
        let mut cols = vec![0usize; n];
        for (pin, node) in grid.pin_nodes().iter().enumerate() {
            yperm[node.col as usize] = node.row as u8;
            cols[node.col as usize] = pin;
        }
        let source = grid.pin_node(0).col as u8;
        (Pattern::new(yperm, source), cols)
    }

    /// Degree `n` of the pattern.
    pub fn n(&self) -> u8 {
        self.n
    }

    /// Column rank of the source pin.
    pub fn source_col(&self) -> u8 {
        self.source
    }

    /// The y-rank permutation (`yperm[c]` = row of the pin in column `c`).
    pub fn yperm(&self) -> &[u8] {
        &self.yperm
    }

    /// Rank node of the pin in column `c`.
    pub fn pin_node(&self, c: u8) -> RankNode {
        RankNode::new(c, self.yperm[c as usize])
    }

    /// Rank node of the source pin.
    pub fn source_node(&self) -> RankNode {
        self.pin_node(self.source)
    }

    /// All pin rank nodes in column order.
    pub fn pin_nodes(&self) -> Vec<RankNode> {
        (0..self.n).map(|c| self.pin_node(c)).collect()
    }

    /// Dense identifier of the pattern.
    pub fn key(&self) -> PatternKey {
        let lehmer = lehmer_code(&self.yperm);
        PatternKey(((self.n as u64) << 40) | ((self.source as u64) << 32) | lehmer)
    }

    /// The image of the pattern under a symmetry transform.
    pub fn transformed(&self, t: Transform) -> Pattern {
        let n = self.n;
        let mut yperm = vec![0u8; n as usize];
        for c in 0..n {
            let img = t.apply(self.pin_node(c), n);
            yperm[img.col as usize] = img.row;
        }
        let source = t.apply(self.source_node(), n).col;
        Pattern::new(yperm, source)
    }

    /// `self.transformed(t).key()` without building the intermediate
    /// pattern. Classification computes eight of these per net, so the
    /// transformed permutation lives on the stack (degree is capped at
    /// 16 by the `u8`-rank machinery).
    pub fn transformed_key(&self, t: Transform) -> PatternKey {
        let n = self.n;
        let mut yperm = [0u8; 16];
        for c in 0..n {
            let img = t.apply(self.pin_node(c), n);
            yperm[img.col as usize] = img.row;
        }
        let source = t.apply(self.source_node(), n).col;
        let lehmer = lehmer_code(&yperm[..n as usize]);
        PatternKey(((n as u64) << 40) | ((source as u64) << 32) | lehmer)
    }

    /// The canonical representative of this pattern's symmetry orbit and
    /// the transform `t` with `canonical = self.transformed(t)`.
    ///
    /// The representative is the orbit element with the smallest
    /// [`PatternKey`]; all eight group elements are tried.
    pub fn canonical(&self) -> (Pattern, Transform) {
        let mut best: Option<(Pattern, Transform)> = None;
        for t in ALL_TRANSFORMS {
            let img = self.transformed(t);
            match &best {
                Some((b, _)) if b.key() <= img.key() => {}
                _ => best = Some((img, t)),
            }
        }
        best.expect("transform set is non-empty")
    }

    /// Whether this pattern is its own canonical representative.
    pub fn is_canonical(&self) -> bool {
        self.canonical().0.key() == self.key()
    }

    /// Materializes the pattern into a concrete [`Net`] with the given gap
    /// lengths (`h_gaps`/`v_gaps` of length `n − 1`, entries ≥ 0).
    ///
    /// Column `c` gets `x = Σ h_gaps[..c]`; row `r` gets
    /// `y = Σ v_gaps[..r]`. The source pin comes first; the remaining pins
    /// follow in column order.
    ///
    /// # Panics
    ///
    /// Panics if a gap vector has the wrong length or a negative entry.
    pub fn instantiate(&self, h_gaps: &[i64], v_gaps: &[i64]) -> Net {
        let n = self.n as usize;
        assert_eq!(h_gaps.len(), n - 1, "need n-1 horizontal gaps");
        assert_eq!(v_gaps.len(), n - 1, "need n-1 vertical gaps");
        assert!(
            h_gaps.iter().chain(v_gaps).all(|&g| g >= 0),
            "gap lengths must be non-negative"
        );
        let mut xs = vec![0i64; n];
        let mut ys = vec![0i64; n];
        for i in 1..n {
            xs[i] = xs[i - 1] + h_gaps[i - 1];
            ys[i] = ys[i - 1] + v_gaps[i - 1];
        }
        let coord = |c: u8| crate::Point::new(xs[c as usize], ys[self.yperm[c as usize] as usize]);
        let mut pins = vec![coord(self.source)];
        for c in 0..self.n {
            if c != self.source {
                pins.push(coord(c));
            }
        }
        Net::new(pins).expect("patterns have degree >= 2")
    }

    /// Enumerates every pattern of degree `n` (`n! · n` of them).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 12` (the enumeration is factorial; larger
    /// degrees are never tabulated).
    pub fn enumerate_all(n: u8) -> Vec<Pattern> {
        assert!((2..=12).contains(&n), "pattern enumeration degree out of range: {n}");
        let mut out = Vec::new();
        let mut perm: Vec<u8> = (0..n).collect();
        loop {
            for source in 0..n {
                out.push(Pattern::new(perm.clone(), source));
            }
            if !next_permutation(&mut perm) {
                break;
            }
        }
        out
    }

    /// Enumerates only the canonical orbit representatives of degree `n` —
    /// the `#Index` column of the paper's Table II.
    pub fn enumerate_canonical(n: u8) -> Vec<Pattern> {
        Pattern::enumerate_all(n)
            .into_iter()
            .filter(Pattern::is_canonical)
            .collect()
    }
}

/// Lehmer code (factorial-base rank) of a permutation of `0..n`.
fn lehmer_code(perm: &[u8]) -> u64 {
    let n = perm.len();
    let mut code = 0u64;
    let mut factorial = 1u64;
    // Horner-style accumulation from the right.
    for i in (0..n).rev() {
        let smaller_right = perm[i + 1..].iter().filter(|&&v| v < perm[i]).count() as u64;
        code += smaller_right * factorial;
        factorial *= (n - i) as u64;
    }
    code
}

/// In-place next lexicographic permutation; returns `false` after the last.
fn next_permutation(perm: &mut [u8]) -> bool {
    if perm.len() < 2 {
        return false;
    }
    let mut i = perm.len() - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = perm.len() - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Net, Point};

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn from_net_assigns_ranks() {
        let (p, cols) = Pattern::from_net(&net(&[(9, 1), (0, 5), (4, 2)]));
        // x order: pin1(0), pin2(4), pin0(9); y order: pin0(1), pin2(2), pin1(5)
        assert_eq!(p.yperm(), &[2, 1, 0]);
        assert_eq!(p.source_col(), 2);
        assert_eq!(cols, vec![1, 2, 0]);
    }

    #[test]
    fn lehmer_code_examples() {
        assert_eq!(lehmer_code(&[0, 1, 2]), 0);
        assert_eq!(lehmer_code(&[2, 1, 0]), 5);
        assert_eq!(lehmer_code(&[0, 2, 1]), 1);
        assert_eq!(lehmer_code(&[1, 0, 2]), 2);
    }

    #[test]
    fn keys_are_unique_per_degree() {
        for n in 2..=5u8 {
            let all = Pattern::enumerate_all(n);
            let keys: std::collections::HashSet<_> = all.iter().map(|p| p.key()).collect();
            assert_eq!(keys.len(), all.len(), "degree {n}");
        }
    }

    #[test]
    fn enumerate_all_counts_are_n_factorial_times_n() {
        assert_eq!(Pattern::enumerate_all(2).len(), 2 * 2);
        assert_eq!(Pattern::enumerate_all(3).len(), 6 * 3);
        assert_eq!(Pattern::enumerate_all(4).len(), 24 * 4);
        assert_eq!(Pattern::enumerate_all(5).len(), 120 * 5);
    }

    #[test]
    fn canonical_is_idempotent_and_orbit_consistent() {
        for p in Pattern::enumerate_all(4) {
            let (canon, t) = p.canonical();
            assert_eq!(p.transformed(t).key(), canon.key());
            assert!(canon.is_canonical());
            // Every orbit member canonicalizes to the same representative.
            for t2 in ALL_TRANSFORMS {
                let q = p.transformed(t2);
                assert_eq!(q.canonical().0.key(), canon.key());
            }
        }
    }

    #[test]
    fn transform_roundtrip_restores_pattern() {
        for p in Pattern::enumerate_all(4) {
            for t in ALL_TRANSFORMS {
                let back = p.transformed(t).transformed(t.inverse());
                assert_eq!(back, p);
            }
        }
    }

    #[test]
    fn canonical_counts_are_orbit_counts() {
        // Full-D4 orbit counts. The paper's Table II reports #Index = 24 /
        // 220 / 1008 for degrees 4/5/6 under its (weaker) symmetry
        // reduction; full-orbit canonicalization stores strictly fewer
        // patterns: 16 / 89 / 579. Orbit counts are bounded below by
        // |patterns| / 8.
        assert_eq!(Pattern::enumerate_canonical(4).len(), 16);
        assert_eq!(Pattern::enumerate_canonical(5).len(), 89);
        assert_eq!(Pattern::enumerate_canonical(6).len(), 579);
        for n in 4..=6u8 {
            let all = Pattern::enumerate_all(n).len();
            let canon = Pattern::enumerate_canonical(n).len();
            assert!(canon >= all / 8 && canon <= all / 4, "degree {n}");
        }
    }

    #[test]
    fn degenerate_ties_get_deterministic_pattern() {
        // Two pins share x; ranks are broken by pin order so the pattern is
        // well defined and stable.
        let (p1, _) = Pattern::from_net(&net(&[(0, 0), (0, 4), (3, 2)]));
        let (p2, _) = Pattern::from_net(&net(&[(0, 0), (0, 4), (3, 2)]));
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn new_rejects_non_permutation() {
        let _ = Pattern::new(vec![0, 0, 1], 0);
    }

    #[test]
    fn instantiate_roundtrips_through_from_net() {
        for p in Pattern::enumerate_all(4) {
            let net = p.instantiate(&[3, 1, 4], &[2, 7, 5]);
            let (q, _) = Pattern::from_net(&net);
            assert_eq!(q, p, "instantiate/from_net mismatch");
        }
    }

    #[test]
    fn instantiate_places_source_first() {
        let p = Pattern::new(vec![1, 0, 2], 2);
        let net = p.instantiate(&[2, 3], &[4, 5]);
        // Source is column 2, row 2 → (2+3, 4+5).
        assert_eq!(net.source(), crate::Point::new(5, 9));
        assert_eq!(net.degree(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn instantiate_rejects_negative_gaps() {
        let p = Pattern::new(vec![0, 1], 0);
        let _ = p.instantiate(&[-1], &[1]);
    }
}
