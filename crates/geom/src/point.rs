//! Integer points in the rectilinear plane.

use std::fmt;

/// A point in the rectilinear plane `(Z², ‖·‖₁)`.
///
/// Coordinates are `i64`; all distances computed from points therefore fit in
/// `i64` for any realistic routing instance (VLSI coordinates are bounded by
/// a few billions of database units).
///
/// # Example
///
/// ```
/// use patlabor_geom::Point;
///
/// let a = Point::new(1, 5);
/// let b = Point::new(4, 1);
/// assert_eq!(a.l1(b), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i64,
    /// Vertical coordinate.
    pub y: i64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Rectilinear (`l₁`) distance to `other`.
    ///
    /// ```
    /// use patlabor_geom::Point;
    /// assert_eq!(Point::new(0, 0).l1(Point::new(-2, 3)), 5);
    /// ```
    #[inline]
    pub fn l1(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise minimum (lower-left corner of the bounding box of the
    /// two points).
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum (upper-right corner of the bounding box of the
    /// two points).
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Swaps the two coordinates (reflection across the main diagonal).
    #[inline]
    pub fn transposed(self) -> Point {
        Point::new(self.y, self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// Rectilinear (`l₁`) distance between two points.
///
/// Free-function form of [`Point::l1`], convenient in iterator chains.
///
/// ```
/// use patlabor_geom::{l1, Point};
/// assert_eq!(l1(Point::new(3, 3), Point::new(5, 0)), 5);
/// ```
#[inline]
pub fn l1(a: Point, b: Point) -> i64 {
    a.l1(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn l1_is_symmetric_on_examples() {
        let a = Point::new(-3, 9);
        let b = Point::new(12, -1);
        assert_eq!(a.l1(b), b.l1(a));
        assert_eq!(a.l1(b), 25);
    }

    #[test]
    fn l1_zero_iff_equal() {
        let a = Point::new(7, 7);
        assert_eq!(a.l1(a), 0);
        assert_ne!(a.l1(Point::new(7, 8)), 0);
    }

    #[test]
    fn min_max_bound_the_points() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(4, 9));
    }

    #[test]
    fn transpose_is_involutive() {
        let p = Point::new(3, -8);
        assert_eq!(p.transposed().transposed(), p);
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (2, 3).into();
        assert_eq!(p.to_string(), "(2, 3)");
    }

    fn coord() -> impl Strategy<Value = i64> {
        -1_000_000i64..1_000_000
    }

    proptest! {
        #[test]
        fn prop_l1_triangle_inequality(ax in coord(), ay in coord(),
                                       bx in coord(), by in coord(),
                                       cx in coord(), cy in coord()) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.l1(c) <= a.l1(b) + b.l1(c));
        }

        #[test]
        fn prop_l1_symmetry(ax in coord(), ay in coord(),
                            bx in coord(), by in coord()) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert_eq!(a.l1(b), b.l1(a));
        }

        #[test]
        fn prop_l1_invariant_under_transpose(ax in coord(), ay in coord(),
                                             bx in coord(), by in coord()) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert_eq!(a.l1(b), a.transposed().l1(b.transposed()));
        }
    }
}
