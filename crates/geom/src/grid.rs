//! Hanan grids (paper §II, Fig. 3).
//!
//! The Hanan grid of a pin set is the grid induced by drawing a horizontal
//! and a vertical line through every pin. It is folklore that an optimal
//! RSMT exists on the Hanan grid (Hanan, 1966), and the paper points out the
//! same holds for Pareto-optimal timing-driven routing trees, so every exact
//! algorithm in this workspace searches on it.

use crate::{Net, Point};

/// A node of a [`HananGrid`], addressed by column and row index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridNode {
    /// Column index into the sorted x coordinates.
    pub col: u16,
    /// Row index into the sorted y coordinates.
    pub row: u16,
}

impl GridNode {
    /// Creates a node from its column and row indices.
    pub const fn new(col: u16, row: u16) -> Self {
        GridNode { col, row }
    }
}

/// An edge of a routing tree drawn on a Hanan grid.
///
/// Endpoints are arbitrary grid nodes (not necessarily adjacent); the edge is
/// realized as an L-shaped (or straight) rectilinear connection of length
/// `‖a − b‖₁`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridEdge {
    /// One endpoint.
    pub a: GridNode,
    /// The other endpoint.
    pub b: GridNode,
}

impl GridEdge {
    /// Creates an edge; endpoints are stored in sorted order so that equal
    /// edges compare equal regardless of construction order.
    pub fn new(a: GridNode, b: GridNode) -> Self {
        if a <= b {
            GridEdge { a, b }
        } else {
            GridEdge { a: b, b: a }
        }
    }
}

/// The Hanan grid of a net: the cross product of the sorted pin x and y
/// coordinates.
///
/// Duplicate pin coordinates are kept as **distinct zero-width columns/rows**
/// (the grid always has exactly `n` columns and `n` rows for a degree-`n`
/// net). This keeps the rank-space *pattern* of a net independent of
/// coordinate ties, which is what the lookup-table machinery requires: a tie
/// simply makes the corresponding gap length `lᵢ = 0`, and any tree on the
/// generic grid evaluates to the same objectives on the degenerate one.
///
/// # Example
///
/// ```
/// use patlabor_geom::{HananGrid, Net, Point};
///
/// # fn main() -> Result<(), patlabor_geom::InvalidNetError> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(5, 3), Point::new(2, 8)])?;
/// let grid = HananGrid::new(&net);
/// assert_eq!(grid.size(), 3);
/// assert_eq!(grid.h_gaps(), &[2, 3]); // 0→2→5
/// assert_eq!(grid.v_gaps(), &[3, 5]); // 0→3→8
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HananGrid {
    xs: Vec<i64>,
    ys: Vec<i64>,
    /// For each pin of the originating net, its grid node.
    pin_nodes: Vec<GridNode>,
}

impl HananGrid {
    /// Builds the Hanan grid of `net`.
    ///
    /// Ties among pin coordinates are ranked by original pin order, so the
    /// mapping from pins to grid nodes is deterministic.
    pub fn new(net: &Net) -> Self {
        let n = net.degree();
        let mut x_order: Vec<usize> = (0..n).collect();
        x_order.sort_by_key(|&i| (net.pins()[i].x, i));
        let mut y_order: Vec<usize> = (0..n).collect();
        y_order.sort_by_key(|&i| (net.pins()[i].y, i));

        let xs: Vec<i64> = x_order.iter().map(|&i| net.pins()[i].x).collect();
        let ys: Vec<i64> = y_order.iter().map(|&i| net.pins()[i].y).collect();

        let mut pin_nodes = vec![GridNode::new(0, 0); n];
        for (rank, &pin) in x_order.iter().enumerate() {
            pin_nodes[pin].col = rank as u16;
        }
        for (rank, &pin) in y_order.iter().enumerate() {
            pin_nodes[pin].row = rank as u16;
        }
        HananGrid { xs, ys, pin_nodes }
    }

    /// Number of columns (= rows = degree of the net).
    pub fn size(&self) -> usize {
        self.xs.len()
    }

    /// Total number of grid nodes (`size²`).
    pub fn node_count(&self) -> usize {
        self.size() * self.size()
    }

    /// Sorted x coordinates (one per column, duplicates preserved).
    pub fn xs(&self) -> &[i64] {
        &self.xs
    }

    /// Sorted y coordinates (one per row, duplicates preserved).
    pub fn ys(&self) -> &[i64] {
        &self.ys
    }

    /// Horizontal gap lengths `l₁ … lₙ₋₁` (paper notation): the widths of
    /// consecutive columns.
    pub fn h_gaps(&self) -> Vec<i64> {
        self.xs.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Vertical gap lengths `lₙ … l₂ₙ₋₂`: the heights of consecutive rows.
    pub fn v_gaps(&self) -> Vec<i64> {
        self.ys.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// All `2n − 2` gap lengths, horizontal first — the vector the symbolic
    /// lookup-table solutions are evaluated against.
    pub fn gap_vector(&self) -> Vec<i64> {
        let mut g = self.h_gaps();
        g.extend(self.v_gaps());
        g
    }

    /// The grid node a pin was mapped to (`pin` indexes the originating
    /// net's pin list; the source is pin 0).
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn pin_node(&self, pin: usize) -> GridNode {
        self.pin_nodes[pin]
    }

    /// All pin nodes, in pin order (source first).
    pub fn pin_nodes(&self) -> &[GridNode] {
        &self.pin_nodes
    }

    /// The plane coordinates of a grid node.
    ///
    /// # Panics
    ///
    /// Panics if the node indices are out of range.
    pub fn point(&self, node: GridNode) -> Point {
        Point::new(self.xs[node.col as usize], self.ys[node.row as usize])
    }

    /// Dense index of a node (`col · size + row`), usable as a `Vec` index.
    pub fn node_id(&self, node: GridNode) -> usize {
        node.col as usize * self.size() + node.row as usize
    }

    /// Inverse of [`HananGrid::node_id`].
    pub fn node_from_id(&self, id: usize) -> GridNode {
        GridNode::new((id / self.size()) as u16, (id % self.size()) as u16)
    }

    /// Iterator over every grid node.
    pub fn nodes(&self) -> impl Iterator<Item = GridNode> + '_ {
        let n = self.size() as u16;
        (0..n).flat_map(move |c| (0..n).map(move |r| GridNode::new(c, r)))
    }

    /// Rectilinear distance between two grid nodes in plane coordinates.
    pub fn distance(&self, a: GridNode, b: GridNode) -> i64 {
        self.point(a).l1(self.point(b))
    }

    /// Length of an edge in plane coordinates.
    pub fn edge_len(&self, e: GridEdge) -> i64 {
        self.distance(e.a, e.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Net;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn grid_of_three_pins() {
        let g = HananGrid::new(&net(&[(0, 0), (5, 3), (2, 8)]));
        assert_eq!(g.xs(), &[0, 2, 5]);
        assert_eq!(g.ys(), &[0, 3, 8]);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.pin_node(0), GridNode::new(0, 0));
        assert_eq!(g.pin_node(1), GridNode::new(2, 1));
        assert_eq!(g.pin_node(2), GridNode::new(1, 2));
    }

    #[test]
    fn duplicate_coordinates_become_zero_gaps() {
        let g = HananGrid::new(&net(&[(0, 0), (0, 4), (3, 4)]));
        assert_eq!(g.size(), 3);
        assert_eq!(g.h_gaps(), &[0, 3]);
        assert_eq!(g.v_gaps(), &[4, 0]);
        // Tied pins get distinct ranks in pin order.
        assert_eq!(g.pin_node(0).col, 0);
        assert_eq!(g.pin_node(1).col, 1);
    }

    #[test]
    fn gap_vector_concatenates_h_then_v() {
        let g = HananGrid::new(&net(&[(0, 0), (5, 3), (2, 8)]));
        assert_eq!(g.gap_vector(), vec![2, 3, 3, 5]);
    }

    #[test]
    fn node_id_roundtrip_and_distance() {
        let g = HananGrid::new(&net(&[(0, 0), (5, 3), (2, 8)]));
        for node in g.nodes() {
            assert_eq!(g.node_from_id(g.node_id(node)), node);
        }
        let a = GridNode::new(0, 0);
        let b = GridNode::new(2, 2);
        assert_eq!(g.distance(a, b), 5 + 8);
    }

    #[test]
    fn edge_is_order_insensitive() {
        let a = GridNode::new(1, 0);
        let b = GridNode::new(0, 2);
        assert_eq!(GridEdge::new(a, b), GridEdge::new(b, a));
    }

    #[test]
    fn nodes_iterator_covers_grid_exactly_once() {
        let g = HananGrid::new(&net(&[(0, 0), (5, 3), (2, 8), (9, 9)]));
        let all: std::collections::HashSet<_> = g.nodes().collect();
        assert_eq!(all.len(), g.node_count());
    }
}
