//! The dihedral symmetry group of Hanan-grid patterns.
//!
//! Two patterns that differ only by mirror or rotation transformations have
//! identical Pareto structure, so the lookup tables store only one canonical
//! representative per orbit (paper §V-A, "breaking symmetries"). The group
//! is the dihedral group of the square, `D₄`, of order 8.

use crate::pattern::RankNode;

/// An element of the pattern symmetry group `D₄`.
///
/// Every element is written canonically as *transpose first, then axis
/// flips*: `T(p) = flip(swap(p))`. All eight combinations of the three
/// booleans enumerate the whole group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transform {
    /// Swap x and y first (reflection across the main diagonal).
    pub swap: bool,
    /// Then mirror columns (`c ↦ n−1−c`).
    pub flip_x: bool,
    /// Then mirror rows (`r ↦ n−1−r`).
    pub flip_y: bool,
}

/// All eight elements of the group, identity first.
pub const ALL_TRANSFORMS: [Transform; 8] = [
    Transform { swap: false, flip_x: false, flip_y: false },
    Transform { swap: false, flip_x: true, flip_y: false },
    Transform { swap: false, flip_x: false, flip_y: true },
    Transform { swap: false, flip_x: true, flip_y: true },
    Transform { swap: true, flip_x: false, flip_y: false },
    Transform { swap: true, flip_x: true, flip_y: false },
    Transform { swap: true, flip_x: false, flip_y: true },
    Transform { swap: true, flip_x: true, flip_y: true },
];

impl Transform {
    /// The identity transform.
    pub const IDENTITY: Transform = ALL_TRANSFORMS[0];

    /// Applies the transform to a rank-grid node of an `n × n` pattern grid.
    pub fn apply(self, node: RankNode, n: u8) -> RankNode {
        let (mut c, mut r) = (node.col, node.row);
        if self.swap {
            std::mem::swap(&mut c, &mut r);
        }
        if self.flip_x {
            c = n - 1 - c;
        }
        if self.flip_y {
            r = n - 1 - r;
        }
        RankNode { col: c, row: r }
    }

    /// The inverse transform.
    ///
    /// Since `T = F ∘ S` (flips after swap) and both factors are
    /// involutions, `T⁻¹ = S ∘ F`, which re-expressed in `F' ∘ S` form
    /// exchanges the two flip flags when `swap` is set.
    pub fn inverse(self) -> Transform {
        if self.swap {
            Transform {
                swap: true,
                flip_x: self.flip_y,
                flip_y: self.flip_x,
            }
        } else {
            self
        }
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`).
    ///
    /// Derivation: writing `S` for the swap and `F(a, b)` for the flips,
    /// every element is `F ∘ S`, and `S ∘ F(a, b) = F(b, a) ∘ S`. Hence
    /// `F₁S₁ F₂S₂ = F₁ F₂′ S₁S₂` where `F₂′` exchanges its flags when `S₁`
    /// is the swap.
    pub fn compose(self, other: Transform) -> Transform {
        let (fx2, fy2) = if self.swap {
            (other.flip_y, other.flip_x)
        } else {
            (other.flip_x, other.flip_y)
        };
        Transform {
            swap: self.swap ^ other.swap,
            flip_x: self.flip_x ^ fx2,
            flip_y: self.flip_y ^ fy2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u8) -> Vec<RankNode> {
        (0..n)
            .flat_map(|c| (0..n).map(move |r| RankNode { col: c, row: r }))
            .collect()
    }

    #[test]
    fn identity_fixes_everything() {
        for p in nodes(5) {
            assert_eq!(Transform::IDENTITY.apply(p, 5), p);
        }
    }

    #[test]
    fn all_transforms_are_distinct_permutations() {
        let pts = nodes(3);
        let mut images = std::collections::HashSet::new();
        for t in ALL_TRANSFORMS {
            let img: Vec<RankNode> = pts.iter().map(|&p| t.apply(p, 3)).collect();
            let set: std::collections::HashSet<_> = img.iter().collect();
            assert_eq!(set.len(), pts.len(), "{t:?} is not a bijection");
            assert!(images.insert(img), "{t:?} duplicates another element");
        }
        assert_eq!(images.len(), 8);
    }

    #[test]
    fn inverse_undoes_apply() {
        for t in ALL_TRANSFORMS {
            let inv = t.inverse();
            for p in nodes(6) {
                assert_eq!(inv.apply(t.apply(p, 6), 6), p, "inverse of {t:?}");
                assert_eq!(t.apply(inv.apply(p, 6), 6), p);
            }
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        for a in ALL_TRANSFORMS {
            for b in ALL_TRANSFORMS {
                let c = a.compose(b);
                for p in nodes(4) {
                    assert_eq!(
                        c.apply(p, 4),
                        a.apply(b.apply(p, 4), 4),
                        "compose({a:?}, {b:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn group_is_closed_under_composition() {
        for a in ALL_TRANSFORMS {
            for b in ALL_TRANSFORMS {
                let c = a.compose(b);
                assert!(ALL_TRANSFORMS.contains(&c));
            }
        }
    }
}
