//! Canonical congruence classes of nets — the single source of truth for
//! canonicalization.
//!
//! Two nets are *congruent* when one maps onto the other by translation,
//! scaling of individual Hanan gaps, or a dihedral symmetry of the plane.
//! Both routing objectives are invariant under translation and the `D₄`
//! symmetries (the L1 metric commutes with axis swaps and flips), and the
//! set of potentially Pareto-optimal topologies depends only on the
//! rank-space [`Pattern`], so everything the serving stack derives from a
//! net — lookup-table indices, frontier-cache keys, symbolic-cost
//! evaluation — factors through one object: the net's [`NetClass`].
//!
//! A `NetClass` is computed once per net and carries exactly three facts:
//!
//! 1. the **canonical pattern key** — the D4-orbit representative of the
//!    net's rank pattern, densely encoded ([`NetClass::key`]);
//! 2. the **canonical gap vector** — the net's Hanan gap lengths mapped
//!    into canonical rank space ([`NetClass::canonical_gaps`]);
//! 3. the **inverse transform** — the map from canonical rank space back
//!    to this net's own rank grid, so topologies stored against the
//!    canonical representative can be materialized on the instance
//!    ([`NetClass::to_instance`], [`NetClass::instance_point`]).
//!
//! The invariant every consumer relies on: **two nets with equal
//! `(key, canonical_gaps)` must route identically** — same frontier, same
//! tie-breaks, same winning topology ids. The frontier cache keys on this
//! pair, the lookup table binary-searches the key and dot-products the
//! gaps, and the symbolic DW rows are generated in the same canonical
//! space. Before this type existed the three consumers each re-derived the
//! canonicalization; now they share this one.

use crate::{HananGrid, Net, Pattern, PatternKey, Point, RankNode, Transform, ALL_TRANSFORMS};

/// The canonical congruence class of a net, plus the inverse transform
/// back into the net's own rank space.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, NetClass, Point};
///
/// # fn main() -> Result<(), patlabor_geom::InvalidNetError> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)])?;
/// // The mirrored net is congruent: same class key, same canonical gaps.
/// let mirrored = net.map_points(|p| Point::new(-p.x, p.y));
/// let a = NetClass::of(&net).expect("degree 3 is classifiable");
/// let b = NetClass::of(&mirrored).expect("degree 3 is classifiable");
/// assert_eq!(a.key(), b.key());
/// assert_eq!(a.canonical_gaps(), b.canonical_gaps());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetClass {
    grid: HananGrid,
    degree: u8,
    key: PatternKey,
    /// Maps canonical rank nodes back to this net's rank space.
    inverse: Transform,
    canonical_gaps: Vec<i64>,
}

impl NetClass {
    /// Largest classifiable degree: rank patterns use `u8` ranks and the
    /// dense [`PatternKey`] encoding, both capped at 16.
    pub const MAX_DEGREE: usize = 16;

    /// Canonicalizes a net, or `None` when its degree exceeds
    /// [`NetClass::MAX_DEGREE`] (such nets are served by local search,
    /// which never needs a class).
    pub fn of(net: &Net) -> Option<NetClass> {
        if net.degree() > Self::MAX_DEGREE {
            return None;
        }
        Some(Self::from_grid(HananGrid::new(net)))
    }

    /// Same as [`NetClass::of`] when the Hanan grid is already built.
    ///
    /// # Panics
    ///
    /// Panics if the grid's degree is outside `2 ..= 16` (the [`Pattern`]
    /// machinery's range; [`NetClass::of`] gates this for callers).
    pub fn from_grid(grid: HananGrid) -> NetClass {
        let (pattern, _) = Pattern::from_grid(&grid);
        // Canonicalize over the full D4 orbit, ordering candidates by
        // (pattern key, mapped gap vector). The secondary gap comparison
        // matters when the canonical pattern has a nontrivial stabilizer:
        // several transforms then reach the minimal key, and two congruent
        // nets can otherwise land on stabilizer-related (i.e. different)
        // gap mappings. Breaking the tie on the gaps themselves makes
        // `(key, canonical_gaps)` a true invariant of the congruence
        // class — every D4 image of a net classifies identically.
        //
        // Two passes: the minimal key first (allocation-free per
        // transform), then gap vectors only for the transforms attaining
        // it — with a trivial stabilizer that is one gap construction
        // instead of eight.
        let keys = ALL_TRANSFORMS.map(|t| pattern.transformed_key(t));
        let key = *keys.iter().min().expect("transform set is non-empty");
        let h0 = grid.h_gaps();
        let v0 = grid.v_gaps();
        // Map the instance gap vector into a transform's rank space: the
        // swap applies first, then the flips (T = flips ∘ swap),
        // mirroring `Transform::apply` on nodes.
        let gaps_for = |t: Transform, out: &mut Vec<i64>| {
            out.clear();
            let (h, v) = if t.swap { (&v0, &h0) } else { (&h0, &v0) };
            if t.flip_x {
                out.extend(h.iter().rev());
            } else {
                out.extend_from_slice(h);
            }
            if t.flip_y {
                out.extend(v.iter().rev());
            } else {
                out.extend_from_slice(v);
            }
        };
        let mut best: Option<(Vec<i64>, Transform)> = None;
        let mut scratch = Vec::new();
        for (t, k) in ALL_TRANSFORMS.into_iter().zip(keys) {
            if k != key {
                continue;
            }
            gaps_for(t, &mut scratch);
            match &mut best {
                Some((bg, bt)) => {
                    if scratch.as_slice() < bg.as_slice() {
                        std::mem::swap(bg, &mut scratch);
                        *bt = t;
                    }
                }
                None => best = Some((std::mem::take(&mut scratch), t)),
            }
        }
        let (canonical_gaps, transform) = best.expect("transform set is non-empty");
        NetClass {
            degree: grid.size() as u8,
            key,
            inverse: transform.inverse(),
            canonical_gaps,
            grid,
        }
    }

    /// Degree `n` of the classified net.
    pub fn degree(&self) -> u8 {
        self.degree
    }

    /// The canonical pattern key — the smallest [`PatternKey`] over the
    /// net's D4 pattern orbit (encodes degree, source position and the
    /// canonical y-permutation).
    pub fn key(&self) -> PatternKey {
        self.key
    }

    /// [`NetClass::key`] as a raw `u64` (table indices, cache keys).
    pub fn canonical_key(&self) -> u64 {
        self.key.as_u64()
    }

    /// The net's Hanan-grid gap vector mapped into canonical rank space
    /// (horizontal gaps first, then vertical; `2n − 2` entries).
    ///
    /// Two congruent nets produce the same canonical key *and* the same
    /// canonical gap vector, so `(key, gaps)` identifies a net up to
    /// congruence — exactly the granularity at which query results
    /// (winning topology ids) coincide.
    pub fn canonical_gaps(&self) -> &[i64] {
        &self.canonical_gaps
    }

    /// The transform from canonical rank space back to this net's rank
    /// space.
    pub fn inverse(&self) -> Transform {
        self.inverse
    }

    /// The net's Hanan grid (built once during classification).
    pub fn grid(&self) -> &HananGrid {
        &self.grid
    }

    /// Maps a canonical-space rank node into this net's rank space.
    pub fn to_instance(&self, node: RankNode) -> RankNode {
        self.inverse.apply(node, self.degree)
    }

    /// Plane coordinates of a canonical-space rank node on this net's
    /// Hanan grid — the materialization step for stored topologies.
    ///
    /// # Panics
    ///
    /// Panics if the node's ranks are outside the pattern grid.
    pub fn instance_point(&self, node: RankNode) -> Point {
        let instance = self.to_instance(node);
        Point::new(
            self.grid.xs()[instance.col as usize],
            self.grid.ys()[instance.row as usize],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    /// The eight point-level images of a net under the plane D4 group
    /// (mirrors and the transpose generate all of them).
    fn d4_images(base: &Net) -> Vec<Net> {
        let mut out = Vec::with_capacity(8);
        for swap in [false, true] {
            for fx in [false, true] {
                for fy in [false, true] {
                    out.push(base.map_points(|p| {
                        let (mut x, mut y) = (p.x, p.y);
                        if swap {
                            std::mem::swap(&mut x, &mut y);
                        }
                        if fx {
                            x = -x;
                        }
                        if fy {
                            y = -y;
                        }
                        Point::new(x, y)
                    }));
                }
            }
        }
        out
    }

    #[test]
    fn netclass_key_is_the_canonical_pattern_key() {
        let n = net(&[(9, 1), (0, 5), (4, 2)]);
        let class = NetClass::of(&n).unwrap();
        let (pattern, _) = Pattern::from_net(&n);
        assert_eq!(class.key(), pattern.canonical().0.key());
        assert_eq!(class.degree(), 3);
    }

    #[test]
    fn netclass_d4_images_share_key_and_gaps() {
        let base = net(&[(0, 0), (7, 2), (3, 9), (10, 5)]);
        let reference = NetClass::of(&base).unwrap();
        for (i, image) in d4_images(&base).iter().enumerate() {
            let class = NetClass::of(image).unwrap();
            assert_eq!(class.key(), reference.key(), "image {i}");
            assert_eq!(
                class.canonical_gaps(),
                reference.canonical_gaps(),
                "image {i}"
            );
        }
    }

    #[test]
    fn inverse_transform_maps_canonical_pins_onto_instance_pins() {
        let base = net(&[(0, 0), (7, 2), (3, 9), (10, 5)]);
        for image in d4_images(&base) {
            let class = NetClass::of(&image).unwrap();
            let (pattern, _) = Pattern::from_net(&image);
            let (canonical, _) = pattern.canonical();
            // Every canonical pin node must land on an actual pin of the
            // image net, and collectively they must cover all pins.
            let mapped: BTreeSet<Point> = canonical
                .pin_nodes()
                .into_iter()
                .map(|nd| class.instance_point(nd))
                .collect();
            let pins: BTreeSet<Point> = image.pins().iter().copied().collect();
            assert_eq!(mapped, pins);
            // The canonical source column maps back to the real source.
            assert_eq!(
                class.instance_point(canonical.source_node()),
                image.source()
            );
        }
    }

    #[test]
    fn canonical_gaps_of_identity_oriented_net_are_the_grid_gaps() {
        // A net instantiated from an already-canonical pattern classifies
        // to itself: identity inverse, raw gap vector.
        for pattern in Pattern::enumerate_canonical(4) {
            let h = [3i64, 1, 4];
            let v = [2i64, 7, 5];
            let instance = pattern.instantiate(&h, &v);
            let class = NetClass::of(&instance).unwrap();
            assert_eq!(class.key(), pattern.key());
            if class.inverse() == Transform::IDENTITY {
                let grid = HananGrid::new(&instance);
                assert_eq!(class.canonical_gaps(), grid.gap_vector().as_slice());
            }
        }
    }

    #[test]
    fn all_pattern_orbits_classify_consistently() {
        // Exhaustive over degree-4 patterns: every instantiation of every
        // orbit member produces the orbit representative's key.
        for pattern in Pattern::enumerate_all(4) {
            let instance = pattern.instantiate(&[2, 5, 1], &[3, 2, 7]);
            let class = NetClass::of(&instance).unwrap();
            assert_eq!(class.key(), pattern.canonical().0.key());
        }
    }

    #[test]
    fn degree_2_and_oversized_nets() {
        let tiny = net(&[(0, 0), (5, 3)]);
        let class = NetClass::of(&tiny).unwrap();
        assert_eq!(class.degree(), 2);
        assert_eq!(class.canonical_gaps().len(), 2);

        let big = Net::new((0..20).map(|i| Point::new(i, i * i)).collect()).unwrap();
        assert!(NetClass::of(&big).is_none());
    }

    #[test]
    fn zero_gaps_survive_classification() {
        // Tied coordinates produce zero-width gaps; the class must keep
        // them (positions matter for the dot-product evaluation).
        let n = net(&[(0, 0), (0, 4), (3, 4)]);
        let class = NetClass::of(&n).unwrap();
        assert_eq!(class.canonical_gaps().len(), 4);
        assert!(class.canonical_gaps().contains(&0));
    }
}
