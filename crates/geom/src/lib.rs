//! Rectilinear geometry substrate for the PatLabor timing-driven routing
//! reproduction.
//!
//! This crate provides the geometric vocabulary shared by every other crate
//! in the workspace:
//!
//! * [`Point`] — integer points in the rectilinear plane `(Z², ‖·‖₁)`;
//! * [`BoundingBox`] and half-perimeter wirelength ([`hpwl`]);
//! * [`Net`] — a routing instance `(r, P)` with the source pin first;
//! * [`HananGrid`] — the Hanan grid of a net together with its gap lengths
//!   `l₁ … l₂ₙ₋₂` (paper §II, Fig. 3);
//! * [`Pattern`] — the rank-space abstraction of a net used to index the
//!   lookup tables (paper §V-A), together with the dihedral symmetry group
//!   [`Transform`] used to reduce the number of stored patterns.
//!
//! # Example
//!
//! ```
//! use patlabor_geom::{Net, Point};
//!
//! # fn main() -> Result<(), patlabor_geom::InvalidNetError> {
//! let net = Net::new(vec![
//!     Point::new(0, 0),   // source
//!     Point::new(4, 7),   // sink
//!     Point::new(9, 2),   // sink
//! ])?;
//! assert_eq!(net.degree(), 3);
//! assert_eq!(net.source(), Point::new(0, 0));
//! # Ok(())
//! # }
//! ```

mod bbox;
mod grid;
mod net;
mod netclass;
mod pattern;
mod point;
mod transform;

pub use bbox::{hpwl, BoundingBox};
pub use grid::{GridEdge, GridNode, HananGrid};
pub use net::{InvalidNetError, Net};
pub use netclass::NetClass;
pub use pattern::{Pattern, PatternKey, RankNode};
pub use point::{l1, Point};
pub use transform::{Transform, ALL_TRANSFORMS};
