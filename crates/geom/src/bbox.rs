//! Axis-aligned bounding boxes and half-perimeter wirelength.

use crate::Point;

/// An axis-aligned rectangle, stored as its lower-left and upper-right
/// corners (both inclusive).
///
/// Used by the Lemma 3 pruning rule of the paper (projecting a Hanan-grid
/// node onto the bounding box of a pin subset) and by the policy-π scoring
/// function (HPWL term).
///
/// # Example
///
/// ```
/// use patlabor_geom::{BoundingBox, Point};
///
/// let bb = BoundingBox::of_points([Point::new(1, 5), Point::new(4, 2)])
///     .expect("non-empty");
/// assert_eq!(bb.half_perimeter(), 3 + 3);
/// assert!(bb.contains(Point::new(2, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    lo: Point,
    hi: Point,
}

impl BoundingBox {
    /// Creates the degenerate box containing exactly one point.
    pub fn point(p: Point) -> Self {
        BoundingBox { lo: p, hi: p }
    }

    /// Creates the smallest box containing every point of the iterator, or
    /// `None` when the iterator is empty.
    pub fn of_points<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox::point(first);
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Lower-left corner.
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Grows the box (in place) to also contain `p`.
    pub fn expand(&mut self, p: Point) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Width plus height — the half-perimeter wirelength of the box.
    pub fn half_perimeter(&self) -> i64 {
        (self.hi.x - self.lo.x) + (self.hi.y - self.lo.y)
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// The closest point of the box to `p` under any `lᵖ` metric: each
    /// coordinate of `p` clamped to the box range.
    ///
    /// This is the projection used by pruning Lemma 3: for a node `v`
    /// outside `BB(S)`, `S_{v,Q} = S_{u,Q} + ‖v − u‖₁` where
    /// `u = BB(S).project(v)`.
    pub fn project(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.lo.x, self.hi.x),
            p.y.clamp(self.lo.y, self.hi.y),
        )
    }
}

/// Half-perimeter wirelength of a point set; `0` for fewer than two points.
///
/// ```
/// use patlabor_geom::{hpwl, Point};
/// let pins = [Point::new(0, 0), Point::new(3, 1), Point::new(1, 4)];
/// assert_eq!(hpwl(pins), 3 + 4);
/// ```
pub fn hpwl<I>(points: I) -> i64
where
    I: IntoIterator<Item = Point>,
{
    BoundingBox::of_points(points).map_or(0, |bb| bb.half_perimeter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn of_points_empty_is_none() {
        assert!(BoundingBox::of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn single_point_box_has_zero_half_perimeter() {
        let bb = BoundingBox::point(Point::new(5, -2));
        assert_eq!(bb.half_perimeter(), 0);
        assert!(bb.contains(Point::new(5, -2)));
        assert!(!bb.contains(Point::new(5, -1)));
    }

    #[test]
    fn projection_of_inside_point_is_identity() {
        let bb = BoundingBox::of_points([Point::new(0, 0), Point::new(10, 10)]).unwrap();
        let p = Point::new(3, 7);
        assert_eq!(bb.project(p), p);
    }

    #[test]
    fn projection_of_outside_point_lands_on_boundary() {
        let bb = BoundingBox::of_points([Point::new(0, 0), Point::new(10, 10)]).unwrap();
        assert_eq!(bb.project(Point::new(-4, 5)), Point::new(0, 5));
        assert_eq!(bb.project(Point::new(12, 15)), Point::new(10, 10));
    }

    #[test]
    fn hpwl_matches_manual_computation() {
        let pins = [Point::new(2, 2), Point::new(7, 3), Point::new(4, 9)];
        assert_eq!(hpwl(pins), (7 - 2) + (9 - 2));
        assert_eq!(hpwl([Point::new(1, 1)]), 0);
        assert_eq!(hpwl(std::iter::empty()), 0);
    }

    fn coord() -> impl Strategy<Value = i64> {
        -10_000i64..10_000
    }

    proptest! {
        #[test]
        fn prop_projection_is_closest_on_axis(
            (lx, hx) in (coord(), coord()).prop_map(|(a, b)| (a.min(b), a.max(b))),
            (ly, hy) in (coord(), coord()).prop_map(|(a, b)| (a.min(b), a.max(b))),
            px in coord(), py in coord(),
        ) {
            let bb = BoundingBox::of_points([Point::new(lx, ly), Point::new(hx, hy)]).unwrap();
            let p = Point::new(px, py);
            let u = bb.project(p);
            prop_assert!(bb.contains(u));
            // No box point can be strictly closer than the projection.
            for corner in [bb.lo(), bb.hi(),
                           Point::new(bb.lo().x, bb.hi().y),
                           Point::new(bb.hi().x, bb.lo().y)] {
                prop_assert!(p.l1(u) <= p.l1(corner));
            }
        }

        #[test]
        fn prop_hpwl_lower_bounds_pairwise_distance(
            pts in proptest::collection::vec((coord(), coord()), 2..8),
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let h = hpwl(pts.iter().copied());
            for &a in &pts {
                for &b in &pts {
                    prop_assert!(a.l1(b) <= h);
                }
            }
        }
    }
}
