//! The serving metrics plane: lock-free counters and a log₂ latency
//! histogram, rendered as Prometheus-style text exposition.
//!
//! Every counter is a plain relaxed `AtomicU64` — the hot path (request
//! accept, batch close, reply send) only ever increments, and the
//! scrape path only ever reads, so there is no lock anywhere and a
//! scrape can never stall serving. The histogram buckets latencies by
//! `floor(log₂(ns))`: 64 fixed buckets cover 1 ns to ~584 years with
//! ~2× resolution, which is exactly the precision a percentile over a
//! serving distribution needs (p99 at 2× resolution distinguishes
//! "microseconds" from "milliseconds" from "seconds", the operational
//! question), for 512 bytes of memory and one atomic add per sample.

use std::sync::atomic::{AtomicU64, Ordering};

use patlabor::{CacheStats, Rung};

use crate::chaos::TransportFaultKind;

use std::fmt::Write as _;

/// Latency histogram with power-of-two buckets.
///
/// `record` is wait-free (one relaxed fetch-add); `quantile` takes a
/// relaxed snapshot and scans 64 words. Concurrent recording during a
/// scan can skew a quantile by at most the samples that arrived
/// mid-scan — acceptable for monitoring, which is this type's only
/// consumer.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Zero-nanosecond samples land in bucket 0.
    pub fn record(&self, ns: u64) {
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// The geometric midpoint (in ns) of the bucket containing the
    /// `q`-th quantile (`0.0 ≤ q ≤ 1.0`), or `None` with no samples.
    ///
    /// The midpoint `√(lo·hi) = lo·√2` is the minimax estimator for a
    /// log₂ bucket: the true quantile lies within √2 (~41%) of the
    /// reported value in either direction. Reporting the bucket's
    /// *upper* bound — the previous behavior — biased every quantile
    /// high by up to 2×, which made p50 read as double the real median
    /// for workloads sitting at the bottom of a bucket.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let snapshot: [u64; 64] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return None;
        }
        // ceil(q × total), clamped to [1, total]: the rank of the
        // sample we want.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, n) in snapshot.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i >= 63 {
                    // The top bucket's upper edge overflows u64; keep
                    // the sentinel rather than a fabricated midpoint.
                    return Some(u64::MAX);
                }
                let lo = 1u64 << i;
                return Some(lo + (lo as f64 * (std::f64::consts::SQRT_2 - 1.0)) as u64);
            }
        }
        None
    }
}

/// All serving counters. One instance per server, shared by every
/// connection thread and the batcher.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests admitted into the queue.
    pub requests: AtomicU64,
    /// Successful route responses sent.
    pub responses: AtomicU64,
    /// Responses carrying `"error": "route"`.
    pub route_errors: AtomicU64,
    /// Admission-control rejections (`"error": "overloaded"`).
    pub rejected: AtomicU64,
    /// Drain-mode rejections (`"error": "shutting-down"`).
    pub shed_shutdown: AtomicU64,
    /// Unparseable frames (`"error": "malformed"`).
    pub malformed: AtomicU64,
    /// Served responses whose ladder trace recorded a deadline hit.
    pub deadline_hits: AtomicU64,
    /// Coalescing windows closed into `route_batch_sessions`.
    pub batches: AtomicU64,
    /// Requests routed through those windows.
    pub batched_nets: AtomicU64,
    /// Current queue depth (gauge, not a counter).
    pub queue_depth: AtomicU64,
    /// Served-by-rung histogram, indexed by [`Rung::index`].
    pub served_by: [AtomicU64; Rung::COUNT],
    /// Enqueue-to-reply latency of successful responses.
    pub latency: LatencyHistogram,
    /// Connections killed by the mid-frame read watchdog (a peer sent
    /// part of a frame and stalled past the stall budget).
    pub read_timeouts: AtomicU64,
    /// Connections whose write half hit the socket write deadline
    /// (the peer stopped reading its replies).
    pub write_timeouts: AtomicU64,
    /// Slow clients evicted because their bounded reply buffer filled
    /// (the batcher never blocks on one connection).
    pub evicted: AtomicU64,
    /// Successful hot table reloads.
    pub reloads: AtomicU64,
    /// Rejected hot table reloads — the old table kept serving.
    pub reload_failed: AtomicU64,
    /// The serving table generation (gauge; 0 = the boot table).
    pub table_epoch: AtomicU64,
    /// Chaos-plane injections by [`TransportFaultKind::index`].
    pub chaos_injected: [AtomicU64; TransportFaultKind::COUNT],
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed add on a named counter (the only mutation idiom).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition. `cache` is the engine's
    /// live cache counters (absent when the frontier cache is disabled).
    pub fn render(&self, cache: Option<&CacheStats>) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            &mut out,
            "patlabor_requests_total",
            "Requests admitted into the coalescing queue.",
            Self::get(&self.requests),
        );
        counter(
            &mut out,
            "patlabor_responses_total",
            "Successful route responses.",
            Self::get(&self.responses),
        );
        counter(
            &mut out,
            "patlabor_route_errors_total",
            "Responses carrying a structured routing error.",
            Self::get(&self.route_errors),
        );
        let _ = writeln!(
            out,
            "# HELP patlabor_rejected_total Requests rejected before routing, by reason."
        );
        let _ = writeln!(out, "# TYPE patlabor_rejected_total counter");
        let _ = writeln!(
            out,
            "patlabor_rejected_total{{reason=\"overloaded\"}} {}",
            Self::get(&self.rejected)
        );
        let _ = writeln!(
            out,
            "patlabor_rejected_total{{reason=\"shutting-down\"}} {}",
            Self::get(&self.shed_shutdown)
        );
        let _ = writeln!(
            out,
            "patlabor_rejected_total{{reason=\"malformed\"}} {}",
            Self::get(&self.malformed)
        );
        counter(
            &mut out,
            "patlabor_deadline_hits_total",
            "Served responses whose degradation trace recorded an expired deadline.",
            Self::get(&self.deadline_hits),
        );
        counter(
            &mut out,
            "patlabor_batches_total",
            "Coalescing windows closed into the batch driver.",
            Self::get(&self.batches),
        );
        counter(
            &mut out,
            "patlabor_batched_nets_total",
            "Requests routed through coalescing windows.",
            Self::get(&self.batched_nets),
        );
        let _ = writeln!(out, "# HELP patlabor_queue_depth Requests currently queued.");
        let _ = writeln!(out, "# TYPE patlabor_queue_depth gauge");
        let _ = writeln!(out, "patlabor_queue_depth {}", Self::get(&self.queue_depth));
        let _ = writeln!(
            out,
            "# HELP patlabor_served_by_rung_total Served responses by degradation-ladder rung."
        );
        let _ = writeln!(out, "# TYPE patlabor_served_by_rung_total counter");
        for rung in Rung::ALL {
            let _ = writeln!(
                out,
                "patlabor_served_by_rung_total{{rung=\"{}\"}} {}",
                rung.label(),
                Self::get(&self.served_by[rung.index()])
            );
        }
        let _ = writeln!(
            out,
            "# HELP patlabor_conn_timeouts_total Connections killed by a socket deadline, by side."
        );
        let _ = writeln!(out, "# TYPE patlabor_conn_timeouts_total counter");
        let _ = writeln!(
            out,
            "patlabor_conn_timeouts_total{{side=\"read\"}} {}",
            Self::get(&self.read_timeouts)
        );
        let _ = writeln!(
            out,
            "patlabor_conn_timeouts_total{{side=\"write\"}} {}",
            Self::get(&self.write_timeouts)
        );
        counter(
            &mut out,
            "patlabor_evicted_total",
            "Slow clients evicted (bounded reply buffer filled).",
            Self::get(&self.evicted),
        );
        let _ = writeln!(
            out,
            "# HELP patlabor_reloads_total Hot table reload attempts, by result."
        );
        let _ = writeln!(out, "# TYPE patlabor_reloads_total counter");
        let _ = writeln!(
            out,
            "patlabor_reloads_total{{result=\"ok\"}} {}",
            Self::get(&self.reloads)
        );
        let _ = writeln!(
            out,
            "patlabor_reloads_total{{result=\"failed\"}} {}",
            Self::get(&self.reload_failed)
        );
        let _ = writeln!(
            out,
            "# HELP patlabor_table_epoch The serving table generation (0 = boot table)."
        );
        let _ = writeln!(out, "# TYPE patlabor_table_epoch gauge");
        let _ = writeln!(out, "patlabor_table_epoch {}", Self::get(&self.table_epoch));
        let _ = writeln!(
            out,
            "# HELP patlabor_chaos_injected_total Transport faults injected by the chaos plane, by kind."
        );
        let _ = writeln!(out, "# TYPE patlabor_chaos_injected_total counter");
        for kind in TransportFaultKind::ALL {
            let _ = writeln!(
                out,
                "patlabor_chaos_injected_total{{kind=\"{}\"}} {}",
                kind.label(),
                Self::get(&self.chaos_injected[kind.index()])
            );
        }
        let _ = writeln!(
            out,
            "# HELP patlabor_latency_seconds Enqueue-to-reply latency quantiles \
             (log2-bucket geometric midpoints, true value within sqrt(2))."
        );
        let _ = writeln!(out, "# TYPE patlabor_latency_seconds summary");
        for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
            if let Some(ns) = self.latency.quantile_ns(q) {
                let _ = writeln!(
                    out,
                    "patlabor_latency_seconds{{quantile=\"{label}\"}} {:.9}",
                    ns as f64 / 1e9
                );
            }
        }
        let _ = writeln!(
            out,
            "patlabor_latency_seconds_sum {:.9}",
            self.latency.sum_ns() as f64 / 1e9
        );
        let _ = writeln!(out, "patlabor_latency_seconds_count {}", self.latency.count());
        if let Some(stats) = cache {
            counter(
                &mut out,
                "patlabor_cache_hits_total",
                "Frontier-cache hits.",
                stats.hits,
            );
            counter(
                &mut out,
                "patlabor_cache_misses_total",
                "Frontier-cache misses.",
                stats.misses,
            );
            let probes = stats.hits + stats.misses;
            let rate = if probes == 0 {
                0.0
            } else {
                stats.hits as f64 / probes as f64
            };
            let _ = writeln!(
                out,
                "# HELP patlabor_cache_hit_rate Frontier-cache hit rate over all probes."
            );
            let _ = writeln!(out, "# TYPE patlabor_cache_hit_rate gauge");
            let _ = writeln!(out, "patlabor_cache_hit_rate {rate:.6}");
            let _ = writeln!(
                out,
                "# HELP patlabor_cache_bypassed Whether the adaptive bypass retired the cache."
            );
            let _ = writeln!(out, "# TYPE patlabor_cache_bypassed gauge");
            let _ = writeln!(out, "patlabor_cache_bypassed {}", u64::from(stats.bypassed));
            counter(
                &mut out,
                "patlabor_cache_contended_reads_total",
                "Cache shard read locks found held.",
                stats.contended_reads,
            );
            counter(
                &mut out,
                "patlabor_cache_contended_writes_total",
                "Cache shard write locks found held.",
                stats.contended_writes,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), None);
        // 90 samples at ~1µs, 10 at ~1ms: p50 must report the µs
        // bucket's midpoint, p999 the ms bucket's. 1 000 ns lands in
        // bucket 9 ([512, 1024)) whose geometric midpoint is 512·√2 ≈
        // 724; 1 000 000 ns lands in bucket 19 ([524288, 1048576)),
        // midpoint ≈ 741 455. The old upper-bound report would have
        // claimed 1 024 and 1 048 576 — overstating p50 by ~2×.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile_ns(0.5).unwrap();
        assert!((512..=1_024).contains(&p50), "{p50}");
        assert_eq!(p50, 724);
        let p999 = h.quantile_ns(0.999).unwrap();
        assert!((524_288..=1_048_576).contains(&p999), "{p999}");
        assert_eq!(p999, 741_455);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_ns(), 90 * 1_000 + 10 * 1_000_000);
        // q=0 is the minimum bucket, q=1 the maximum.
        assert!(h.quantile_ns(0.0).unwrap() <= 1_024);
        assert!(h.quantile_ns(1.0).unwrap() >= 524_288);
    }

    #[test]
    fn zero_and_max_samples_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(1.0), Some(u64::MAX));
    }

    #[test]
    fn render_lists_every_documented_family() {
        let m = Metrics::new();
        Metrics::add(&m.requests, 3);
        Metrics::add(&m.rejected, 1);
        m.latency.record(5_000);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        let text = m.render(Some(&cache));
        for family in [
            "patlabor_requests_total 3",
            "patlabor_rejected_total{reason=\"overloaded\"} 1",
            "patlabor_rejected_total{reason=\"malformed\"} 0",
            "patlabor_served_by_rung_total{rung=\"lut\"} 0",
            "patlabor_latency_seconds{quantile=\"0.5\"}",
            "patlabor_latency_seconds_count 1",
            "patlabor_queue_depth 0",
            "patlabor_cache_hit_rate 0.75",
            "patlabor_batches_total 0",
            "patlabor_conn_timeouts_total{side=\"read\"} 0",
            "patlabor_conn_timeouts_total{side=\"write\"} 0",
            "patlabor_evicted_total 0",
            "patlabor_reloads_total{result=\"ok\"} 0",
            "patlabor_reloads_total{result=\"failed\"} 0",
            "patlabor_table_epoch 0",
            "patlabor_chaos_injected_total{kind=\"torn-write\"} 0",
            "patlabor_chaos_injected_total{kind=\"corrupt-write\"} 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        // Cache families vanish when the cache is disabled.
        assert!(!m.render(None).contains("patlabor_cache"));
    }
}
