//! The socket wire protocol: length-prefixed JSON frames.
//!
//! Each frame is a `u32` little-endian byte length followed by that many
//! bytes of UTF-8 JSON. The prefix is capped at [`MAX_FRAME`] so a
//! hostile or corrupt length can never allocate unboundedly. One
//! request frame yields exactly one response frame, correlated by the
//! caller-chosen `id` (responses to pipelined requests stay in arrival
//! order per connection, but the id is what clients should key on).
//!
//! Request: `{"id": 7, "net": [[0,0],[5,9],[9,4]], "deadline_ms": 10}`
//! — `net` is the pin list (source first), `deadline_ms` optionally
//! overrides the engine's per-net deadline for this request.
//!
//! Reroute request (ECO): `{"id": 7, "base": [[0,0],[5,9],[9,4]],
//! "edit": {"kind": "translate", "dx": 3, "dy": -1}, "staleness": 2}`
//! — `base` is the previously-routed pin list, `edit` one of the
//! [`DeltaKind`] grammar objects (`move-pin`, `add-sink`,
//! `remove-sink`, `translate`, `blockage-mask`), and optional
//! `staleness` the number of edits already applied since the last full
//! route (defaults to 0). The presence of `"edit"` is what routes a
//! frame down the reroute path; responses share the route response
//! shape, with `"source": "reused"` marking a replay.
//!
//! Response (success):
//! `{"id":7,"ok":true,"degree":3,"source":"exact-lut","rung":"lut",
//!   "degraded":false,"trace":["lut:served"],
//!   "frontier":[{"w":19,"d":14},...]}`
//!
//! Admin verb (hot reload): `{"id": 7, "reload": "/path/to.plut"}` —
//! validates the file off the hot path and atomically swaps the
//! serving table (DESIGN.md §17). Success responds
//! `{"id":7,"ok":true,"reloaded":true,"epoch":N}`; a rejected
//! candidate leaves the old table serving and responds with the
//! `"reload-failed"` error below.
//!
//! Response (failure): `{"id":7,"ok":false,"error":E,...}` where `E` is
//! one of the documented vocabulary:
//! * `"overloaded"` — admission control rejected the request; carries
//!   `retry_after_ms`. The request was **not** routed.
//! * `"shutting-down"` — the server is draining; reconnect elsewhere.
//! * `"malformed"` — unparseable frame; carries `detail`. The `id`
//!   echoes the request's when one could be recovered, else 0.
//! * `"route"` — the engine's structured [`RouteError`]; carries
//!   `detail`.
//! * `"evicted"` — the server is closing this connection (mid-frame
//!   read stall past the watchdog budget, or the bounded reply buffer
//!   filled); carries `detail`. Sent best-effort before the close —
//!   a hard-stalled peer may see only the close.
//! * `"reloading"` — a hot table reload is already in flight; retry
//!   the reload verb after it settles.
//! * `"reload-failed"` — the reload candidate was rejected (failed
//!   validation or λ mismatch); carries `detail`. The previous table
//!   is still serving.
//!
//! The same serialization (`outcome_to_json`/`result_to_json`) backs
//! `route --json` in the CLI, so scripted consumers see one format
//! whether they read a socket or a pipe.

use std::io::{self, Read, Write};

use patlabor::{DeltaKind, Net, NetDelta, Point, RouteError, RouteOutcome, RouteResult};

use crate::json::{parse, Json};

/// Hard cap on a frame's payload length (1 MiB). The largest legitimate
/// frame — a λ = 9 frontier with full trace — is under 64 KiB; anything
/// bigger is a corrupt prefix or an attack, and is rejected before any
/// allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed after a complete exchange);
/// EOF mid-frame and oversized prefixes are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame prefix of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A parsed route request.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The net to route (source pin first).
    pub net: Net,
    /// Optional per-request deadline override, in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl RouteRequest {
    /// Encodes the request as its wire JSON.
    pub fn to_json(&self) -> Json {
        let pins = self
            .net
            .pins()
            .iter()
            .map(|p| Json::Arr(vec![int(p.x), int(p.y)]))
            .collect();
        let mut obj = vec![
            ("id".to_string(), Json::Int(self.id as i64)),
            ("net".to_string(), Json::Arr(pins)),
        ];
        if let Some(ms) = self.deadline_ms {
            obj.push(("deadline_ms".to_string(), Json::Int(ms as i64)));
        }
        Json::Obj(obj)
    }
}

/// A parsed ECO reroute request.
#[derive(Debug, Clone, PartialEq)]
pub struct RerouteRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The edit: base net plus the delta to apply.
    pub delta: NetDelta,
    /// Edits already applied since the last full route (feeds the
    /// staleness counter; 0 when the base was routed from scratch).
    pub prior_edits: u32,
    /// Optional per-request deadline override, in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl RerouteRequest {
    /// Encodes the request as its wire JSON.
    pub fn to_json(&self) -> Json {
        let pins = self
            .delta
            .base
            .pins()
            .iter()
            .map(|p| Json::Arr(vec![int(p.x), int(p.y)]))
            .collect();
        let mut obj = vec![
            ("id".to_string(), Json::Int(self.id as i64)),
            ("base".to_string(), Json::Arr(pins)),
            ("edit".to_string(), delta_kind_to_json(&self.delta.kind)),
        ];
        if self.prior_edits != 0 {
            obj.push(("staleness".to_string(), Json::Int(self.prior_edits as i64)));
        }
        if let Some(ms) = self.deadline_ms {
            obj.push(("deadline_ms".to_string(), Json::Int(ms as i64)));
        }
        Json::Obj(obj)
    }
}

/// A parsed hot-reload admin request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReloadRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Path of the v4 table file to validate and swap in.
    pub path: String,
}

impl ReloadRequest {
    /// Encodes the request as its wire JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_string(), Json::Int(self.id as i64)),
            ("reload".to_string(), Json::Str(self.path.clone())),
        ])
    }
}

/// Any verb the socket protocol accepts: the presence of an `"edit"`
/// key selects the reroute path, a `"reload"` key the admin path, and
/// anything else is a plain route.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Route(RouteRequest),
    Reroute(RerouteRequest),
    Reload(ReloadRequest),
}

/// Serializes a [`DeltaKind`] into the wire edit grammar.
pub fn delta_kind_to_json(kind: &DeltaKind) -> Json {
    let pt = |p: Point| Json::Arr(vec![int(p.x), int(p.y)]);
    let tag = ("kind".to_string(), Json::Str(kind.label().to_string()));
    match *kind {
        DeltaKind::MovePin { index, to } => Json::Obj(vec![
            tag,
            ("index".to_string(), Json::Int(index as i64)),
            ("to".to_string(), pt(to)),
        ]),
        DeltaKind::AddSink { at } => Json::Obj(vec![tag, ("at".to_string(), pt(at))]),
        DeltaKind::RemoveSink { index } => Json::Obj(vec![
            tag,
            ("index".to_string(), Json::Int(index as i64)),
        ]),
        DeltaKind::Translate { dx, dy } => Json::Obj(vec![
            tag,
            ("dx".to_string(), Json::Int(dx)),
            ("dy".to_string(), Json::Int(dy)),
        ]),
        DeltaKind::BlockageMask { min, max } => Json::Obj(vec![
            tag,
            ("min".to_string(), pt(min)),
            ("max".to_string(), pt(max)),
        ]),
    }
}

fn parse_point_pair(value: &Json) -> Option<Point> {
    let pair = value.as_array().filter(|p| p.len() == 2)?;
    Some(Point::new(pair[0].as_i64()?, pair[1].as_i64()?))
}

/// Parses an `"edit"` object into a [`DeltaKind`], or a human-readable
/// reason it could not be.
fn parse_delta_kind(value: &Json) -> Result<DeltaKind, String> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "edit must carry a \"kind\" string".to_string())?;
    let index = || {
        value
            .get("index")
            .and_then(Json::as_u64)
            .map(|i| i as usize)
            .ok_or_else(|| format!("{kind} edit needs an \"index\" integer"))
    };
    let point = |field: &str| {
        value
            .get(field)
            .and_then(parse_point_pair)
            .ok_or_else(|| format!("{kind} edit needs a \"{field}\" [x, y] pair"))
    };
    let offset = |field: &str| {
        value
            .get(field)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("{kind} edit needs a \"{field}\" integer"))
    };
    match kind {
        "move-pin" => Ok(DeltaKind::MovePin { index: index()?, to: point("to")? }),
        "add-sink" => Ok(DeltaKind::AddSink { at: point("at")? }),
        "remove-sink" => Ok(DeltaKind::RemoveSink { index: index()? }),
        "translate" => Ok(DeltaKind::Translate { dx: offset("dx")?, dy: offset("dy")? }),
        "blockage-mask" => Ok(DeltaKind::BlockageMask {
            min: point("min")?,
            max: point("max")?,
        }),
        other => Err(format!("unknown edit kind {other:?}")),
    }
}

/// A request frame that could not be turned into a [`RouteRequest`].
/// `id` is recovered from the payload when possible so the rejection
/// can still be correlated.
#[derive(Debug, Clone, PartialEq)]
pub struct MalformedRequest {
    pub id: u64,
    pub detail: String,
}

/// Parses a request frame's payload.
pub fn parse_request(payload: &[u8]) -> Result<RouteRequest, MalformedRequest> {
    let text = std::str::from_utf8(payload).map_err(|e| MalformedRequest {
        id: 0,
        detail: format!("frame is not UTF-8: {e}"),
    })?;
    let value = parse(text).map_err(|e| MalformedRequest {
        id: 0,
        detail: e.to_string(),
    })?;
    let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
    let fail = |detail: String| MalformedRequest { id, detail };
    let pins = value
        .get("net")
        .and_then(Json::as_array)
        .ok_or_else(|| fail("missing \"net\" array".to_string()))?;
    let mut points = Vec::with_capacity(pins.len());
    for pin in pins {
        let pair = pin.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
            fail("each pin must be a [x, y] pair".to_string())
        })?;
        let x = pair[0].as_i64().ok_or_else(|| fail("pin x must be an integer".to_string()))?;
        let y = pair[1].as_i64().ok_or_else(|| fail("pin y must be an integer".to_string()))?;
        points.push(Point::new(x, y));
    }
    let net = Net::new(points).map_err(|e| fail(format!("invalid net: {e}")))?;
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| fail("deadline_ms must be a non-negative integer".to_string()))?,
        ),
    };
    Ok(RouteRequest { id, net, deadline_ms })
}

/// Parses a pin-list field into a net.
fn parse_pins(value: &Json, field: &str) -> Result<Net, String> {
    let pins = value
        .get(field)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing \"{field}\" array"))?;
    let mut points = Vec::with_capacity(pins.len());
    for pin in pins {
        points.push(
            parse_point_pair(pin)
                .ok_or_else(|| "each pin must be an integer [x, y] pair".to_string())?,
        );
    }
    Net::new(points).map_err(|e| format!("invalid net: {e}"))
}

/// Parses an ECO reroute frame's payload.
pub fn parse_reroute_request(payload: &[u8]) -> Result<RerouteRequest, MalformedRequest> {
    let text = std::str::from_utf8(payload).map_err(|e| MalformedRequest {
        id: 0,
        detail: format!("frame is not UTF-8: {e}"),
    })?;
    let value = parse(text).map_err(|e| MalformedRequest {
        id: 0,
        detail: e.to_string(),
    })?;
    let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
    let fail = |detail: String| MalformedRequest { id, detail };
    let base = parse_pins(&value, "base").map_err(&fail)?;
    let edit = value
        .get("edit")
        .ok_or_else(|| fail("missing \"edit\" object".to_string()))?;
    let kind = parse_delta_kind(edit).map_err(&fail)?;
    let prior_edits = match value.get("staleness") {
        None | Some(Json::Null) => 0,
        Some(v) => u32::try_from(v.as_u64().ok_or_else(|| {
            fail("staleness must be a non-negative integer".to_string())
        })?)
        .map_err(|_| fail("staleness exceeds u32".to_string()))?,
    };
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| fail("deadline_ms must be a non-negative integer".to_string()))?,
        ),
    };
    Ok(RerouteRequest {
        id,
        delta: NetDelta::new(base, kind),
        prior_edits,
        deadline_ms,
    })
}

/// Parses a hot-reload admin frame's payload.
pub fn parse_reload_request(payload: &[u8]) -> Result<ReloadRequest, MalformedRequest> {
    let text = std::str::from_utf8(payload).map_err(|e| MalformedRequest {
        id: 0,
        detail: format!("frame is not UTF-8: {e}"),
    })?;
    let value = parse(text).map_err(|e| MalformedRequest {
        id: 0,
        detail: e.to_string(),
    })?;
    let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
    let path = value
        .get("reload")
        .and_then(Json::as_str)
        .ok_or_else(|| MalformedRequest {
            id,
            detail: "\"reload\" must be a path string".to_string(),
        })?;
    Ok(ReloadRequest {
        id,
        path: path.to_string(),
    })
}

/// Parses any verb: a frame carrying `"edit"` is a reroute, one
/// carrying `"reload"` is the admin path, anything else takes the
/// route path (whose errors are unchanged).
pub fn parse_any_request(payload: &[u8]) -> Result<Request, MalformedRequest> {
    let value = std::str::from_utf8(payload).ok().and_then(|t| parse(t).ok());
    if value.as_ref().is_some_and(|v| v.get("edit").is_some()) {
        parse_reroute_request(payload).map(Request::Reroute)
    } else if value.as_ref().is_some_and(|v| v.get("reload").is_some()) {
        parse_reload_request(payload).map(Request::Reload)
    } else {
        parse_request(payload).map(Request::Route)
    }
}

fn int(n: i64) -> Json {
    Json::Int(n)
}

/// Serializes a successful route outcome — the shared shape behind both
/// wire responses and `route --json` lines.
pub fn outcome_to_json(id: u64, outcome: &RouteOutcome) -> Json {
    let frontier = outcome
        .frontier
        .iter()
        .map(|(c, _)| {
            Json::Obj(vec![
                ("w".to_string(), int(c.wirelength)),
                ("d".to_string(), int(c.delay)),
            ])
        })
        .collect();
    let p = &outcome.provenance;
    let trace = p
        .trace
        .attempts()
        .iter()
        .map(|a| Json::Str(format!("{}:{}", a.rung.label(), a.outcome.label())))
        .collect();
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        ("degree".to_string(), int(p.degree as i64)),
        ("source".to_string(), Json::Str(p.source.label().to_string())),
        (
            "rung".to_string(),
            match p.trace.served_by() {
                Some(rung) => Json::Str(rung.label().to_string()),
                None => Json::Null,
            },
        ),
        ("degraded".to_string(), Json::Bool(p.trace.degraded())),
        ("trace".to_string(), Json::Arr(trace)),
        ("frontier".to_string(), Json::Arr(frontier)),
    ])
}

/// Serializes a routing failure (`"error": "route"`).
pub fn route_error_to_json(id: u64, error: &RouteError) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("route".to_string())),
        ("detail".to_string(), Json::Str(error.to_string())),
    ])
}

/// Serializes a per-net [`RouteResult`] — success or routing failure.
pub fn result_to_json(id: u64, result: &RouteResult) -> Json {
    match result {
        Ok(outcome) => outcome_to_json(id, outcome),
        Err(e) => route_error_to_json(id, e),
    }
}

/// The admission-control rejection (`"error": "overloaded"`): the queue
/// was full, the request was not routed, retry after the given delay.
pub fn overloaded_json(id: u64, retry_after_ms: u64) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("overloaded".to_string())),
        ("retry_after_ms".to_string(), Json::Int(retry_after_ms as i64)),
    ])
}

/// The drain-mode rejection (`"error": "shutting-down"`).
pub fn shutting_down_json(id: u64) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("shutting-down".to_string())),
    ])
}

/// The slow-client eviction notice (`"error": "evicted"`): the server
/// is closing this connection. Sent best-effort before the close.
pub fn evicted_json(id: u64, detail: &str) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("evicted".to_string())),
        ("detail".to_string(), Json::Str(detail.to_string())),
    ])
}

/// The concurrent-reload rejection (`"error": "reloading"`): an admin
/// reload is already in flight.
pub fn reloading_json(id: u64) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("reloading".to_string())),
    ])
}

/// The rejected-candidate reload response (`"error": "reload-failed"`):
/// the old table is still serving.
pub fn reload_failed_json(id: u64, detail: &str) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("reload-failed".to_string())),
        ("detail".to_string(), Json::Str(detail.to_string())),
    ])
}

/// The successful hot-reload response.
pub fn reload_ok_json(id: u64, epoch: u64) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        ("reloaded".to_string(), Json::Bool(true)),
        ("epoch".to_string(), Json::Int(epoch as i64)),
    ])
}

/// The unparseable-frame rejection (`"error": "malformed"`).
pub fn malformed_json(m: &MalformedRequest) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Int(m.id as i64)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str("malformed".to_string())),
        ("detail".to_string(), Json::Str(m.detail.clone())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net3() -> Net {
        Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)]).unwrap()
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        // Clean EOF at the boundary is None, not an error.
        assert!(read_frame(&mut r).unwrap().is_none());
        // An oversized prefix is rejected before allocating.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // EOF mid-frame is an error, not a silent truncation.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"hello").unwrap();
        torn.truncate(6);
        let mut r = torn.as_slice();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let req = RouteRequest {
            id: 42,
            net: net3(),
            deadline_ms: Some(10),
        };
        let parsed = parse_request(req.to_json().render().as_bytes()).unwrap();
        assert_eq!(parsed, req);
        let bare = RouteRequest {
            id: 7,
            net: net3(),
            deadline_ms: None,
        };
        let parsed = parse_request(bare.to_json().render().as_bytes()).unwrap();
        assert_eq!(parsed, bare);
    }

    #[test]
    fn reroute_requests_round_trip_for_every_edit_kind() {
        let kinds = [
            DeltaKind::MovePin { index: 1, to: Point::new(6, 8) },
            DeltaKind::AddSink { at: Point::new(2, 2) },
            DeltaKind::RemoveSink { index: 0 },
            DeltaKind::Translate { dx: -3, dy: 7 },
            DeltaKind::BlockageMask { min: Point::new(1, 1), max: Point::new(7, 7) },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let req = RerouteRequest {
                id: 10 + i as u64,
                delta: NetDelta::new(net3(), kind),
                prior_edits: i as u32,
                deadline_ms: if i % 2 == 0 { Some(8) } else { None },
            };
            let payload = req.to_json().render();
            let parsed = parse_reroute_request(payload.as_bytes()).unwrap();
            assert_eq!(parsed, req, "kind {}", kind.label());
            // The verb dispatcher sends it down the reroute path.
            match parse_any_request(payload.as_bytes()).unwrap() {
                Request::Reroute(r) => assert_eq!(r, req),
                other => panic!("edit frame took the wrong path: {other:?}"),
            }
        }
        // A plain route frame still takes the route path.
        let plain = RouteRequest { id: 1, net: net3(), deadline_ms: None };
        match parse_any_request(plain.to_json().render().as_bytes()).unwrap() {
            Request::Route(r) => assert_eq!(r, plain),
            other => panic!("route frame took the wrong path: {other:?}"),
        }
    }

    #[test]
    fn malformed_reroutes_name_the_missing_piece() {
        let m = parse_reroute_request(br#"{"id": 4, "base": [[0,0],[1,1]]}"#).unwrap_err();
        assert_eq!(m.id, 4);
        assert!(m.detail.contains("edit"), "{}", m.detail);
        let m = parse_reroute_request(
            br#"{"id": 5, "base": [[0,0],[1,1]], "edit": {"kind": "teleport"}}"#,
        )
        .unwrap_err();
        assert!(m.detail.contains("teleport"), "{}", m.detail);
        let m = parse_reroute_request(
            br#"{"id": 6, "base": [[0,0],[1,1]], "edit": {"kind": "move-pin", "index": 0}}"#,
        )
        .unwrap_err();
        assert!(m.detail.contains("\"to\""), "{}", m.detail);
        let m = parse_reroute_request(
            br#"{"id": 7, "base": [[0,0]], "edit": {"kind": "translate", "dx": 1, "dy": 1}}"#,
        )
        .unwrap_err();
        assert!(m.detail.contains("invalid net"), "{}", m.detail);
    }

    #[test]
    fn malformed_requests_recover_the_id_when_possible() {
        let m = parse_request(br#"{"id": 9, "net": "nope"}"#).unwrap_err();
        assert_eq!(m.id, 9);
        assert!(m.detail.contains("net"));
        let m = parse_request(b"not json").unwrap_err();
        assert_eq!(m.id, 0);
        // A degenerate net (degree < 2) is malformed at the wire layer.
        let m = parse_request(br#"{"id": 3, "net": [[0,0]]}"#).unwrap_err();
        assert_eq!(m.id, 3);
        assert!(m.detail.contains("invalid net"));
    }

    #[test]
    fn outcome_json_carries_frontier_provenance_and_trace() {
        let engine = patlabor::Engine::with_table(
            patlabor::LutBuilder::new(4).threads(2).build(),
        );
        let outcome = engine.route(&net3()).unwrap();
        let json = outcome_to_json(5, &outcome);
        assert_eq!(json.get("id").unwrap().as_u64(), Some(5));
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(json.get("degree").unwrap().as_i64(), Some(3));
        assert_eq!(json.get("source").unwrap().as_str(), Some("exact-lut"));
        assert_eq!(json.get("rung").unwrap().as_str(), Some("lut"));
        assert_eq!(json.get("degraded").unwrap().as_bool(), Some(false));
        let frontier = json.get("frontier").unwrap().as_array().unwrap();
        assert_eq!(frontier.len(), outcome.frontier.len());
        for ((cost, _), point) in outcome.frontier.iter().zip(frontier) {
            assert_eq!(point.get("w").unwrap().as_i64(), Some(cost.wirelength));
            assert_eq!(point.get("d").unwrap().as_i64(), Some(cost.delay));
        }
        let trace = json.get("trace").unwrap().as_array().unwrap();
        assert_eq!(trace.last().unwrap().as_str(), Some("lut:served"));
        // The rendered form is valid JSON.
        assert!(crate::json::parse(&json.render()).is_ok());
    }

    #[test]
    fn error_vocabulary_is_the_documented_one() {
        assert_eq!(
            overloaded_json(1, 5).get("error").unwrap().as_str(),
            Some("overloaded")
        );
        assert_eq!(
            overloaded_json(1, 5).get("retry_after_ms").unwrap().as_i64(),
            Some(5)
        );
        assert_eq!(
            shutting_down_json(2).get("error").unwrap().as_str(),
            Some("shutting-down")
        );
        let m = MalformedRequest { id: 3, detail: "x".to_string() };
        assert_eq!(malformed_json(&m).get("error").unwrap().as_str(), Some("malformed"));
        assert_eq!(
            evicted_json(4, "read stall").get("error").unwrap().as_str(),
            Some("evicted")
        );
        assert_eq!(
            evicted_json(4, "read stall").get("detail").unwrap().as_str(),
            Some("read stall")
        );
        assert_eq!(
            reloading_json(5).get("error").unwrap().as_str(),
            Some("reloading")
        );
        assert_eq!(
            reload_failed_json(6, "bad checksum").get("error").unwrap().as_str(),
            Some("reload-failed")
        );
        let ok = reload_ok_json(7, 3);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(ok.get("epoch").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn reload_requests_round_trip_and_dispatch() {
        let req = ReloadRequest {
            id: 11,
            path: "/tmp/next.plut".to_string(),
        };
        let payload = req.to_json().render();
        assert_eq!(parse_reload_request(payload.as_bytes()).unwrap(), req);
        match parse_any_request(payload.as_bytes()).unwrap() {
            Request::Reload(r) => assert_eq!(r, req),
            other => panic!("reload frame took the wrong path: {other:?}"),
        }
        // A non-string reload value is malformed with the id recovered.
        let m = parse_any_request(br#"{"id": 12, "reload": 7}"#).unwrap_err();
        assert_eq!(m.id, 12);
        assert!(m.detail.contains("reload"), "{}", m.detail);
    }
}
