//! Minimal HTTP/1.1 adapter: `GET /metrics`, `GET /healthz`,
//! `POST /route`, and `POST /reroute`.
//!
//! This is deliberately a sliver of HTTP — enough for a Prometheus
//! scraper and a curl-driven smoke test, nothing more. One thread per
//! connection, keep-alive honoured, request lines and headers capped
//! at 8 KiB, bodies capped at [`MAX_FRAME`]. The route path shares the
//! socket protocol's request/response JSON verbatim ([`parse_request`]
//! on the body, the same reply object in the response), so a request
//! that works over the framed socket works over `curl -d` unchanged —
//! the adapter adds transport, never semantics.
//!
//! [`parse_request`]: crate::wire::parse_request

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::chaos::TransportFaultKind;
use crate::metrics::Metrics;
use crate::server::{self, Shared};
use crate::wire::MAX_FRAME;

/// Longest accepted request line or header line, bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

struct Request {
    method: String,
    path: String,
    keep_alive: bool,
    body: Vec<u8>,
}

struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn text(status: u16, reason: &'static str, body: &str) -> Self {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
        }
    }
}

/// The HTTP acceptor body, spawned by [`crate::server::serve`].
pub(crate) fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if server::is_draining(shared) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = server::next_conn_id(shared);
        // Same watchdog deadlines as the socket protocol. For HTTP the
        // read deadline doubles as a keep-alive idle cap: a connection
        // that sends nothing for a full stall budget is closed (HTTP
        // clients reconnect; framed-protocol clients are the ones with
        // legitimate long-lived idle connections).
        let _ = stream.set_read_timeout(Some(shared.config.read_stall));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        server::register_conn(shared, conn_id, &stream);
        let worker = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("patlabor-http-{conn_id}"))
                .spawn(move || handle_conn(&shared, conn_id, stream))
        };
        if let Ok(handle) = worker {
            server::register_thread(shared, handle);
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let chaos = &shared.config.chaos;
    if let Ok(read_half) = stream.try_clone() {
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let mut seq = 0u64;
        while let Ok(Some(request)) = read_request(&mut reader) {
            if !chaos.is_empty() && chaos.fires(TransportFaultKind::DelayRead, conn_id, seq)
            {
                Metrics::add(
                    &shared.metrics.chaos_injected[TransportFaultKind::DelayRead.index()],
                    1,
                );
                std::thread::sleep(chaos.delay());
            }
            let keep_alive = request.keep_alive;
            let response = dispatch(shared, conn_id, &request);
            if let Some(kind) = chaos.write_fault(conn_id, seq) {
                Metrics::add(&shared.metrics.chaos_injected[kind.index()], 1);
                inject_response_fault(kind, &mut writer, &response, chaos.delay());
                // Crash-only: a damaged response is only ever seen on a
                // connection that closes right after.
                break;
            }
            seq += 1;
            if write_response(&mut writer, &response, keep_alive).is_err() {
                break;
            }
            if !keep_alive {
                break;
            }
        }
        // Close before deregistering so the peer's EOF is immediate
        // (the registry clone would otherwise hold the socket open).
        let _ = writer.flush();
        let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
    }
    server::deregister_conn(shared, conn_id);
}

/// The HTTP mirror of the framed writer's fault injection: the torn
/// and stalled variants advertise the full `Content-Length` but send
/// half the body, so the client's framing layer (not just its parser)
/// must notice the damage.
fn inject_response_fault(
    kind: TransportFaultKind,
    writer: &mut BufWriter<TcpStream>,
    response: &Response,
    delay: std::time::Duration,
) {
    let torn = |writer: &mut BufWriter<TcpStream>| {
        let _ = write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            response.status,
            response.reason,
            response.content_type,
            response.body.len(),
        );
        let _ = writer.write_all(&response.body[..response.body.len() / 2]);
        let _ = writer.flush();
    };
    match kind {
        TransportFaultKind::Disconnect => {}
        TransportFaultKind::TornWrite => torn(writer),
        TransportFaultKind::StallWrite => {
            torn(writer);
            std::thread::sleep(delay);
        }
        TransportFaultKind::CorruptWrite => {
            let mut corrupted = response.body.clone();
            for byte in corrupted.iter_mut().take(8) {
                *byte ^= 0xA5;
            }
            let damaged = Response {
                status: response.status,
                reason: response.reason,
                content_type: response.content_type,
                body: corrupted,
            };
            let _ = write_response(writer, &damaged, false);
        }
        TransportFaultKind::DelayRead => {}
    }
}

fn dispatch(shared: &Arc<Shared>, conn_id: u64, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => Response::text(200, "OK", &server::render_metrics(shared)),
        ("GET", "/healthz") => Response::text(200, "OK", "ok\n"),
        ("POST", "/route") => Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: server::http_route(shared, conn_id, &request.body),
        },
        ("POST", "/reroute") => Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: server::http_reroute(shared, conn_id, &request.body),
        },
        ("GET" | "POST", _) => Response::text(404, "Not Found", "not found\n"),
        _ => Response::text(405, "Method Not Allowed", "method not allowed\n"),
    }
}

/// Reads one request. `Ok(None)` on clean EOF before a request line.
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed request line"));
    };
    let method = method.to_string();
    let path = path.to_string();
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for _ in 0..MAX_HEADERS {
        let Some(header) = read_line(reader)? else {
            return Err(bad("eof in headers"));
        };
        if header.is_empty() {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            return Ok(Some(Request {
                method,
                path,
                keep_alive,
                body,
            }));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            let n: usize = value.parse().map_err(|_| bad("bad content-length"))?;
            if n > MAX_FRAME {
                return Err(bad("body too large"));
            }
            content_length = n;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    Err(bad("too many headers"))
}

/// One CRLF-terminated line, trimmed, capped at [`MAX_LINE`].
/// `Ok(None)` on EOF with nothing read.
fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader.by_ref().take(MAX_LINE).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(bad("line too long or torn"));
    }
    Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()))
}

fn write_response(
    writer: &mut BufWriter<TcpStream>,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(&response.body)?;
    writer.flush()
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}
