//! The coalescing socket server.
//!
//! # Architecture
//!
//! ```text
//! conn reader ──┐                      ┌── conn writer (mpsc drain)
//! conn reader ──┼─► bounded queue ─► batcher ─► route_batch_sessions
//! conn reader ──┘   (admission)        │            (work stealing)
//!                                      └─► metrics + report fold
//! ```
//!
//! One reader thread per connection parses frames and **admits** them
//! into the shared bounded queue: a full queue rejects immediately with
//! `"overloaded"` + `retry_after_ms` (the request is never routed, the
//! queue never grows past `queue_depth` — memory is bounded by
//! construction), a draining server rejects with `"shutting-down"`,
//! and an unparseable frame answers `"malformed"` without touching the
//! queue. Rejections are written through the same per-connection
//! channel as real replies, so one writer thread per connection owns
//! the socket's write half and frames are never interleaved.
//!
//! The single **batcher** thread turns the queue into
//! [`Engine::route_batch_sessions`] calls. When work arrives it opens a
//! coalescing window and closes it at the first of: `max_batch`
//! requests accumulated, the window duration elapsing **on the
//! engine's clock**, or shutdown draining. Reading the window from the
//! engine clock is what makes the whole pipeline testable: under a
//! [`VirtualClock`] time never passes, so a window only closes by
//! count or by drain, and tests can stage any arrival interleaving
//! they want without a single sleep-based race.
//!
//! [`VirtualClock`]: patlabor::VirtualClock
//!
//! # Shutdown
//!
//! [`Server::begin_shutdown`] flips `draining` under the queue lock
//! (so no admission can race past it), pokes the acceptor awake with a
//! loopback connect, and half-closes every registered connection's
//! read side. The batcher then drains what was already admitted —
//! in-flight windows complete, nothing queued is dropped — and
//! [`Server::shutdown`] joins everything and returns the final
//! [`ResilienceReport`].
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patlabor::{
    DeltaJob, Engine, Net, NetDelta, ResilienceReport, RouteResult, Rung, RungOutcome, Session,
};

use crate::chaos::{TransportFaultKind, TransportPlane};
use crate::http;
use crate::metrics::Metrics;
use crate::wire::{
    evicted_json, malformed_json, overloaded_json, parse_any_request, parse_request,
    parse_reroute_request, reload_failed_json, reload_ok_json, reloading_json, result_to_json,
    shutting_down_json, write_frame, Request, MAX_FRAME,
};

/// Server tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Socket-protocol bind address. Port 0 picks a free port
    /// (read it back from [`Server::addr`]).
    pub addr: String,
    /// HTTP adapter bind address (`/metrics`, `/healthz`, `POST
    /// /route`); `None` disables the adapter.
    pub http_addr: Option<String>,
    /// Worker threads per coalescing window (0 ⇒ all hardware threads).
    pub threads: usize,
    /// Coalescing window: how long the batcher waits for more requests
    /// after the first one arrives, measured on the engine's clock.
    /// `Duration::ZERO` disables coalescing (every request routes in
    /// its own batch).
    pub window: Duration,
    /// Hard cap on requests per window (closes the window early).
    pub max_batch: usize,
    /// Admission bound: requests queued beyond this are rejected with
    /// `"overloaded"`. This is the server's entire buffering — there is
    /// no hidden unbounded buffer behind it.
    pub queue_depth: usize,
    /// The `retry_after_ms` hint sent with `"overloaded"` rejections
    /// before any window has closed (cold start). Once the batcher has
    /// drained at least one window, the hint is computed instead: queue
    /// occupancy × the recent per-net drain time, clamped to
    /// `[1, RETRY_AFTER_CAP_MS]` — so a client backing off by the hint
    /// retries roughly when the queue has actually drained.
    pub retry_after_ms: u64,
    /// Mid-frame read stall budget (the watchdog): a peer that has
    /// sent part of a frame and then stalls longer than this is
    /// evicted with a `read` timeout metric and a closed connection.
    /// A connection **idle at a frame boundary** may wait forever —
    /// long-lived clients that route occasionally are legitimate.
    pub read_stall: Duration,
    /// Socket write deadline: a peer that stops reading its replies
    /// holds the writer at most this long before the connection is
    /// closed (`write` timeout metric). This is what keeps one stalled
    /// peer from holding drain hostage.
    pub write_timeout: Duration,
    /// Bounded per-connection reply buffer, in frames. When a client
    /// falls this far behind its replies, the batcher drops the reply
    /// and evicts the connection instead of blocking the window —
    /// per-connection memory is bounded by construction.
    pub reply_buffer: usize,
    /// The transport fault plane (chaos injection). Empty — the
    /// default — means every hook short-circuits; see
    /// [`TransportPlane`].
    pub chaos: TransportPlane,
}

/// Upper clamp on computed `retry_after_ms` hints. A second of backoff
/// is already "come back much later"; anything larger would just park
/// clients on a transient spike.
pub const RETRY_AFTER_CAP_MS: u64 = 1_000;

/// The backoff hint for an `"overloaded"` rejection: how long the
/// current occupancy takes to drain at the recently observed rate.
///
/// `drain_ns_per_net == 0` means no window has closed yet — fall back
/// to the configured hint. Otherwise `ceil(occupancy × per-net ns)` in
/// milliseconds, clamped to `[1, RETRY_AFTER_CAP_MS]`. Monotone in
/// both occupancy and drain time by construction (a fuller queue or a
/// slower engine can only raise the hint until the cap).
fn computed_retry_after_ms(occupancy: usize, drain_ns_per_net: u64, fallback_ms: u64) -> u64 {
    if drain_ns_per_net == 0 {
        return fallback_ms.max(1);
    }
    let drain_ns = occupancy as u128 * drain_ns_per_net as u128;
    let ms = u64::try_from(drain_ns.div_ceil(1_000_000)).unwrap_or(u64::MAX);
    ms.clamp(1, RETRY_AFTER_CAP_MS)
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_addr: None,
            threads: 0,
            window: Duration::from_micros(200),
            max_batch: 64,
            queue_depth: 1024,
            retry_after_ms: 5,
            read_stall: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            reply_buffer: 128,
            chaos: TransportPlane::default(),
        }
    }
}

/// What an admitted request asks the engine to do: route a net from
/// scratch, or replay an ECO edit against a prior route.
enum Job {
    Route(Net),
    Reroute { delta: NetDelta, prior_edits: u32 },
}

/// One admitted request waiting for a window.
struct Pending {
    job: Job,
    session: Session,
    enqueued: Instant,
    /// Bounded: a full buffer means the client stopped reading and is
    /// evicted rather than buffered into.
    reply: mpsc::SyncSender<Vec<u8>>,
    /// The owning connection, for slow-client eviction through the
    /// registry.
    conn: u64,
}

/// Queue state guarded by one mutex: the pending requests and the
/// draining flag. Keeping `draining` under the same lock as the queue
/// closes the shutdown race — an admission that saw `draining ==
/// false` has already enqueued before `begin_shutdown` can flip it, so
/// the batcher is guaranteed to drain it.
struct QueueState {
    pending: VecDeque<Pending>,
    draining: bool,
}

pub(crate) struct Shared {
    engine: Engine,
    pub(crate) config: ServeConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    pub(crate) metrics: Metrics,
    report: Mutex<ResilienceReport>,
    /// Live connections by id, for shutdown unblocking. Entries are
    /// removed when the connection finishes — keeping a clone of the
    /// fd here past close would hold the socket ESTABLISHED (the peer
    /// never sees FIN) and leak one fd per connection served.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Per-connection thread handles, joined at shutdown; finished
    /// handles are pruned on registration so the vec tracks live
    /// connections, not lifetime connection count.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    /// Recent per-net window drain time, nanoseconds (EWMA, α = ¼).
    /// Zero until the first window closes; read by admission control to
    /// compute `retry_after_ms`.
    drain_ns_per_net: AtomicU64,
    /// Guards against concurrent hot reloads: a second reload verb
    /// while one validates answers `"reloading"` instead of racing.
    reload_in_flight: AtomicBool,
}

/// Mutex lock that shrugs off poisoning: the protected state (a queue
/// of requests, a metrics report) stays coherent even if a holder
/// panicked between operations, and a serving daemon must keep
/// answering rather than propagate the poison.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a request was turned away at admission.
enum Rejection {
    /// Queue full; carries the computed backoff hint.
    Overloaded { retry_after_ms: u64 },
    ShuttingDown,
}

impl Shared {
    /// Admission control: enqueue or reject, atomically with the
    /// draining check.
    fn submit(&self, p: Pending) -> Result<(), Rejection> {
        let mut q = lock(&self.queue);
        if q.draining {
            return Err(Rejection::ShuttingDown);
        }
        if q.pending.len() >= self.config.queue_depth {
            let retry_after_ms = computed_retry_after_ms(
                q.pending.len(),
                self.drain_ns_per_net.load(std::sync::atomic::Ordering::Relaxed),
                self.config.retry_after_ms,
            );
            return Err(Rejection::Overloaded { retry_after_ms });
        }
        q.pending.push_back(p);
        Metrics::add(&self.metrics.requests, 1);
        self.metrics
            .queue_depth
            .store(q.pending.len() as u64, std::sync::atomic::Ordering::Relaxed);
        drop(q);
        self.queue_cv.notify_all();
        Ok(())
    }

    /// The batcher body: accumulate windows, close them into the batch
    /// driver, reply, fold metrics. Returns when draining and empty.
    fn run_batcher(&self) {
        let clock = Arc::clone(self.engine.clock());
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.config.threads
        };
        loop {
            let mut q = lock(&self.queue);
            while q.pending.is_empty() && !q.draining {
                q = self
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if q.pending.is_empty() && q.draining {
                return;
            }
            // Window accumulation, timed on the engine clock. Under a
            // VirtualClock `elapsed` never grows, so the window closes
            // only by max_batch or drain — the mechanism the
            // determinism and shutdown tests drive.
            let opened = clock.now();
            while q.pending.len() < self.config.max_batch && !q.draining {
                let elapsed = clock.now().saturating_sub(opened);
                if elapsed >= self.config.window {
                    break;
                }
                let remaining = self.config.window - elapsed;
                // Cap the OS wait so a virtual clock (whose `remaining`
                // never shrinks) still re-checks drain/max_batch
                // promptly.
                let wait = remaining.min(Duration::from_millis(5));
                let (guard, _) = self
                    .queue_cv
                    .wait_timeout(q, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
            let take = q.pending.len().min(self.config.max_batch);
            let batch: Vec<Pending> = q.pending.drain(..take).collect();
            self.metrics
                .queue_depth
                .store(q.pending.len() as u64, std::sync::atomic::Ordering::Relaxed);
            drop(q);
            self.close_window(batch, threads);
        }
    }

    /// Routes one closed window and replies per request. A window may
    /// mix fresh routes and ECO reroutes: each kind goes through its
    /// own batch-driver call and the replies are reassembled in the
    /// window's arrival order.
    fn close_window(&self, batch: Vec<Pending>, threads: usize) {
        if batch.is_empty() {
            return;
        }
        Metrics::add(&self.metrics.batches, 1);
        Metrics::add(&self.metrics.batched_nets, batch.len() as u64);
        let started = Instant::now();
        let mut fresh = Vec::new();
        let mut fresh_slots = Vec::new();
        let mut deltas = Vec::new();
        let mut delta_slots = Vec::new();
        for (slot, p) in batch.iter().enumerate() {
            match &p.job {
                Job::Route(net) => {
                    fresh.push((net.clone(), p.session));
                    fresh_slots.push(slot);
                }
                Job::Reroute { delta, prior_edits } => {
                    deltas.push(DeltaJob {
                        delta: delta.clone(),
                        prior_edits: *prior_edits,
                        session: p.session,
                    });
                    delta_slots.push(slot);
                }
            }
        }
        let mut results: Vec<Option<RouteResult>> = Vec::new();
        results.resize_with(batch.len(), || None);
        if !fresh.is_empty() {
            let (routed, _stats) = self.engine.route_batch_sessions(&fresh, threads);
            for (slot, result) in fresh_slots.into_iter().zip(routed) {
                results[slot] = Some(result);
            }
        }
        if !deltas.is_empty() {
            let (rerouted, _stats) = self.engine.route_batch_deltas(&deltas, threads);
            for (slot, result) in delta_slots.into_iter().zip(rerouted) {
                results[slot] = Some(result);
            }
        }
        // Fold the window's wall time into the drain-rate EWMA that
        // admission control prices rejections with.
        let per_net_ns = u64::try_from(
            started.elapsed().as_nanos() / batch.len() as u128,
        )
        .unwrap_or(u64::MAX)
        .max(1);
        let ordering = std::sync::atomic::Ordering::Relaxed;
        let old = self.drain_ns_per_net.load(ordering);
        let blended = if old == 0 {
            per_net_ns
        } else {
            old - old / 4 + per_net_ns / 4
        };
        self.drain_ns_per_net.store(blended.max(1), ordering);
        let mut report = lock(&self.report);
        for (pending, result) in batch.iter().zip(&results) {
            let Some(result) = result else { continue };
            report.record(result);
            self.fold_result_metrics(pending, result);
            let payload = result_to_json(pending.session.id, result).render();
            match pending.reply.try_send(payload.into_bytes()) {
                Ok(()) => {}
                // The client stopped draining replies: drop the reply
                // and close its connection rather than park the batcher
                // (every other window would pay for one slow peer). The
                // crash-only contract holds — the request is not
                // answered, but its connection is visibly closed.
                Err(mpsc::TrySendError::Full(_)) => {
                    Metrics::add(&self.metrics.evicted, 1);
                    if let Some(conn) = lock(&self.conns).get(&pending.conn) {
                        let _ = conn.shutdown(Shutdown::Both);
                    }
                }
                // Receiver gone (client disconnected mid-flight): not an
                // error; the route still counted.
                Err(mpsc::TrySendError::Disconnected(_)) => {}
            }
        }
    }

    fn fold_result_metrics(&self, pending: &Pending, result: &RouteResult) {
        match result {
            Ok(outcome) => {
                Metrics::add(&self.metrics.responses, 1);
                let trace = &outcome.provenance.trace;
                if let Some(rung) = trace.served_by() {
                    Metrics::add(&self.metrics.served_by[rung.index()], 1);
                }
                if trace
                    .attempts()
                    .iter()
                    .any(|a| a.outcome == RungOutcome::DeadlineExceeded)
                {
                    Metrics::add(&self.metrics.deadline_hits, 1);
                }
                let ns = pending.enqueued.elapsed().as_nanos();
                self.metrics
                    .latency
                    .record(u64::try_from(ns).unwrap_or(u64::MAX));
            }
            Err(_) => Metrics::add(&self.metrics.route_errors, 1),
        }
    }

    /// One connection's read loop: parse frames (under the mid-frame
    /// stall watchdog), admit, send immediate rejections through the
    /// writer channel. `conn_id` keys the chaos plane's read-side
    /// decisions and the eviction registry.
    fn run_reader(&self, conn_id: u64, stream: TcpStream, reply_tx: mpsc::SyncSender<Vec<u8>>) {
        let chaos = &self.config.chaos;
        let mut reader = io::BufReader::new(stream);
        let mut frame_seq = 0u64;
        loop {
            let payload = match read_frame_watchdog(&mut reader) {
                Ok(Some(p)) => p,
                // Clean EOF, torn frame or reset: either way this
                // connection is done reading.
                Ok(None) | Err(ReadFrameError::Io) => return,
                // The watchdog fired: the peer stalled mid-frame past
                // the budget. Best-effort eviction notice, then close
                // the read side; replies already owed still flow out.
                Err(ReadFrameError::Stalled) => {
                    Metrics::add(&self.metrics.read_timeouts, 1);
                    let notice = evicted_json(0, "mid-frame read stalled past the watchdog budget");
                    let _ = reply_tx.try_send(notice.render().into_bytes());
                    return;
                }
            };
            if !chaos.is_empty() && chaos.fires(TransportFaultKind::DelayRead, conn_id, frame_seq) {
                Metrics::add(
                    &self.metrics.chaos_injected[TransportFaultKind::DelayRead.index()],
                    1,
                );
                std::thread::sleep(chaos.delay());
            }
            frame_seq += 1;
            let request = match parse_any_request(&payload) {
                Ok(r) => r,
                Err(m) => {
                    Metrics::add(&self.metrics.malformed, 1);
                    if reply_tx.try_send(malformed_json(&m).render().into_bytes()).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let (id, deadline_ms, job) = match request {
                Request::Route(r) => (r.id, r.deadline_ms, Job::Route(r.net)),
                Request::Reroute(r) => (
                    r.id,
                    r.deadline_ms,
                    Job::Reroute { delta: r.delta, prior_edits: r.prior_edits },
                ),
                // The admin verb is handled inline on this connection's
                // reader thread: validation is file I/O, never touches
                // the batcher, and a per-connection stall here harms
                // only the connection that asked for it.
                Request::Reload(r) => {
                    let json = match self.reload(&r.path) {
                        ReloadOutcome::Swapped(epoch) => reload_ok_json(r.id, epoch),
                        ReloadOutcome::InFlight => reloading_json(r.id),
                        ReloadOutcome::Rejected(detail) => reload_failed_json(r.id, &detail),
                    };
                    if reply_tx.try_send(json.render().into_bytes()).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let mut session = Session::new(id);
            if let Some(ms) = deadline_ms {
                session = session.with_deadline(Duration::from_millis(ms));
            }
            let pending = Pending {
                job,
                session,
                enqueued: Instant::now(),
                reply: reply_tx.clone(),
                conn: conn_id,
            };
            match self.submit(pending) {
                Ok(()) => {}
                Err(Rejection::Overloaded { retry_after_ms }) => {
                    Metrics::add(&self.metrics.rejected, 1);
                    let json = overloaded_json(id, retry_after_ms);
                    if reply_tx.try_send(json.render().into_bytes()).is_err() {
                        return;
                    }
                }
                Err(Rejection::ShuttingDown) => {
                    Metrics::add(&self.metrics.shed_shutdown, 1);
                    if reply_tx.try_send(shutting_down_json(id).render().into_bytes()).is_err() {
                        return;
                    }
                }
            }
        }
    }

    /// The guarded hot-reload path shared by the wire verb and
    /// [`Server::reload_table`] (the CLI's SIGHUP handler). Updates the
    /// reload metrics and the table-epoch gauge; on any rejection the
    /// old table keeps serving.
    pub(crate) fn reload(&self, path: &str) -> ReloadOutcome {
        if self.reload_in_flight.swap(true, Ordering::AcqRel) {
            return ReloadOutcome::InFlight;
        }
        let outcome = match self.engine.reload_table(path) {
            Ok(epoch) => {
                Metrics::add(&self.metrics.reloads, 1);
                self.metrics.table_epoch.store(epoch, Ordering::Relaxed);
                ReloadOutcome::Swapped(epoch)
            }
            Err(e) => {
                Metrics::add(&self.metrics.reload_failed, 1);
                ReloadOutcome::Rejected(e.to_string())
            }
        };
        self.reload_in_flight.store(false, Ordering::Release);
        outcome
    }
}

/// What a hot-reload attempt did.
pub(crate) enum ReloadOutcome {
    /// The candidate passed validation and is now serving; carries the
    /// new table epoch.
    Swapped(u64),
    /// Another reload is validating right now; retry shortly.
    InFlight,
    /// The candidate was rejected; the old table keeps serving.
    Rejected(String),
}

/// Why [`read_frame_watchdog`] gave up on a connection. The I/O
/// details are deliberately dropped: the reader's only move either way
/// is to stop, and only the stall distinction changes metrics.
enum ReadFrameError {
    /// The mid-frame stall watchdog fired.
    Stalled,
    /// Ordinary I/O failure (reset, torn frame, oversized prefix).
    Io,
}

/// [`crate::wire::read_frame`] under the mid-frame stall watchdog.
///
/// The socket's read timeout (set at accept to the configured
/// `read_stall`) converts a stalled peer into `WouldBlock`/`TimedOut`
/// errors. At a frame boundary with nothing read those are an **idle**
/// connection and we simply wait again — long-lived clients are
/// legitimate. Once any byte of a frame has arrived, a timeout means
/// the peer stalled mid-frame past the budget: that is the attack (or
/// failure) the watchdog exists for, and the connection is evicted.
fn read_frame_watchdog(
    reader: &mut io::BufReader<TcpStream>,
) -> Result<Option<Vec<u8>>, ReadFrameError> {
    let mut prefix = [0u8; 4];
    if read_exact_watchdog(reader, &mut prefix, true)?.is_none() {
        return Ok(None);
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ReadFrameError::Io);
    }
    let mut payload = vec![0u8; len];
    read_exact_watchdog(reader, &mut payload, false)?;
    Ok(Some(payload))
}

/// Fills `buf` from the reader. `idle_ok` marks a frame boundary:
/// there, a clean EOF returns `None` and timeouts loop forever;
/// mid-frame, EOF is an I/O error and a timeout trips the watchdog.
fn read_exact_watchdog(
    reader: &mut io::BufReader<TcpStream>,
    buf: &mut [u8],
    idle_ok: bool,
) -> Result<Option<()>, ReadFrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && idle_ok {
                    return Ok(None);
                }
                return Err(ReadFrameError::Io);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 && idle_ok {
                    continue;
                }
                return Err(ReadFrameError::Stalled);
            }
            Err(_) => return Err(ReadFrameError::Io),
        }
    }
    Ok(Some(()))
}

/// Handles a request payload arriving over the HTTP adapter (`POST
/// /route`): same admission, same queue, but the reply is awaited
/// inline (HTTP is request/response, not pipelined).
pub(crate) fn http_route(shared: &Arc<Shared>, conn_id: u64, body: &[u8]) -> Vec<u8> {
    let request = match parse_request(body) {
        Ok(r) => r,
        Err(m) => {
            Metrics::add(&shared.metrics.malformed, 1);
            return malformed_json(&m).render().into_bytes();
        }
    };
    submit_and_await(shared, conn_id, request.id, request.deadline_ms, Job::Route(request.net))
}

/// The HTTP adapter's ECO verb (`POST /reroute`): same admission, same
/// coalescing windows as the socket protocol's reroute frames.
pub(crate) fn http_reroute(shared: &Arc<Shared>, conn_id: u64, body: &[u8]) -> Vec<u8> {
    let request = match parse_reroute_request(body) {
        Ok(r) => r,
        Err(m) => {
            Metrics::add(&shared.metrics.malformed, 1);
            return malformed_json(&m).render().into_bytes();
        }
    };
    submit_and_await(
        shared,
        conn_id,
        request.id,
        request.deadline_ms,
        Job::Reroute { delta: request.delta, prior_edits: request.prior_edits },
    )
}

/// Shared HTTP tail: admit one job and await its reply inline. A
/// capacity of one is always enough — HTTP is request/response, so at
/// most one reply is ever owed and `try_send` in the batcher can never
/// find this channel full.
fn submit_and_await(
    shared: &Arc<Shared>,
    conn_id: u64,
    id: u64,
    deadline_ms: Option<u64>,
    job: Job,
) -> Vec<u8> {
    let mut session = Session::new(id);
    if let Some(ms) = deadline_ms {
        session = session.with_deadline(Duration::from_millis(ms));
    }
    let (tx, rx) = mpsc::sync_channel(1);
    let pending = Pending {
        job,
        session,
        enqueued: Instant::now(),
        reply: tx,
        conn: conn_id,
    };
    match shared.submit(pending) {
        Ok(()) => match rx.recv() {
            Ok(payload) => payload,
            Err(_) => shutting_down_json(id).render().into_bytes(),
        },
        Err(Rejection::Overloaded { retry_after_ms }) => {
            Metrics::add(&shared.metrics.rejected, 1);
            overloaded_json(id, retry_after_ms).render().into_bytes()
        }
        Err(Rejection::ShuttingDown) => {
            Metrics::add(&shared.metrics.shed_shutdown, 1);
            shutting_down_json(id).render().into_bytes()
        }
    }
}

pub(crate) fn render_metrics(shared: &Shared) -> String {
    shared
        .metrics
        .render(shared.engine.cache_stats().as_ref())
}

/// Whether shutdown draining has begun (checked by the acceptors).
pub(crate) fn is_draining(shared: &Shared) -> bool {
    lock(&shared.queue).draining
}

/// Registers a connection for shutdown unblocking. Must be paired
/// with [`deregister_conn`] when the connection finishes.
pub(crate) fn register_conn(shared: &Shared, id: u64, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(id, clone);
    }
}

/// Drops the registry's handle on a finished connection, releasing
/// the fd so the peer sees FIN once the conn threads drop theirs.
pub(crate) fn deregister_conn(shared: &Shared, id: u64) {
    lock(&shared.conns).remove(&id);
}

/// Registers a per-connection thread for joining at shutdown,
/// reaping already-finished ones so the registry stays proportional
/// to live connections.
pub(crate) fn register_thread(shared: &Shared, handle: JoinHandle<()>) {
    let mut threads = lock(&shared.conn_threads);
    threads.retain(|h| !h.is_finished());
    threads.push(handle);
}

/// Hands out a fresh connection id (thread naming only).
pub(crate) fn next_conn_id(shared: &Shared) -> u64 {
    shared
        .next_conn
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A running server. Dropping it shuts it down (draining the queue).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    batcher: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    http_acceptor: Option<JoinHandle<()>>,
}

/// What the server did over its lifetime, returned by
/// [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// The ladder/fault aggregate over every routed request, cache
    /// health stamped.
    pub report: ResilienceReport,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Frames rejected as malformed.
    pub malformed: u64,
    /// Successful route responses sent.
    pub responses: u64,
    /// Responses by degradation-ladder rung; the chaos soak asserts
    /// the sum equals `responses` (no rung double-counts or leaks).
    pub served_by: [u64; Rung::COUNT],
    /// Connections evicted for a full reply buffer or a stalled read.
    pub evicted: u64,
    /// Mid-frame read watchdog firings.
    pub read_timeouts: u64,
    /// Write deadline firings (peer stopped reading).
    pub write_timeouts: u64,
    /// Transport faults injected by the chaos plane, summed over kinds.
    pub chaos_injected: u64,
}

/// Starts serving `engine` per `config`. Binds synchronously (so the
/// caller can read back [`Server::addr`]) and spawns the acceptor,
/// batcher and optional HTTP adapter threads.
pub fn serve(engine: Engine, config: ServeConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let http_listener = match &config.http_addr {
        Some(a) => Some(TcpListener::bind(a)?),
        None => None,
    };
    let http_addr = match &http_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    let shared = Arc::new(Shared {
        engine,
        config,
        queue: Mutex::new(QueueState {
            pending: VecDeque::new(),
            draining: false,
        }),
        queue_cv: Condvar::new(),
        metrics: Metrics::new(),
        report: Mutex::new(ResilienceReport::default()),
        conns: Mutex::new(HashMap::new()),
        conn_threads: Mutex::new(Vec::new()),
        next_conn: AtomicU64::new(0),
        drain_ns_per_net: AtomicU64::new(0),
        reload_in_flight: AtomicBool::new(false),
    });
    shared
        .metrics
        .table_epoch
        .store(shared.engine.table_epoch(), Ordering::Relaxed);

    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("patlabor-batcher".to_string())
            .spawn(move || shared.run_batcher())?
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("patlabor-accept".to_string())
            .spawn(move || accept_loop(&shared, &listener))?
    };

    let http_acceptor = match http_listener {
        Some(listener) => {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("patlabor-http".to_string())
                    .spawn(move || http::accept_loop(&shared, &listener))?,
            )
        }
        None => None,
    };

    Ok(Server {
        shared,
        addr,
        http_addr,
        batcher: Some(batcher),
        acceptor: Some(acceptor),
        http_acceptor: Some(http_acceptor).flatten(),
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if lock(&shared.queue).draining {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = next_conn_id(shared);
        // Watchdog deadlines on every accepted socket: the read timeout
        // is the mid-frame stall budget (idle at a frame boundary waits
        // forever, see `read_frame_watchdog`); the write timeout bounds
        // a peer that stops reading while replies are owed.
        let _ = stream.set_read_timeout(Some(shared.config.read_stall));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        register_conn(shared, conn_id, &stream);
        let (reply_tx, reply_rx) =
            mpsc::sync_channel::<Vec<u8>>(shared.config.reply_buffer.max(1));
        let write_half = stream.try_clone();
        // Writer: sole owner of the socket's write half; drains the
        // reply channel until every sender (reader + queued requests)
        // has dropped, then closes the socket so the peer sees FIN
        // after the final reply.
        let writer = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("patlabor-conn-{conn_id}-w"))
                .spawn(move || {
                    if let Ok(write_half) = write_half {
                        let mut out = io::BufWriter::new(write_half);
                        let mut frame_seq = 0u64;
                        while let Ok(payload) = reply_rx.recv() {
                            let verdict =
                                shared.config.chaos.write_fault(conn_id, frame_seq);
                            frame_seq += 1;
                            if let Some(kind) = verdict {
                                Metrics::add(
                                    &shared.metrics.chaos_injected[kind.index()],
                                    1,
                                );
                                inject_write_fault(
                                    kind,
                                    &mut out,
                                    &payload,
                                    shared.config.chaos.delay(),
                                );
                                // Every write-side fault is crash-only:
                                // the peer only ever observes a damaged
                                // frame on a connection that is closing.
                                break;
                            }
                            if let Err(e) = write_frame(&mut out, &payload) {
                                note_write_error(&shared, &e);
                                break;
                            }
                            // Flush per reply: replies are
                            // latency-sensitive and pipelining gains come
                            // from the coalescer, not from batching
                            // socket writes.
                            if let Err(e) = out.flush() {
                                note_write_error(&shared, &e);
                                break;
                            }
                        }
                        let _ = out.flush();
                        let _ = out.get_ref().shutdown(Shutdown::Both);
                    }
                    deregister_conn(&shared, conn_id);
                })
        };
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("patlabor-conn-{conn_id}-r"))
                .spawn(move || {
                    shared.run_reader(conn_id, stream, reply_tx);
                })
        };
        let mut threads = lock(&shared.conn_threads);
        if let Ok(h) = writer {
            threads.push(h);
        }
        if let Ok(h) = reader {
            threads.push(h);
        }
    }
}

/// Counts a writer-side failure against the watchdog metric when it
/// was the write deadline firing (a peer that stopped reading).
fn note_write_error(shared: &Shared, e: &io::Error) {
    if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
        Metrics::add(&shared.metrics.write_timeouts, 1);
    }
}

/// Applies one write-side transport fault to the outgoing frame. The
/// caller closes the connection immediately after, so damaged bytes
/// are only ever seen on a dying connection (crash-only contract).
fn inject_write_fault(
    kind: TransportFaultKind,
    out: &mut io::BufWriter<TcpStream>,
    payload: &[u8],
    delay: Duration,
) {
    match kind {
        // Vanish mid-reply: the peer sees the connection close with no
        // frame at all.
        TransportFaultKind::Disconnect => {}
        // Torn frame: full length prefix, half the payload, then FIN.
        TransportFaultKind::TornWrite => {
            let _ = out.write_all(&(payload.len() as u32).to_le_bytes());
            let _ = out.write_all(&payload[..payload.len() / 2]);
            let _ = out.flush();
        }
        // Partial write then stall: like a torn frame but the peer
        // waits out the delay before seeing FIN — exercises client
        // read deadlines.
        TransportFaultKind::StallWrite => {
            let _ = out.write_all(&(payload.len() as u32).to_le_bytes());
            let _ = out.write_all(&payload[..payload.len() / 2]);
            let _ = out.flush();
            std::thread::sleep(delay);
        }
        // Flipped bytes inside an otherwise well-formed frame: the
        // peer's parser, not its framing layer, must catch this.
        TransportFaultKind::CorruptWrite => {
            let mut corrupted = payload.to_vec();
            for byte in corrupted.iter_mut().take(8) {
                *byte ^= 0xA5;
            }
            let _ = write_frame(out, &corrupted);
            let _ = out.flush();
        }
        // Read-side fault; never returned by `write_fault`.
        TransportFaultKind::DelayRead => {}
    }
}

impl Server {
    /// The bound socket-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP-adapter address, when enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The live metrics plane (what `/metrics` renders).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The engine being served.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Starts draining: no new admissions, in-flight windows and
    /// everything already queued still complete. Idempotent.
    pub fn begin_shutdown(&self) {
        {
            let mut q = lock(&self.shared.queue);
            if q.draining {
                return;
            }
            q.draining = true;
        }
        self.shared.queue_cv.notify_all();
        // Poke the acceptors awake so their `incoming()` loops observe
        // the flag (accept(2) has no timeout).
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
        // Half-close every registered connection's read side: blocked
        // reader threads see EOF and exit; replies still flow out.
        for conn in lock(&self.shared.conns).values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }

    /// Drains and stops the server, returning the lifetime summary.
    pub fn shutdown(mut self) -> ServeSummary {
        self.finish()
    }

    fn finish(&mut self) -> ServeSummary {
        self.begin_shutdown();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http_acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock(&self.shared.conn_threads));
        for h in handles {
            let _ = h.join();
        }
        let report = self
            .shared
            .engine
            .stamp_report_cache_health(*lock(&self.shared.report));
        let metrics = &self.shared.metrics;
        let mut served_by = [0u64; Rung::COUNT];
        for (slot, counter) in served_by.iter_mut().zip(metrics.served_by.iter()) {
            *slot = Metrics::get(counter);
        }
        ServeSummary {
            report,
            rejected: Metrics::get(&metrics.rejected),
            malformed: Metrics::get(&metrics.malformed),
            responses: Metrics::get(&metrics.responses),
            served_by,
            evicted: Metrics::get(&metrics.evicted),
            read_timeouts: Metrics::get(&metrics.read_timeouts),
            write_timeouts: Metrics::get(&metrics.write_timeouts),
            chaos_injected: metrics.chaos_injected.iter().map(Metrics::get).sum(),
        }
    }

    /// Hot-reloads the serving table from `path` — the programmatic
    /// twin of the wire `reload` verb, used by the CLI's SIGHUP
    /// handler. Validation runs off the hot path; on any error the old
    /// table keeps serving. Returns the new table epoch on success.
    pub fn reload_table(&self, path: &str) -> Result<u64, String> {
        match self.shared.reload(path) {
            ReloadOutcome::Swapped(epoch) => Ok(epoch),
            ReloadOutcome::InFlight => Err("another reload is already in flight".to_string()),
            ReloadOutcome::Rejected(detail) => Err(detail),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            let _ = self.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: the overload hint must track how long the
    /// queue actually takes to drain, not a constant.
    #[test]
    fn retry_after_is_monotone_in_occupancy_and_drain_time() {
        // Cold start (no window closed yet) falls back to the config
        // hint, floored at 1 ms so "retry immediately" is never sent.
        assert_eq!(computed_retry_after_ms(1024, 0, 5), 5);
        assert_eq!(computed_retry_after_ms(0, 0, 0), 1);
        // 100 queued × 1 ms/net = 100 ms.
        assert_eq!(computed_retry_after_ms(100, 1_000_000, 5), 100);
        // Sub-millisecond drains round up, never to zero.
        assert_eq!(computed_retry_after_ms(1, 10_000, 5), 1);
        // Monotone in occupancy at a fixed drain rate…
        let mut last = 0;
        for occupancy in [1, 4, 64, 512, 4096] {
            let hint = computed_retry_after_ms(occupancy, 250_000, 5);
            assert!(hint >= last, "occupancy {occupancy}: {hint} < {last}");
            last = hint;
        }
        // …and in drain time at a fixed occupancy.
        let mut last = 0;
        for drain_ns in [1_000, 50_000, 1_000_000, 20_000_000] {
            let hint = computed_retry_after_ms(64, drain_ns, 5);
            assert!(hint >= last, "drain {drain_ns}: {hint} < {last}");
            last = hint;
        }
        // The documented cap bounds even pathological backlogs.
        assert_eq!(
            computed_retry_after_ms(1_000_000, u64::MAX, 5),
            RETRY_AFTER_CAP_MS
        );
    }
}
