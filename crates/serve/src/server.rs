//! The coalescing socket server.
//!
//! # Architecture
//!
//! ```text
//! conn reader ──┐                      ┌── conn writer (mpsc drain)
//! conn reader ──┼─► bounded queue ─► batcher ─► route_batch_sessions
//! conn reader ──┘   (admission)        │            (work stealing)
//!                                      └─► metrics + report fold
//! ```
//!
//! One reader thread per connection parses frames and **admits** them
//! into the shared bounded queue: a full queue rejects immediately with
//! `"overloaded"` + `retry_after_ms` (the request is never routed, the
//! queue never grows past `queue_depth` — memory is bounded by
//! construction), a draining server rejects with `"shutting-down"`,
//! and an unparseable frame answers `"malformed"` without touching the
//! queue. Rejections are written through the same per-connection
//! channel as real replies, so one writer thread per connection owns
//! the socket's write half and frames are never interleaved.
//!
//! The single **batcher** thread turns the queue into
//! [`Engine::route_batch_sessions`] calls. When work arrives it opens a
//! coalescing window and closes it at the first of: `max_batch`
//! requests accumulated, the window duration elapsing **on the
//! engine's clock**, or shutdown draining. Reading the window from the
//! engine clock is what makes the whole pipeline testable: under a
//! [`VirtualClock`] time never passes, so a window only closes by
//! count or by drain, and tests can stage any arrival interleaving
//! they want without a single sleep-based race.
//!
//! [`VirtualClock`]: patlabor::VirtualClock
//!
//! # Shutdown
//!
//! [`Server::begin_shutdown`] flips `draining` under the queue lock
//! (so no admission can race past it), pokes the acceptor awake with a
//! loopback connect, and half-closes every registered connection's
//! read side. The batcher then drains what was already admitted —
//! in-flight windows complete, nothing queued is dropped — and
//! [`Server::shutdown`] joins everything and returns the final
//! [`ResilienceReport`].
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patlabor::{DeltaJob, Engine, Net, NetDelta, ResilienceReport, RouteResult, RungOutcome, Session};

use crate::http;
use crate::metrics::Metrics;
use crate::wire::{
    malformed_json, overloaded_json, parse_any_request, parse_request, parse_reroute_request,
    read_frame, result_to_json, shutting_down_json, write_frame, Request,
};

/// Server tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Socket-protocol bind address. Port 0 picks a free port
    /// (read it back from [`Server::addr`]).
    pub addr: String,
    /// HTTP adapter bind address (`/metrics`, `/healthz`, `POST
    /// /route`); `None` disables the adapter.
    pub http_addr: Option<String>,
    /// Worker threads per coalescing window (0 ⇒ all hardware threads).
    pub threads: usize,
    /// Coalescing window: how long the batcher waits for more requests
    /// after the first one arrives, measured on the engine's clock.
    /// `Duration::ZERO` disables coalescing (every request routes in
    /// its own batch).
    pub window: Duration,
    /// Hard cap on requests per window (closes the window early).
    pub max_batch: usize,
    /// Admission bound: requests queued beyond this are rejected with
    /// `"overloaded"`. This is the server's entire buffering — there is
    /// no hidden unbounded buffer behind it.
    pub queue_depth: usize,
    /// The `retry_after_ms` hint sent with `"overloaded"` rejections
    /// before any window has closed (cold start). Once the batcher has
    /// drained at least one window, the hint is computed instead: queue
    /// occupancy × the recent per-net drain time, clamped to
    /// `[1, RETRY_AFTER_CAP_MS]` — so a client backing off by the hint
    /// retries roughly when the queue has actually drained.
    pub retry_after_ms: u64,
}

/// Upper clamp on computed `retry_after_ms` hints. A second of backoff
/// is already "come back much later"; anything larger would just park
/// clients on a transient spike.
pub const RETRY_AFTER_CAP_MS: u64 = 1_000;

/// The backoff hint for an `"overloaded"` rejection: how long the
/// current occupancy takes to drain at the recently observed rate.
///
/// `drain_ns_per_net == 0` means no window has closed yet — fall back
/// to the configured hint. Otherwise `ceil(occupancy × per-net ns)` in
/// milliseconds, clamped to `[1, RETRY_AFTER_CAP_MS]`. Monotone in
/// both occupancy and drain time by construction (a fuller queue or a
/// slower engine can only raise the hint until the cap).
fn computed_retry_after_ms(occupancy: usize, drain_ns_per_net: u64, fallback_ms: u64) -> u64 {
    if drain_ns_per_net == 0 {
        return fallback_ms.max(1);
    }
    let drain_ns = occupancy as u128 * drain_ns_per_net as u128;
    let ms = u64::try_from(drain_ns.div_ceil(1_000_000)).unwrap_or(u64::MAX);
    ms.clamp(1, RETRY_AFTER_CAP_MS)
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_addr: None,
            threads: 0,
            window: Duration::from_micros(200),
            max_batch: 64,
            queue_depth: 1024,
            retry_after_ms: 5,
        }
    }
}

/// What an admitted request asks the engine to do: route a net from
/// scratch, or replay an ECO edit against a prior route.
enum Job {
    Route(Net),
    Reroute { delta: NetDelta, prior_edits: u32 },
}

/// One admitted request waiting for a window.
struct Pending {
    job: Job,
    session: Session,
    enqueued: Instant,
    reply: mpsc::Sender<Vec<u8>>,
}

/// Queue state guarded by one mutex: the pending requests and the
/// draining flag. Keeping `draining` under the same lock as the queue
/// closes the shutdown race — an admission that saw `draining ==
/// false` has already enqueued before `begin_shutdown` can flip it, so
/// the batcher is guaranteed to drain it.
struct QueueState {
    pending: VecDeque<Pending>,
    draining: bool,
}

pub(crate) struct Shared {
    engine: Engine,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    metrics: Metrics,
    report: Mutex<ResilienceReport>,
    /// Live connections by id, for shutdown unblocking. Entries are
    /// removed when the connection finishes — keeping a clone of the
    /// fd here past close would hold the socket ESTABLISHED (the peer
    /// never sees FIN) and leak one fd per connection served.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Per-connection thread handles, joined at shutdown; finished
    /// handles are pruned on registration so the vec tracks live
    /// connections, not lifetime connection count.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    /// Recent per-net window drain time, nanoseconds (EWMA, α = ¼).
    /// Zero until the first window closes; read by admission control to
    /// compute `retry_after_ms`.
    drain_ns_per_net: AtomicU64,
}

/// Mutex lock that shrugs off poisoning: the protected state (a queue
/// of requests, a metrics report) stays coherent even if a holder
/// panicked between operations, and a serving daemon must keep
/// answering rather than propagate the poison.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a request was turned away at admission.
enum Rejection {
    /// Queue full; carries the computed backoff hint.
    Overloaded { retry_after_ms: u64 },
    ShuttingDown,
}

impl Shared {
    /// Admission control: enqueue or reject, atomically with the
    /// draining check.
    fn submit(&self, p: Pending) -> Result<(), Rejection> {
        let mut q = lock(&self.queue);
        if q.draining {
            return Err(Rejection::ShuttingDown);
        }
        if q.pending.len() >= self.config.queue_depth {
            let retry_after_ms = computed_retry_after_ms(
                q.pending.len(),
                self.drain_ns_per_net.load(std::sync::atomic::Ordering::Relaxed),
                self.config.retry_after_ms,
            );
            return Err(Rejection::Overloaded { retry_after_ms });
        }
        q.pending.push_back(p);
        Metrics::add(&self.metrics.requests, 1);
        self.metrics
            .queue_depth
            .store(q.pending.len() as u64, std::sync::atomic::Ordering::Relaxed);
        drop(q);
        self.queue_cv.notify_all();
        Ok(())
    }

    /// The batcher body: accumulate windows, close them into the batch
    /// driver, reply, fold metrics. Returns when draining and empty.
    fn run_batcher(&self) {
        let clock = Arc::clone(self.engine.clock());
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.config.threads
        };
        loop {
            let mut q = lock(&self.queue);
            while q.pending.is_empty() && !q.draining {
                q = self
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if q.pending.is_empty() && q.draining {
                return;
            }
            // Window accumulation, timed on the engine clock. Under a
            // VirtualClock `elapsed` never grows, so the window closes
            // only by max_batch or drain — the mechanism the
            // determinism and shutdown tests drive.
            let opened = clock.now();
            while q.pending.len() < self.config.max_batch && !q.draining {
                let elapsed = clock.now().saturating_sub(opened);
                if elapsed >= self.config.window {
                    break;
                }
                let remaining = self.config.window - elapsed;
                // Cap the OS wait so a virtual clock (whose `remaining`
                // never shrinks) still re-checks drain/max_batch
                // promptly.
                let wait = remaining.min(Duration::from_millis(5));
                let (guard, _) = self
                    .queue_cv
                    .wait_timeout(q, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
            let take = q.pending.len().min(self.config.max_batch);
            let batch: Vec<Pending> = q.pending.drain(..take).collect();
            self.metrics
                .queue_depth
                .store(q.pending.len() as u64, std::sync::atomic::Ordering::Relaxed);
            drop(q);
            self.close_window(batch, threads);
        }
    }

    /// Routes one closed window and replies per request. A window may
    /// mix fresh routes and ECO reroutes: each kind goes through its
    /// own batch-driver call and the replies are reassembled in the
    /// window's arrival order.
    fn close_window(&self, batch: Vec<Pending>, threads: usize) {
        if batch.is_empty() {
            return;
        }
        Metrics::add(&self.metrics.batches, 1);
        Metrics::add(&self.metrics.batched_nets, batch.len() as u64);
        let started = Instant::now();
        let mut fresh = Vec::new();
        let mut fresh_slots = Vec::new();
        let mut deltas = Vec::new();
        let mut delta_slots = Vec::new();
        for (slot, p) in batch.iter().enumerate() {
            match &p.job {
                Job::Route(net) => {
                    fresh.push((net.clone(), p.session));
                    fresh_slots.push(slot);
                }
                Job::Reroute { delta, prior_edits } => {
                    deltas.push(DeltaJob {
                        delta: delta.clone(),
                        prior_edits: *prior_edits,
                        session: p.session,
                    });
                    delta_slots.push(slot);
                }
            }
        }
        let mut results: Vec<Option<RouteResult>> = Vec::new();
        results.resize_with(batch.len(), || None);
        if !fresh.is_empty() {
            let (routed, _stats) = self.engine.route_batch_sessions(&fresh, threads);
            for (slot, result) in fresh_slots.into_iter().zip(routed) {
                results[slot] = Some(result);
            }
        }
        if !deltas.is_empty() {
            let (rerouted, _stats) = self.engine.route_batch_deltas(&deltas, threads);
            for (slot, result) in delta_slots.into_iter().zip(rerouted) {
                results[slot] = Some(result);
            }
        }
        // Fold the window's wall time into the drain-rate EWMA that
        // admission control prices rejections with.
        let per_net_ns = u64::try_from(
            started.elapsed().as_nanos() / batch.len() as u128,
        )
        .unwrap_or(u64::MAX)
        .max(1);
        let ordering = std::sync::atomic::Ordering::Relaxed;
        let old = self.drain_ns_per_net.load(ordering);
        let blended = if old == 0 {
            per_net_ns
        } else {
            old - old / 4 + per_net_ns / 4
        };
        self.drain_ns_per_net.store(blended.max(1), ordering);
        let mut report = lock(&self.report);
        for (pending, result) in batch.iter().zip(&results) {
            let Some(result) = result else { continue };
            report.record(result);
            self.fold_result_metrics(pending, result);
            let payload = result_to_json(pending.session.id, result).render();
            // A receiver gone (client disconnected mid-flight) is not an
            // error; the route still counted.
            let _ = pending.reply.send(payload.into_bytes());
        }
    }

    fn fold_result_metrics(&self, pending: &Pending, result: &RouteResult) {
        match result {
            Ok(outcome) => {
                Metrics::add(&self.metrics.responses, 1);
                let trace = &outcome.provenance.trace;
                if let Some(rung) = trace.served_by() {
                    Metrics::add(&self.metrics.served_by[rung.index()], 1);
                }
                if trace
                    .attempts()
                    .iter()
                    .any(|a| a.outcome == RungOutcome::DeadlineExceeded)
                {
                    Metrics::add(&self.metrics.deadline_hits, 1);
                }
                let ns = pending.enqueued.elapsed().as_nanos();
                self.metrics
                    .latency
                    .record(u64::try_from(ns).unwrap_or(u64::MAX));
            }
            Err(_) => Metrics::add(&self.metrics.route_errors, 1),
        }
    }

    /// One connection's read loop: parse frames, admit, send immediate
    /// rejections through the writer channel.
    fn run_reader(&self, stream: TcpStream, reply_tx: mpsc::Sender<Vec<u8>>) {
        let mut reader = io::BufReader::new(stream);
        loop {
            let payload = match read_frame(&mut reader) {
                Ok(Some(p)) => p,
                // Clean EOF, torn frame or reset: either way this
                // connection is done reading.
                Ok(None) | Err(_) => return,
            };
            let request = match parse_any_request(&payload) {
                Ok(r) => r,
                Err(m) => {
                    Metrics::add(&self.metrics.malformed, 1);
                    let _ = reply_tx.send(malformed_json(&m).render().into_bytes());
                    continue;
                }
            };
            let (id, deadline_ms, job) = match request {
                Request::Route(r) => (r.id, r.deadline_ms, Job::Route(r.net)),
                Request::Reroute(r) => (
                    r.id,
                    r.deadline_ms,
                    Job::Reroute { delta: r.delta, prior_edits: r.prior_edits },
                ),
            };
            let mut session = Session::new(id);
            if let Some(ms) = deadline_ms {
                session = session.with_deadline(Duration::from_millis(ms));
            }
            let pending = Pending {
                job,
                session,
                enqueued: Instant::now(),
                reply: reply_tx.clone(),
            };
            match self.submit(pending) {
                Ok(()) => {}
                Err(Rejection::Overloaded { retry_after_ms }) => {
                    Metrics::add(&self.metrics.rejected, 1);
                    let json = overloaded_json(id, retry_after_ms);
                    let _ = reply_tx.send(json.render().into_bytes());
                }
                Err(Rejection::ShuttingDown) => {
                    Metrics::add(&self.metrics.shed_shutdown, 1);
                    let _ = reply_tx.send(shutting_down_json(id).render().into_bytes());
                }
            }
        }
    }
}

/// Handles a request payload arriving over the HTTP adapter (`POST
/// /route`): same admission, same queue, but the reply is awaited
/// inline (HTTP is request/response, not pipelined).
pub(crate) fn http_route(shared: &Arc<Shared>, body: &[u8]) -> Vec<u8> {
    let request = match parse_request(body) {
        Ok(r) => r,
        Err(m) => {
            Metrics::add(&shared.metrics.malformed, 1);
            return malformed_json(&m).render().into_bytes();
        }
    };
    submit_and_await(shared, request.id, request.deadline_ms, Job::Route(request.net))
}

/// The HTTP adapter's ECO verb (`POST /reroute`): same admission, same
/// coalescing windows as the socket protocol's reroute frames.
pub(crate) fn http_reroute(shared: &Arc<Shared>, body: &[u8]) -> Vec<u8> {
    let request = match parse_reroute_request(body) {
        Ok(r) => r,
        Err(m) => {
            Metrics::add(&shared.metrics.malformed, 1);
            return malformed_json(&m).render().into_bytes();
        }
    };
    submit_and_await(
        shared,
        request.id,
        request.deadline_ms,
        Job::Reroute { delta: request.delta, prior_edits: request.prior_edits },
    )
}

/// Shared HTTP tail: admit one job and await its reply inline.
fn submit_and_await(
    shared: &Arc<Shared>,
    id: u64,
    deadline_ms: Option<u64>,
    job: Job,
) -> Vec<u8> {
    let mut session = Session::new(id);
    if let Some(ms) = deadline_ms {
        session = session.with_deadline(Duration::from_millis(ms));
    }
    let (tx, rx) = mpsc::channel();
    let pending = Pending {
        job,
        session,
        enqueued: Instant::now(),
        reply: tx,
    };
    match shared.submit(pending) {
        Ok(()) => match rx.recv() {
            Ok(payload) => payload,
            Err(_) => shutting_down_json(id).render().into_bytes(),
        },
        Err(Rejection::Overloaded { retry_after_ms }) => {
            Metrics::add(&shared.metrics.rejected, 1);
            overloaded_json(id, retry_after_ms).render().into_bytes()
        }
        Err(Rejection::ShuttingDown) => {
            Metrics::add(&shared.metrics.shed_shutdown, 1);
            shutting_down_json(id).render().into_bytes()
        }
    }
}

pub(crate) fn render_metrics(shared: &Shared) -> String {
    shared
        .metrics
        .render(shared.engine.cache_stats().as_ref())
}

/// Whether shutdown draining has begun (checked by the acceptors).
pub(crate) fn is_draining(shared: &Shared) -> bool {
    lock(&shared.queue).draining
}

/// Registers a connection for shutdown unblocking. Must be paired
/// with [`deregister_conn`] when the connection finishes.
pub(crate) fn register_conn(shared: &Shared, id: u64, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(id, clone);
    }
}

/// Drops the registry's handle on a finished connection, releasing
/// the fd so the peer sees FIN once the conn threads drop theirs.
pub(crate) fn deregister_conn(shared: &Shared, id: u64) {
    lock(&shared.conns).remove(&id);
}

/// Registers a per-connection thread for joining at shutdown,
/// reaping already-finished ones so the registry stays proportional
/// to live connections.
pub(crate) fn register_thread(shared: &Shared, handle: JoinHandle<()>) {
    let mut threads = lock(&shared.conn_threads);
    threads.retain(|h| !h.is_finished());
    threads.push(handle);
}

/// Hands out a fresh connection id (thread naming only).
pub(crate) fn next_conn_id(shared: &Shared) -> u64 {
    shared
        .next_conn
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A running server. Dropping it shuts it down (draining the queue).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    batcher: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    http_acceptor: Option<JoinHandle<()>>,
}

/// What the server did over its lifetime, returned by
/// [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// The ladder/fault aggregate over every routed request, cache
    /// health stamped.
    pub report: ResilienceReport,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Frames rejected as malformed.
    pub malformed: u64,
}

/// Starts serving `engine` per `config`. Binds synchronously (so the
/// caller can read back [`Server::addr`]) and spawns the acceptor,
/// batcher and optional HTTP adapter threads.
pub fn serve(engine: Engine, config: ServeConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let http_listener = match &config.http_addr {
        Some(a) => Some(TcpListener::bind(a)?),
        None => None,
    };
    let http_addr = match &http_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    let shared = Arc::new(Shared {
        engine,
        config,
        queue: Mutex::new(QueueState {
            pending: VecDeque::new(),
            draining: false,
        }),
        queue_cv: Condvar::new(),
        metrics: Metrics::new(),
        report: Mutex::new(ResilienceReport::default()),
        conns: Mutex::new(HashMap::new()),
        conn_threads: Mutex::new(Vec::new()),
        next_conn: AtomicU64::new(0),
        drain_ns_per_net: AtomicU64::new(0),
    });

    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("patlabor-batcher".to_string())
            .spawn(move || shared.run_batcher())?
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("patlabor-accept".to_string())
            .spawn(move || accept_loop(&shared, &listener))?
    };

    let http_acceptor = match http_listener {
        Some(listener) => {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("patlabor-http".to_string())
                    .spawn(move || http::accept_loop(&shared, &listener))?,
            )
        }
        None => None,
    };

    Ok(Server {
        shared,
        addr,
        http_addr,
        batcher: Some(batcher),
        acceptor: Some(acceptor),
        http_acceptor: Some(http_acceptor).flatten(),
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if lock(&shared.queue).draining {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = next_conn_id(shared);
        register_conn(shared, conn_id, &stream);
        let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
        let write_half = stream.try_clone();
        // Writer: sole owner of the socket's write half; drains the
        // reply channel until every sender (reader + queued requests)
        // has dropped, then closes the socket so the peer sees FIN
        // after the final reply.
        let writer = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("patlabor-conn-{conn_id}-w"))
                .spawn(move || {
                    if let Ok(write_half) = write_half {
                        let mut out = io::BufWriter::new(write_half);
                        while let Ok(payload) = reply_rx.recv() {
                            if write_frame(&mut out, &payload).is_err() {
                                break;
                            }
                            // Flush per reply: replies are
                            // latency-sensitive and pipelining gains come
                            // from the coalescer, not from batching
                            // socket writes.
                            if out.flush().is_err() {
                                break;
                            }
                        }
                        let _ = out.flush();
                        let _ = out.get_ref().shutdown(Shutdown::Both);
                    }
                    deregister_conn(&shared, conn_id);
                })
        };
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("patlabor-conn-{conn_id}-r"))
                .spawn(move || {
                    shared.run_reader(stream, reply_tx);
                })
        };
        let mut threads = lock(&shared.conn_threads);
        if let Ok(h) = writer {
            threads.push(h);
        }
        if let Ok(h) = reader {
            threads.push(h);
        }
    }
}

impl Server {
    /// The bound socket-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP-adapter address, when enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The live metrics plane (what `/metrics` renders).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The engine being served.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Starts draining: no new admissions, in-flight windows and
    /// everything already queued still complete. Idempotent.
    pub fn begin_shutdown(&self) {
        {
            let mut q = lock(&self.shared.queue);
            if q.draining {
                return;
            }
            q.draining = true;
        }
        self.shared.queue_cv.notify_all();
        // Poke the acceptors awake so their `incoming()` loops observe
        // the flag (accept(2) has no timeout).
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
        // Half-close every registered connection's read side: blocked
        // reader threads see EOF and exit; replies still flow out.
        for conn in lock(&self.shared.conns).values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }

    /// Drains and stops the server, returning the lifetime summary.
    pub fn shutdown(mut self) -> ServeSummary {
        self.finish()
    }

    fn finish(&mut self) -> ServeSummary {
        self.begin_shutdown();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http_acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock(&self.shared.conn_threads));
        for h in handles {
            let _ = h.join();
        }
        let report = self
            .shared
            .engine
            .stamp_report_cache_health(*lock(&self.shared.report));
        ServeSummary {
            report,
            rejected: Metrics::get(&self.shared.metrics.rejected),
            malformed: Metrics::get(&self.shared.metrics.malformed),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            let _ = self.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: the overload hint must track how long the
    /// queue actually takes to drain, not a constant.
    #[test]
    fn retry_after_is_monotone_in_occupancy_and_drain_time() {
        // Cold start (no window closed yet) falls back to the config
        // hint, floored at 1 ms so "retry immediately" is never sent.
        assert_eq!(computed_retry_after_ms(1024, 0, 5), 5);
        assert_eq!(computed_retry_after_ms(0, 0, 0), 1);
        // 100 queued × 1 ms/net = 100 ms.
        assert_eq!(computed_retry_after_ms(100, 1_000_000, 5), 100);
        // Sub-millisecond drains round up, never to zero.
        assert_eq!(computed_retry_after_ms(1, 10_000, 5), 1);
        // Monotone in occupancy at a fixed drain rate…
        let mut last = 0;
        for occupancy in [1, 4, 64, 512, 4096] {
            let hint = computed_retry_after_ms(occupancy, 250_000, 5);
            assert!(hint >= last, "occupancy {occupancy}: {hint} < {last}");
            last = hint;
        }
        // …and in drain time at a fixed occupancy.
        let mut last = 0;
        for drain_ns in [1_000, 50_000, 1_000_000, 20_000_000] {
            let hint = computed_retry_after_ms(64, drain_ns, 5);
            assert!(hint >= last, "drain {drain_ns}: {hint} < {last}");
            last = hint;
        }
        // The documented cap bounds even pathological backlogs.
        assert_eq!(
            computed_retry_after_ms(1_000_000, u64::MAX, 5),
            RETRY_AFTER_CAP_MS
        );
    }
}
