//! A hand-rolled JSON value, parser and renderer.
//!
//! The serve crate is std-only by charter (the build environment has no
//! crates.io access, and a wire protocol is too load-bearing to sit on
//! a vendored shim), so this module covers exactly the JSON subset the
//! wire protocol needs: objects, arrays, strings with `\uXXXX` escapes,
//! 64-bit integers, finite floats, booleans and null. Parsing is
//! recursive descent over bytes with an explicit depth guard; rendering
//! is canonical enough to be re-parsed bit-identically (object order is
//! preserved — [`Json::Obj`] is a `Vec`, not a map, so request echoes
//! and golden tests stay deterministic).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Wire payloads are flat
/// (an object holding arrays of primitives), so anything deeper is a
/// malformed or adversarial frame, not a real request.
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integral numbers (no decimal point or exponent in the source).
    /// Kept separate from [`Json::Float`] so ids and counters survive a
    /// round trip exactly.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in source order (duplicate keys: first wins on
    /// [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                // JSON has no NaN/Inf; map them to null rather than
                // emitting an unparseable token.
                if f.is_finite() {
                    let mut s = String::new();
                    let _ = write!(s, "{f}");
                    // `{}` on a whole f64 prints no decimal point; add
                    // one so the value re-parses as Float, not Int.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xdc00..0xe000).contains(&cp) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever advances
                    // by whole scalars or over ASCII, so it is always a
                    // char boundary and the slice cannot panic.
                    let c = self.input[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers outside i64 fall back to float rather than
            // erroring (JSON itself has no width limit).
            text.parse::<i64>().map(Json::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid number"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_wire_subset() {
        let src = r#"{"id":7,"ok":true,"w":-3,"f":1.5,"s":"a\"b\\c\nd","arr":[1,2,3],"none":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("w").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("none"), Some(&Json::Null));
        // Render → parse is the identity.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn ints_and_floats_stay_distinct_through_a_round_trip() {
        let v = Json::Arr(vec![Json::Int(5), Json::Float(5.0)]);
        let rendered = v.render();
        assert_eq!(rendered, "[5,5.0]");
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_incl_surrogate_pairs() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        // Unpaired surrogates are rejected, not replaced.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00x""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_with_an_offset() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"\x01\"", "{\"a\":1}x", "nul",
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len());
        }
        // Depth bomb: 64 nested arrays exceed MAX_DEPTH.
        let bomb = "[".repeat(64) + &"]".repeat(64);
        assert_eq!(parse(&bomb).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }
}
