//! `patlabor-serve` — routing as a long-lived service.
//!
//! The per-call entry points in `patlabor` rebuild nothing, but a
//! process that answers many requests still wants one [`Engine`]
//! (mmap'd table, warm cache, fault plane) shared across all of them.
//! This crate is that process: a daemon that owns an `Engine` and
//! serves route requests over a hand-rolled, std-only wire protocol.
//!
//! Layers, bottom up:
//!
//! - [`json`] — a dependency-free JSON value, parser, and renderer.
//!   The same module serializes wire replies and the CLI's
//!   `route --json` output, so the two can never drift.
//! - [`wire`] — u32-length-prefixed frames carrying request/response
//!   JSON, plus the error vocabulary (`overloaded`, `shutting-down`,
//!   `malformed`, `route`).
//! - [`metrics`] — lock-free counters and a log₂ latency histogram,
//!   rendered as Prometheus text for `/metrics`.
//! - [`chaos`] — the seed-deterministic transport fault plane: torn
//!   and corrupted frames, stalled writes, delayed reads, mid-reply
//!   disconnects, injectable into both transports for soak testing.
//! - [`server`] — the daemon: per-connection reader/writer threads
//!   with read/write watchdog deadlines and bounded reply buffers,
//!   bounded admission queue, a coalescing batcher that closes
//!   accumulation windows into [`Engine::route_batch_sessions`],
//!   epoch-guarded hot table reload, and drain-then-exit shutdown.
//! - [`client`] — a pipelining client for benches, tests, and the
//!   differential verifier, with a seeded retry budget for
//!   `overloaded` rejections.
//!
//! Everything here is std-only by design (mirroring `patlabor`'s
//! `core::pad` discipline): no async runtime, no serde, no HTTP
//! framework. A routing request is microseconds of work — the server
//! is a thread-per-connection front over the work-stealing batch
//! driver, and the interesting engineering lives in admission control
//! and window coalescing, not in transport plumbing.
//!
//! [`Engine`]: patlabor::Engine
//! [`Engine::route_batch_sessions`]: patlabor::Engine::route_batch_sessions

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(unsafe_code)]

pub mod chaos;
pub mod client;
mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod wire;

pub use chaos::{TransportFault, TransportFaultKind, TransportPlane};
pub use client::{
    http_post_reroute, http_post_route, http_request, scrape_metrics, RetryPolicy,
    RouteClient,
};
pub use json::{parse, Json, ParseError};
pub use metrics::{LatencyHistogram, Metrics};
pub use server::{serve, ServeConfig, ServeSummary, Server, RETRY_AFTER_CAP_MS};
pub use wire::{
    parse_any_request, parse_request, parse_reload_request, parse_reroute_request,
    read_frame, result_to_json, write_frame, ReloadRequest, RerouteRequest, Request,
    RouteRequest, MAX_FRAME,
};
