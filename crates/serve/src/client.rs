//! A minimal client for the serve protocol — used by the loadgen
//! bench, the differential verifier, and the integration tests.
//!
//! [`RouteClient`] speaks the framed socket protocol and supports
//! pipelining: `send` any number of requests, then `recv` the replies
//! and correlate by `id` (the server replies to *accepted* requests in
//! per-connection arrival order, but immediate rejections — overload,
//! drain, malformed — jump the queue, so id correlation is the only
//! contract). [`scrape_metrics`] and [`http_post`] cover the HTTP
//! adapter with the same no-dependency discipline.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{parse, Json};
use crate::wire::{read_frame, write_frame, RerouteRequest, RouteRequest};

/// One framed-protocol connection.
#[derive(Debug)]
pub struct RouteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RouteClient {
    /// Connects to a serve daemon's socket address.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(RouteClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sets the read timeout (None blocks forever, the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request frame (pipelinable: does not wait for the
    /// reply).
    pub fn send(&mut self, request: &RouteRequest) -> io::Result<()> {
        self.send_raw(request.to_json().render().as_bytes())
    }

    /// Sends an arbitrary payload as one frame — the loadgen's
    /// malformed-request path.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)?;
        self.writer.flush()
    }

    /// Receives one reply frame, parsed. `Ok(None)` when the server
    /// closed the connection cleanly.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        let Some(payload) = read_frame(&mut self.reader)? else {
            return Ok(None);
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 reply"))?;
        parse(text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Round-trips one request (send + recv). Errors if the server
    /// hung up instead of replying.
    pub fn route(&mut self, request: &RouteRequest) -> io::Result<Json> {
        self.send(request)?;
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Sends one ECO reroute frame (pipelinable).
    pub fn send_reroute(&mut self, request: &RerouteRequest) -> io::Result<()> {
        self.send_raw(request.to_json().render().as_bytes())
    }

    /// Round-trips one ECO reroute (send + recv).
    pub fn reroute(&mut self, request: &RerouteRequest) -> io::Result<Json> {
        self.send_reroute(request)?;
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Half-closes the write side: the server sees EOF, finishes any
    /// queued replies for this connection, then hangs up.
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }

    /// Round-trips one request under `policy`: `overloaded` rejections
    /// are retried (sleeping out the backoff) until the budget runs
    /// out. Returns the final reply plus how many retries were spent —
    /// the loadgen records that per request so BENCH rows show retry
    /// pressure, not just terminal failures.
    pub fn route_with_retry(
        &mut self,
        request: &RouteRequest,
        policy: &RetryPolicy,
    ) -> io::Result<(Json, u32)> {
        let mut retries = 0;
        loop {
            let reply = self.route(request)?;
            let overloaded = reply.get("error").and_then(Json::as_str) == Some("overloaded");
            if !overloaded || retries >= policy.budget {
                return Ok((reply, retries));
            }
            let hint = reply
                .get("retry_after_ms")
                .and_then(Json::as_i64)
                .map(|ms| ms.max(0) as u64);
            std::thread::sleep(Duration::from_millis(policy.backoff_ms(
                request.id,
                retries,
                hint,
            )));
            retries += 1;
        }
    }
}

/// A deterministic retry budget for `overloaded` rejections: capped
/// exponential backoff with seeded jitter, floored at the server's
/// `retry_after_ms` hint. Deterministic so bench reruns with the same
/// seed replay the same retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most retries spent per request before the rejection is final.
    pub budget: u32,
    /// First-attempt backoff, milliseconds.
    pub base_ms: u64,
    /// Ceiling on any single backoff, milliseconds.
    pub cap_ms: u64,
    /// Jitter seed; same seed → same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { budget: 3, base_ms: 2, cap_ms: 250, seed: 0 }
    }
}

impl RetryPolicy {
    /// A policy with everything default but the seed.
    pub fn seeded(seed: u64) -> Self {
        RetryPolicy { seed, ..Self::default() }
    }

    /// The backoff before retry number `attempt` (0-based) of request
    /// `id`, honouring the server's `retry_after_ms` hint as a floor.
    /// Pure: the schedule is a function of (seed, id, attempt, hint).
    pub fn backoff_ms(&self, id: u64, attempt: u32, retry_after_ms: Option<u64>) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms);
        // Full jitter over the exponential window, never below half of
        // it (so backoff still backs off).
        let h = splitmix64(self.seed ^ id.rotate_left(32) ^ u64::from(attempt));
        let jittered = exp / 2 + h % (exp / 2 + 1);
        jittered.max(retry_after_ms.unwrap_or(0)).min(
            self.cap_ms.max(retry_after_ms.unwrap_or(0)),
        )
    }
}

/// SplitMix64 finalizer — the client-side twin of the chaos plane's
/// hash, kept local so the client stays dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One HTTP/1.1 request against the adapter; returns (status, body).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: patlabor\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let response_body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, response_body))
}

/// Fetches `/metrics` from the HTTP adapter as exposition text.
pub fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let (status, body) = http_request(addr, "GET", "/metrics", &[])?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("/metrics returned {status}"),
        ));
    }
    Ok(body)
}

/// POSTs a route-request JSON body to the adapter's `/route`.
pub fn http_post_route(addr: SocketAddr, body: &[u8]) -> io::Result<(u16, String)> {
    http_request(addr, "POST", "/route", body)
}

/// POSTs an ECO reroute-request JSON body to the adapter's `/reroute`.
pub fn http_post_reroute(addr: SocketAddr, body: &[u8]) -> io::Result<(u16, String)> {
    http_request(addr, "POST", "/reroute", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_seed_sensitive() {
        let a = RetryPolicy::seeded(7);
        let b = RetryPolicy::seeded(7);
        let c = RetryPolicy::seeded(8);
        let schedule =
            |p: &RetryPolicy| (0..4).map(|i| p.backoff_ms(42, i, None)).collect::<Vec<_>>();
        assert_eq!(schedule(&a), schedule(&b));
        assert_ne!(schedule(&a), schedule(&c));
    }

    #[test]
    fn backoff_grows_and_respects_cap_and_hint() {
        let p = RetryPolicy { budget: 8, base_ms: 2, cap_ms: 100, seed: 3 };
        for attempt in 0..10 {
            let exp = p.base_ms.saturating_mul(1 << attempt.min(16)).min(p.cap_ms);
            let ms = p.backoff_ms(1, attempt, None);
            // Jitter stays inside [exp/2, exp] and never exceeds cap.
            assert!(ms >= exp / 2 && ms <= exp, "attempt {attempt}: {ms} vs exp {exp}");
            assert!(ms <= p.cap_ms);
        }
        // The server's hint is a floor even when it exceeds the cap.
        assert!(p.backoff_ms(1, 0, Some(500)) >= 500);
        assert!(p.backoff_ms(1, 0, Some(1)) >= 1);
    }
}
