//! A minimal client for the serve protocol — used by the loadgen
//! bench, the differential verifier, and the integration tests.
//!
//! [`RouteClient`] speaks the framed socket protocol and supports
//! pipelining: `send` any number of requests, then `recv` the replies
//! and correlate by `id` (the server replies to *accepted* requests in
//! per-connection arrival order, but immediate rejections — overload,
//! drain, malformed — jump the queue, so id correlation is the only
//! contract). [`scrape_metrics`] and [`http_post`] cover the HTTP
//! adapter with the same no-dependency discipline.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{parse, Json};
use crate::wire::{read_frame, write_frame, RerouteRequest, RouteRequest};

/// One framed-protocol connection.
#[derive(Debug)]
pub struct RouteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RouteClient {
    /// Connects to a serve daemon's socket address.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(RouteClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sets the read timeout (None blocks forever, the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request frame (pipelinable: does not wait for the
    /// reply).
    pub fn send(&mut self, request: &RouteRequest) -> io::Result<()> {
        self.send_raw(request.to_json().render().as_bytes())
    }

    /// Sends an arbitrary payload as one frame — the loadgen's
    /// malformed-request path.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)?;
        self.writer.flush()
    }

    /// Receives one reply frame, parsed. `Ok(None)` when the server
    /// closed the connection cleanly.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        let Some(payload) = read_frame(&mut self.reader)? else {
            return Ok(None);
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 reply"))?;
        parse(text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Round-trips one request (send + recv). Errors if the server
    /// hung up instead of replying.
    pub fn route(&mut self, request: &RouteRequest) -> io::Result<Json> {
        self.send(request)?;
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Sends one ECO reroute frame (pipelinable).
    pub fn send_reroute(&mut self, request: &RerouteRequest) -> io::Result<()> {
        self.send_raw(request.to_json().render().as_bytes())
    }

    /// Round-trips one ECO reroute (send + recv).
    pub fn reroute(&mut self, request: &RerouteRequest) -> io::Result<Json> {
        self.send_reroute(request)?;
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Half-closes the write side: the server sees EOF, finishes any
    /// queued replies for this connection, then hangs up.
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }
}

/// One HTTP/1.1 request against the adapter; returns (status, body).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: patlabor\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let response_body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, response_body))
}

/// Fetches `/metrics` from the HTTP adapter as exposition text.
pub fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let (status, body) = http_request(addr, "GET", "/metrics", &[])?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("/metrics returned {status}"),
        ));
    }
    Ok(body)
}

/// POSTs a route-request JSON body to the adapter's `/route`.
pub fn http_post_route(addr: SocketAddr, body: &[u8]) -> io::Result<(u16, String)> {
    http_request(addr, "POST", "/route", body)
}

/// POSTs an ECO reroute-request JSON body to the adapter's `/reroute`.
pub fn http_post_reroute(addr: SocketAddr, body: &[u8]) -> io::Result<(u16, String)> {
    http_request(addr, "POST", "/reroute", body)
}
