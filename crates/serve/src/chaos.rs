//! The transport fault plane: seed-deterministic chaos injection for
//! the serving layer (DESIGN.md §17).
//!
//! The routing engine already has a [`FaultPlane`] for *engine*-level
//! failures (missing table rows, corrupt costs, stage panics). This
//! module is its transport twin: the failures a daemon actually meets
//! in production are torn TCP writes, peers that stall mid-frame,
//! slow reads, and connections that vanish mid-reply. Each is modeled
//! as a [`TransportFault`] with the same `kind[:probability]` spec
//! grammar the engine plane uses, so `--chaos torn-write:0.05` reads
//! exactly like `--fault corrupted-row:0.05`.
//!
//! # Determinism
//!
//! Whether a fault fires is a pure function of `(plane seed, fault
//! kind, connection id, frame sequence number)` — the same splitmix64
//! construction as the engine plane. Two runs of the same soak with
//! the same seed inject byte-identical fault schedules, which is what
//! lets CI assert invariants instead of eyeballing flakes.
//!
//! # Crash-only contract
//!
//! Every write-side injection **closes the connection** after (or
//! instead of) the damaged bytes: a peer can observe a torn or
//! corrupted frame only on a connection that is already dying, never
//! on one that keeps serving. That preserves the soak invariant —
//! every accepted request is answered exactly once *or its connection
//! is closed* — by construction.
//!
//! [`FaultPlane`]: patlabor::FaultPlane

use std::time::Duration;

/// Default injected stall/delay for [`TransportFaultKind::StallWrite`]
/// and [`TransportFaultKind::DelayRead`]. Long enough to be visible to
/// watchdogs and latency percentiles, short enough that a seeded soak
/// finishes in CI time.
pub const DEFAULT_CHAOS_DELAY: Duration = Duration::from_millis(20);

/// The transport failure modes the plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFaultKind {
    /// Write the frame prefix plus only part of the payload, then
    /// close: the peer sees a torn frame (`read_frame` errors).
    TornWrite,
    /// Write part of the reply, stall for the plane's delay, then
    /// close — the partial-write-then-hang peers inflict on us,
    /// reflected back.
    StallWrite,
    /// Sleep for the plane's delay before processing a received frame
    /// (a slow or congested read path).
    DelayRead,
    /// Close the connection instead of writing the reply at all.
    Disconnect,
    /// Write the full frame with corrupted payload bytes (length
    /// prefix intact), then close: the peer receives a frame that no
    /// longer parses.
    CorruptWrite,
}

impl TransportFaultKind {
    /// Number of kinds (sizes the per-kind metrics array).
    pub const COUNT: usize = 5;

    /// All kinds, in metric/index order.
    pub const ALL: [TransportFaultKind; Self::COUNT] = [
        TransportFaultKind::TornWrite,
        TransportFaultKind::StallWrite,
        TransportFaultKind::DelayRead,
        TransportFaultKind::Disconnect,
        TransportFaultKind::CorruptWrite,
    ];

    /// Stable index for metric arrays.
    pub fn index(self) -> usize {
        match self {
            TransportFaultKind::TornWrite => 0,
            TransportFaultKind::StallWrite => 1,
            TransportFaultKind::DelayRead => 2,
            TransportFaultKind::Disconnect => 3,
            TransportFaultKind::CorruptWrite => 4,
        }
    }

    /// The spec-grammar / metric label.
    pub fn label(self) -> &'static str {
        match self {
            TransportFaultKind::TornWrite => "torn-write",
            TransportFaultKind::StallWrite => "stall-write",
            TransportFaultKind::DelayRead => "delay-read",
            TransportFaultKind::Disconnect => "disconnect",
            TransportFaultKind::CorruptWrite => "corrupt-write",
        }
    }

    fn parse(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One registered transport fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFault {
    pub kind: TransportFaultKind,
    /// Probability a given (connection, frame) draws this fault.
    pub probability: f64,
}

impl TransportFault {
    /// Parses the `kind[:probability]` spec grammar — the transport
    /// half of the engine plane's fault grammar (no `@rung` scope:
    /// transport faults have no ladder position).
    ///
    /// `torn-write` ⇒ probability 1.0; `torn-write:0.05` ⇒ 5%.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (label, prob) = match spec.split_once(':') {
            Some((label, prob)) => (label, Some(prob)),
            None => (spec, None),
        };
        let kind = TransportFaultKind::parse(label.trim()).ok_or_else(|| {
            let known: Vec<&str> = TransportFaultKind::ALL.iter().map(|k| k.label()).collect();
            format!(
                "unknown transport fault {label:?} (expected one of {})",
                known.join(", ")
            )
        })?;
        let probability = match prob {
            None => 1.0,
            Some(p) => {
                let p: f64 = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad probability {p:?} in spec {spec:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} out of [0, 1] in spec {spec:?}"));
                }
                p
            }
        };
        Ok(TransportFault { kind, probability })
    }
}

/// The plane: a seed plus the registered faults. Empty (the default)
/// means every hook short-circuits on [`TransportPlane::is_empty`] —
/// the clean serve path pays one branch per hook and nothing else.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransportPlane {
    seed: u64,
    faults: Vec<TransportFault>,
    delay: Option<Duration>,
}

impl TransportPlane {
    /// An empty plane deciding under `seed`.
    pub fn seeded(seed: u64) -> Self {
        TransportPlane {
            seed,
            ..TransportPlane::default()
        }
    }

    /// Registers a fault.
    #[must_use]
    pub fn with_fault(mut self, fault: TransportFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Registers a fault from its `kind[:prob]` spec.
    pub fn with_spec(self, spec: &str) -> Result<Self, String> {
        Ok(self.with_fault(TransportFault::parse(spec)?))
    }

    /// Overrides the injected stall/delay duration.
    #[must_use]
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Whether no fault is registered — the clean-path short-circuit.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The plane's decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected stall/delay duration.
    pub fn delay(&self) -> Duration {
        self.delay.unwrap_or(DEFAULT_CHAOS_DELAY)
    }

    /// Whether `kind` fires for frame `frame_seq` on connection
    /// `conn_id` — deterministic in (seed, kind, conn, frame). When the
    /// same kind is registered more than once the draws are
    /// independent (distinct salt per registration index).
    pub fn fires(&self, kind: TransportFaultKind, conn_id: u64, frame_seq: u64) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        self.faults
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind == kind)
            .any(|(i, f)| {
                if f.probability <= 0.0 {
                    return false;
                }
                if f.probability >= 1.0 {
                    return true;
                }
                let mut h = splitmix64(self.seed ^ (kind.index() as u64) << 32 ^ i as u64);
                h = splitmix64(h ^ conn_id);
                h = splitmix64(h ^ frame_seq);
                unit_hash(h) < f.probability
            })
    }

    /// The first write-side fault that fires for this (conn, frame),
    /// in registration order. Write hooks need *one* verdict — a frame
    /// can only die one way.
    pub fn write_fault(&self, conn_id: u64, frame_seq: u64) -> Option<TransportFaultKind> {
        if self.faults.is_empty() {
            return None;
        }
        [
            TransportFaultKind::Disconnect,
            TransportFaultKind::TornWrite,
            TransportFaultKind::StallWrite,
            TransportFaultKind::CorruptWrite,
        ]
        .into_iter()
        .find(|&k| self.fires(k, conn_id, frame_seq))
    }
}

/// splitmix64 — the same finalizer the engine plane and the cache's
/// shard hash use (reimplemented here because `patlabor` keeps its
/// copy private to `core::resilience`).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in [0, 1).
fn unit_hash(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips_every_kind() {
        for kind in TransportFaultKind::ALL {
            let bare = TransportFault::parse(kind.label()).unwrap();
            assert_eq!(bare.kind, kind);
            assert_eq!(bare.probability, 1.0);
            let spec = format!("{}:0.25", kind.label());
            let f = TransportFault::parse(&spec).unwrap();
            assert_eq!(f.kind, kind);
            assert_eq!(f.probability, 0.25);
        }
    }

    #[test]
    fn bad_specs_name_the_problem() {
        let e = TransportFault::parse("teleport").unwrap_err();
        assert!(e.contains("teleport") && e.contains("torn-write"), "{e}");
        let e = TransportFault::parse("torn-write:nope").unwrap_err();
        assert!(e.contains("nope"), "{e}");
        let e = TransportFault::parse("torn-write:1.5").unwrap_err();
        assert!(e.contains("1.5"), "{e}");
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plane = |seed| {
            TransportPlane::seeded(seed)
                .with_spec("torn-write:0.5")
                .unwrap()
        };
        let a = plane(1);
        let b = plane(1);
        let c = plane(2);
        let mut flipped = 0;
        let mut fired = 0;
        for frame in 0..256u64 {
            let fa = a.fires(TransportFaultKind::TornWrite, 7, frame);
            assert_eq!(fa, b.fires(TransportFaultKind::TornWrite, 7, frame));
            if fa {
                fired += 1;
            }
            if fa != c.fires(TransportFaultKind::TornWrite, 7, frame) {
                flipped += 1;
            }
        }
        // p = 0.5 over 256 draws: both extremes are astronomically
        // unlikely, and two seeds must disagree somewhere.
        assert!(fired > 64 && fired < 192, "{fired}");
        assert!(flipped > 0);
        // Different connections draw independently.
        let per_conn: Vec<bool> = (0..64)
            .map(|conn| a.fires(TransportFaultKind::TornWrite, conn, 0))
            .collect();
        assert!(per_conn.iter().any(|&f| f) && per_conn.iter().any(|&f| !f));
    }

    #[test]
    fn empty_plane_never_fires_and_probability_edges_hold() {
        let empty = TransportPlane::seeded(9);
        assert!(empty.is_empty());
        assert!(!empty.fires(TransportFaultKind::Disconnect, 0, 0));
        assert!(empty.write_fault(0, 0).is_none());
        let never = TransportPlane::seeded(9).with_spec("disconnect:0").unwrap();
        assert!(!never.is_empty());
        assert!((0..128).all(|f| !never.fires(TransportFaultKind::Disconnect, 0, f)));
        let always = TransportPlane::seeded(9).with_spec("disconnect:1").unwrap();
        assert!((0..128).all(|f| always.fires(TransportFaultKind::Disconnect, 0, f)));
    }

    #[test]
    fn write_fault_picks_one_verdict() {
        let plane = TransportPlane::seeded(3)
            .with_spec("disconnect")
            .unwrap()
            .with_spec("torn-write")
            .unwrap();
        // Both always fire; disconnect wins the fixed precedence.
        assert_eq!(
            plane.write_fault(1, 1),
            Some(TransportFaultKind::Disconnect)
        );
        // DelayRead is a read-side fault and never a write verdict.
        let read_only = TransportPlane::seeded(3).with_spec("delay-read").unwrap();
        assert!(read_only.write_fault(1, 1).is_none());
        assert!(read_only.fires(TransportFaultKind::DelayRead, 1, 1));
    }
}
