//! End-to-end tests for the serve daemon: coalescing determinism,
//! admission-control backpressure, virtual-clock drain semantics, and
//! the HTTP adapter. Every test that needs to control time runs the
//! engine on a [`VirtualClock`], under which a coalescing window can
//! only close by `max_batch` or by drain — so the tests stage exact
//! interleavings with zero sleeps and zero race-prone timing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use patlabor::{DeltaKind, Engine, LutBuilder, Net, NetDelta, VirtualClock};
use patlabor_serve::{
    http_post_reroute, http_post_route, scrape_metrics, serve, Json, RerouteRequest, RouteClient,
    RouteRequest, ServeConfig,
};

fn test_engine() -> Engine {
    Engine::with_table(LutBuilder::new(4).threads(2).build())
}

fn suite(seed: u64, count: usize) -> Vec<Net> {
    patlabor_netgen::iccad_like_suite(seed, count, 4)
}

/// The reference answer: what an in-process `route` serializes for
/// this net. The wire reply must match this bit for bit on the fields
/// that describe the routing answer (frontier, degree, ok).
fn direct_frontier(engine: &Engine, id: u64, net: &Net) -> String {
    let result = engine.route(net);
    let json = patlabor_serve::result_to_json(id, &result);
    frontier_fields(&json)
}

fn frontier_fields(json: &Json) -> String {
    format!(
        "ok={} degree={} frontier={}",
        json.get("ok").map_or("-".into(), Json::render),
        json.get("degree").map_or("-".into(), Json::render),
        json.get("frontier").map_or("-".into(), Json::render),
    )
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// Any interleaving of concurrent clients through the coalescer must
/// produce exactly the frontiers the in-process router produces.
#[test]
fn coalesced_replies_match_direct_route_under_concurrency() {
    let engine = test_engine();
    let server = serve(
        engine.clone(),
        ServeConfig {
            // A real coalescing window on the system clock: batches
            // form from whatever several threads land together.
            window: Duration::from_millis(2),
            max_batch: 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    const THREADS: u64 = 4;
    const PER_THREAD: usize = 25;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = RouteClient::connect(addr).expect("connect");
                let nets = suite(0xC0A1 + t, PER_THREAD);
                // Pipeline everything, then collect.
                for (i, net) in nets.iter().enumerate() {
                    let request = RouteRequest {
                        id: t * 1_000 + i as u64,
                        net: net.clone(),
                        deadline_ms: None,
                    };
                    client.send(&request).expect("send");
                }
                let mut replies = Vec::new();
                for _ in 0..nets.len() {
                    let reply = client.recv().expect("recv").expect("reply");
                    replies.push(reply);
                }
                (t, nets, replies)
            })
        })
        .collect();

    for handle in handles {
        let (t, nets, replies) = handle.join().expect("client thread");
        assert_eq!(replies.len(), nets.len());
        for (i, reply) in replies.iter().enumerate() {
            // Accepted requests answer in per-connection arrival order.
            let id = t * 1_000 + i as u64;
            assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id));
            assert_eq!(
                frontier_fields(reply),
                direct_frontier(&engine, id, &nets[i]),
                "thread {t} net {i} diverged from direct route"
            );
        }
    }

    let summary = server.shutdown();
    assert_eq!(summary.report.nets, THREADS * PER_THREAD as u64);
    assert_eq!(summary.rejected, 0);
    assert_eq!(summary.report.errors, 0);
}

/// A saturated queue rejects with the documented `"overloaded"` error
/// and `retry_after_ms`; what was admitted still completes at drain.
#[test]
fn backpressure_rejects_beyond_queue_depth() {
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine.clone(),
        ServeConfig {
            // The window is an hour of *virtual* time: it never closes
            // on its own, so the queue must absorb or reject every
            // request we pipeline.
            window: Duration::from_secs(3600),
            max_batch: 64,
            queue_depth: 2,
            retry_after_ms: 7,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let nets = suite(0xBAC4, 10);
    for (i, net) in nets.iter().enumerate() {
        client
            .send(&RouteRequest {
                id: i as u64,
                net: net.clone(),
                deadline_ms: None,
            })
            .expect("send");
    }
    // 2 admitted, 8 rejected — confirmed via metrics before draining.
    let metrics = server.metrics();
    assert!(
        wait_for(Duration::from_secs(10), || {
            patlabor_serve::Metrics::get(&metrics.rejected) == 8
        }),
        "expected 8 overload rejections, saw {}",
        patlabor_serve::Metrics::get(&metrics.rejected)
    );
    assert_eq!(patlabor_serve::Metrics::get(&metrics.requests), 2);

    // Rejections arrive immediately; the 2 admitted replies only
    // arrive once shutdown drains the never-closing window.
    server.begin_shutdown();
    let mut ok = Vec::new();
    let mut overloaded = Vec::new();
    for _ in 0..nets.len() {
        let reply = client.recv().expect("recv").expect("reply");
        let id = reply.get("id").and_then(Json::as_u64).expect("id");
        match reply.get("error").and_then(Json::as_str) {
            None => ok.push(id),
            Some("overloaded") => {
                assert_eq!(
                    reply.get("retry_after_ms").and_then(Json::as_u64),
                    Some(7),
                    "overload rejections must carry the retry hint"
                );
                overloaded.push(id);
            }
            Some(other) => panic!("unexpected error {other}"),
        }
    }
    ok.sort_unstable();
    overloaded.sort_unstable();
    assert_eq!(ok, vec![0, 1], "the first two requests fill the queue");
    assert_eq!(overloaded, (2..10).collect::<Vec<u64>>());

    let summary = server.shutdown();
    assert_eq!(summary.report.nets, 2);
    assert_eq!(summary.rejected, 8);
}

/// Graceful shutdown drains in-flight coalescing windows: requests
/// parked in a window that virtual time can never close are still
/// answered, bit-identical to direct routing, before the server exits.
#[test]
fn shutdown_drains_inflight_windows_on_a_virtual_clock() {
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine.clone(),
        ServeConfig {
            window: Duration::from_secs(3600),
            max_batch: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let nets = suite(0xD4A1, 12);
    for (i, net) in nets.iter().enumerate() {
        client
            .send(&RouteRequest {
                id: i as u64,
                net: net.clone(),
                deadline_ms: None,
            })
            .expect("send");
    }
    let metrics = server.metrics();
    assert!(
        wait_for(Duration::from_secs(10), || {
            patlabor_serve::Metrics::get(&metrics.requests) == 12
        }),
        "requests never reached the queue"
    );
    // Nothing can have been answered: the window cannot close.
    assert_eq!(patlabor_serve::Metrics::get(&metrics.responses), 0);

    server.begin_shutdown();
    for (i, net) in nets.iter().enumerate() {
        let reply = client.recv().expect("recv").expect("reply");
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(
            frontier_fields(&reply),
            direct_frontier(&engine, i as u64, net),
            "drained reply {i} diverged from direct route"
        );
    }
    // After the drain the server hangs up cleanly.
    assert!(client.recv().expect("recv after drain").is_none());

    // Exactly one window carried everything.
    assert_eq!(patlabor_serve::Metrics::get(&metrics.batches), 1);
    let summary = server.shutdown();
    assert_eq!(summary.report.nets, 12);
    assert_eq!(summary.report.errors, 0);
    assert_eq!(summary.rejected, 0);
}

/// Malformed frames answer `"malformed"` without poisoning the
/// connection: the next valid request on the same socket still routes.
#[test]
fn malformed_frames_do_not_poison_the_connection() {
    let server = serve(
        test_engine(),
        ServeConfig {
            window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    client.send_raw(b"this is not json").expect("send raw");
    let reply = client.recv().expect("recv").expect("reply");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("malformed"));
    assert!(reply.get("detail").is_some());

    // The connection survives: a valid request still routes.
    let net = suite(0x11, 1).remove(0);
    let reply = client
        .route(&RouteRequest {
            id: 99,
            net,
            deadline_ms: None,
        })
        .expect("route after malformed");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    let summary = server.shutdown();
    assert_eq!(summary.malformed, 1);
    assert_eq!(summary.report.nets, 1);
}

/// Per-request deadlines ride the degradation ladder: an impossible
/// deadline is still answered (degraded), never errored.
#[test]
fn impossible_deadline_degrades_but_answers() {
    // A zero deadline is exceeded the moment the budget is minted, on
    // any clock; the virtual clock just keeps the rest of the ladder's
    // timing out of the picture.
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine,
        ServeConfig {
            window: Duration::from_secs(3600),
            max_batch: 1, // close each window immediately by count
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    // Degree ≥ 3 so the degree-2 closed form (never deadline-gated)
    // cannot answer.
    let net = suite(0x22, 16)
        .into_iter()
        .find(|n| n.degree() >= 3)
        .expect("degree-3 net");
    let reply = client
        .route(&RouteRequest {
            id: 1,
            net,
            deadline_ms: Some(0),
        })
        .expect("route");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("degraded").and_then(Json::as_bool),
        Some(true),
        "a zero deadline must degrade: {}",
        reply.render()
    );
    assert_eq!(reply.get("rung").and_then(Json::as_str), Some("baseline"));

    let summary = server.shutdown();
    assert_eq!(summary.report.deadline_hits, 1);
}

/// ECO reroute frames share the coalescing windows with fresh routes:
/// a mixed window answers both, and a class-preserving edit whose base
/// was routed in the same window replays (`"source": "reused"`) —
/// fresh sub-batches close before delta sub-batches, so the winners
/// are already resident.
#[test]
fn reroute_frames_replay_in_mixed_windows() {
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine.clone(),
        ServeConfig {
            // Virtual time never closes the window; the 4th request
            // does, making the mixed window deterministic.
            window: Duration::from_secs(3600),
            max_batch: 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let nets: Vec<Net> = suite(0x44, 24)
        .into_iter()
        .filter(|n| (3..=4).contains(&n.degree()))
        .take(3)
        .collect();
    for (i, net) in nets.iter().enumerate() {
        client
            .send(&RouteRequest { id: i as u64, net: net.clone(), deadline_ms: None })
            .expect("send route");
    }
    let delta = NetDelta::new(nets[0].clone(), DeltaKind::Translate { dx: 5, dy: -2 });
    client
        .send_reroute(&RerouteRequest {
            id: 3,
            delta: delta.clone(),
            prior_edits: 0,
            deadline_ms: None,
        })
        .expect("send reroute");

    let mut replies = Vec::new();
    for _ in 0..4 {
        replies.push(client.recv().expect("recv").expect("reply"));
    }
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }
    let eco = &replies[3];
    assert_eq!(
        eco.get("source").and_then(Json::as_str),
        Some("reused"),
        "a translate edit preserves the class and must replay: {}",
        eco.render()
    );
    // The replayed frontier is the one a fresh route of the mutated
    // net produces.
    assert_eq!(
        frontier_fields(eco),
        direct_frontier(&engine, 3, &delta.apply()),
        "replay diverged from routing the mutated net"
    );

    assert_eq!(
        patlabor_serve::Metrics::get(&server.metrics().batches),
        1,
        "one mixed window carried all four requests"
    );
    let summary = server.shutdown();
    assert_eq!(summary.report.nets, 4);
    assert_eq!(summary.report.errors, 0);
}

/// `POST /reroute` mirrors the socket reroute verb: replay after a
/// prior `/route`, malformed bodies get the wire vocabulary.
#[test]
fn http_reroute_replays_after_a_route() {
    let engine = test_engine();
    let server = serve(
        engine.clone(),
        ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let http = server.http_addr().expect("http enabled");

    let base = suite(0x55, 24)
        .into_iter()
        .find(|n| (3..=4).contains(&n.degree()))
        .expect("tabulated net");
    let route = RouteRequest { id: 1, net: base.clone(), deadline_ms: None };
    let (status, _) =
        http_post_route(http, route.to_json().render().as_bytes()).expect("POST /route");
    assert_eq!(status, 200);

    let delta = NetDelta::new(base, DeltaKind::Translate { dx: -4, dy: 9 });
    let reroute = RerouteRequest { id: 2, delta: delta.clone(), prior_edits: 0, deadline_ms: None };
    let (status, body) =
        http_post_reroute(http, reroute.to_json().render().as_bytes()).expect("POST /reroute");
    assert_eq!(status, 200);
    let reply = patlabor_serve::parse(&body).expect("json body");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("source").and_then(Json::as_str),
        Some("reused"),
        "{}",
        reply.render()
    );
    assert_eq!(frontier_fields(&reply), direct_frontier(&engine, 2, &delta.apply()));

    // A reroute body without an edit is malformed, not a 4xx.
    let (status, body) =
        http_post_reroute(http, br#"{"id": 3, "base": [[0,0],[1,1]]}"#).expect("POST");
    assert_eq!(status, 200);
    let reply = patlabor_serve::parse(&body).expect("json");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("malformed"));

    let summary = server.shutdown();
    assert_eq!(summary.malformed, 1);
    assert_eq!(summary.report.nets, 2);
}

/// The HTTP adapter: /healthz, /metrics exposition, and POST /route
/// sharing the wire JSON verbatim.
#[test]
fn http_adapter_serves_metrics_and_routes() {
    let engine = test_engine();
    let server = serve(
        engine.clone(),
        ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let http = server.http_addr().expect("http enabled");

    let (status, body) = patlabor_serve::http_request(http, "GET", "/healthz", &[]).expect("GET");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Route a couple of nets over HTTP; replies match direct routing.
    for (i, net) in suite(0x33, 3).iter().enumerate() {
        let request = RouteRequest {
            id: i as u64,
            net: net.clone(),
            deadline_ms: None,
        };
        let (status, body) =
            http_post_route(http, request.to_json().render().as_bytes()).expect("POST /route");
        assert_eq!(status, 200);
        let reply = patlabor_serve::parse(&body).expect("json body");
        assert_eq!(
            frontier_fields(&reply),
            direct_frontier(&engine, i as u64, net)
        );
    }

    let text = scrape_metrics(http).expect("scrape");
    for family in [
        "patlabor_requests_total 3",
        "patlabor_responses_total 3",
        "patlabor_served_by_rung_total{rung=\"lut\"}",
        "patlabor_latency_seconds{quantile=\"0.99\"}",
        "patlabor_latency_seconds_count 3",
        "patlabor_cache_hit_rate",
        "patlabor_queue_depth 0",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }

    // Unknown paths 404 without killing the listener.
    let (status, _) = patlabor_serve::http_request(http, "GET", "/nope", &[]).expect("GET");
    assert_eq!(status, 404);

    // A malformed HTTP route body gets the wire error vocabulary.
    let (status, body) = http_post_route(http, b"not json").expect("POST");
    assert_eq!(status, 200);
    let reply = patlabor_serve::parse(&body).expect("json");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("malformed"));

    server.shutdown();
}

/// A peer that stalls mid-frame past the watchdog budget is evicted —
/// with the documented `"evicted"` notice before the close — and never
/// blocks drain.
#[test]
fn mid_frame_stall_evicts_without_blocking_drain() {
    use std::io::Write as _;

    let server = serve(
        test_engine(),
        ServeConfig {
            window: Duration::ZERO,
            read_stall: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let metrics = server.metrics();

    // A healthy client keeps routing while the stalled one is evicted.
    let mut healthy = RouteClient::connect(server.addr()).expect("connect healthy");
    let net = suite(0x66, 1).remove(0);
    let reply = healthy
        .route(&RouteRequest { id: 1, net: net.clone(), deadline_ms: None })
        .expect("healthy route");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // The stalled peer: a 100-byte frame prefix, 10 bytes of payload,
    // then silence. Idle-at-boundary is legal forever; this is not.
    let mut stalled = std::net::TcpStream::connect(server.addr()).expect("connect stalled");
    stalled.write_all(&100u32.to_le_bytes()).expect("prefix");
    stalled.write_all(&[0u8; 10]).expect("partial payload");
    stalled.flush().expect("flush");
    assert!(
        wait_for(Duration::from_secs(10), || {
            patlabor_serve::Metrics::get(&metrics.read_timeouts) == 1
        }),
        "the read watchdog never fired"
    );

    // The eviction notice arrives as a well-formed frame, then EOF.
    let mut reader = std::io::BufReader::new(stalled);
    let payload = patlabor_serve::read_frame(&mut reader)
        .expect("read eviction notice")
        .expect("notice frame before close");
    let notice = patlabor_serve::parse(std::str::from_utf8(&payload).expect("utf8"))
        .expect("notice json");
    assert_eq!(notice.get("error").and_then(Json::as_str), Some("evicted"));
    assert!(patlabor_serve::read_frame(&mut reader).expect("eof").is_none());

    // Drain is not held hostage by the evicted connection.
    let started = Instant::now();
    let summary = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain blocked on an evicted connection"
    );
    assert_eq!(summary.read_timeouts, 1);
    assert_eq!(summary.report.nets, 1);
}

/// Deterministic splitmix64 for the garbage corpus — the tests' own
/// copy so the corpus is stable across runs and platforms.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded torn/truncated-frame corpus against both transports: random
/// garbage, oversized prefixes, and frames cut mid-payload must never
/// wedge the server — a fresh client always routes afterwards.
#[test]
fn torn_frame_corpus_never_wedges_either_transport() {
    use std::io::Write as _;

    let server = serve(
        test_engine(),
        ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            window: Duration::ZERO,
            read_stall: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let http = server.http_addr().expect("http enabled");

    for seed in 0..8u64 {
        // Socket protocol: garbage bytes, length-prefix lies, torn tails.
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        let len = (mix(seed) % 64 + 1) as usize;
        let bytes: Vec<u8> = (0..len).map(|i| (mix(seed ^ i as u64) & 0xFF) as u8).collect();
        match seed % 3 {
            // Raw garbage (whatever prefix it implies).
            0 => stream.write_all(&bytes).expect("garbage"),
            // An honest prefix for a frame that never finishes.
            1 => {
                stream.write_all(&(bytes.len() as u32 + 7).to_le_bytes()).expect("prefix");
                stream.write_all(&bytes).expect("torn payload");
            }
            // A prefix larger than MAX_FRAME.
            _ => stream
                .write_all(&(patlabor_serve::MAX_FRAME as u32 + 1).to_le_bytes())
                .expect("oversized prefix"),
        }
        stream.flush().expect("flush");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        // Drain whatever the server says until it hangs up; it must
        // hang up rather than hang.
        let mut reader = std::io::BufReader::new(stream);
        while let Ok(Some(_)) = patlabor_serve::read_frame(&mut reader) {}

        // HTTP adapter: the same garbage as a raw request stream.
        let mut stream = std::net::TcpStream::connect(http).expect("connect http");
        stream.write_all(&bytes).expect("http garbage");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut sink = String::new();
        use std::io::Read as _;
        let _ = stream.read_to_string(&mut sink);
    }

    // The server survived the corpus: both transports still answer.
    let net = suite(0x77, 1).remove(0);
    let mut client = RouteClient::connect(server.addr()).expect("connect after corpus");
    let reply = client
        .route(&RouteRequest { id: 9, net: net.clone(), deadline_ms: None })
        .expect("route after corpus");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let (status, body) = patlabor_serve::http_request(http, "GET", "/healthz", &[]).expect("GET");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    server.shutdown();
}

/// The wire `reload` verb hot-swaps the table under an epoch: answers
/// are identical across the swap, a corrupt candidate is rejected with
/// `"reload-failed"` while the old table keeps serving, and the epoch
/// gauge tracks installs.
#[test]
fn hot_reload_over_the_wire_swaps_and_rejects() {
    use std::io::Write as _;

    let dir = std::env::temp_dir().join("patlabor_serve_reload_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("hot.lut");

    let engine = test_engine();
    engine.table().save(&path).expect("save table");
    let server = serve(
        engine.clone(),
        ServeConfig { window: Duration::ZERO, ..ServeConfig::default() },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let net = suite(0x88, 24)
        .into_iter()
        .find(|n| (3..=4).contains(&n.degree()))
        .expect("tabulated net");
    let before = client
        .route(&RouteRequest { id: 1, net: net.clone(), deadline_ms: None })
        .expect("route before reload");

    // Reload from the freshly saved file: epoch 0 → 1.
    let reload = patlabor_serve::ReloadRequest { id: 2, path: path.display().to_string() };
    client.send_raw(reload.to_json().render().as_bytes()).expect("send reload");
    let reply = client.recv().expect("recv").expect("reload reply");
    assert_eq!(reply.get("reloaded").and_then(Json::as_bool), Some(true), "{}", reply.render());
    assert_eq!(reply.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(
        patlabor_serve::Metrics::get(&server.metrics().table_epoch),
        1,
        "the epoch gauge must track the install"
    );

    // Same question, same answer, new table generation.
    let after = client
        .route(&RouteRequest { id: 3, net: net.clone(), deadline_ms: None })
        .expect("route after reload");
    assert_eq!(frontier_fields(&after), frontier_fields(&before));

    // A corrupt candidate is rejected; the old table keeps serving.
    let corrupt = dir.join("corrupt.lut");
    std::fs::File::create(&corrupt)
        .and_then(|mut f| f.write_all(b"not a lookup table"))
        .expect("write corrupt file");
    let reload = patlabor_serve::ReloadRequest { id: 4, path: corrupt.display().to_string() };
    client.send_raw(reload.to_json().render().as_bytes()).expect("send corrupt reload");
    let reply = client.recv().expect("recv").expect("reload reply");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("reload-failed"));
    let still = client
        .route(&RouteRequest { id: 5, net: net.clone(), deadline_ms: None })
        .expect("route after failed reload");
    assert_eq!(frontier_fields(&still), frontier_fields(&before));
    assert_eq!(
        patlabor_serve::Metrics::get(&server.metrics().reload_failed),
        1
    );
    assert_eq!(patlabor_serve::Metrics::get(&server.metrics().table_epoch), 1);

    server.shutdown();
}

/// A client that stops draining its replies hits the bounded reply
/// buffer and is evicted — the batcher never blocks on it. A stalled
/// write (chaos `stall-write` at probability 1) parks the writer so
/// the buffer actually fills.
#[test]
fn full_reply_buffer_evicts_instead_of_blocking() {
    let chaos = patlabor_serve::TransportPlane::seeded(0x51)
        .with_spec("stall-write:1.0")
        .expect("spec")
        .with_delay(Duration::from_millis(500));
    let server = serve(
        test_engine(),
        ServeConfig {
            window: Duration::ZERO,
            reply_buffer: 1,
            chaos,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let metrics = server.metrics();

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    for (i, net) in suite(0x99, 6).iter().enumerate() {
        client
            .send(&RouteRequest { id: i as u64, net: net.clone(), deadline_ms: None })
            .expect("send");
    }
    // Reply 1 parks the writer in the injected stall, reply 2 fills
    // the buffer, some later reply must find it full and evict.
    assert!(
        wait_for(Duration::from_secs(10), || {
            patlabor_serve::Metrics::get(&metrics.evicted) >= 1
        }),
        "a full reply buffer never evicted the connection"
    );
    let summary = server.shutdown();
    assert!(summary.evicted >= 1);
    assert!(summary.chaos_injected >= 1);
}

/// Drain under an active fault schedule: SIGINT-style `begin_shutdown`
/// while faults fire, and the crash-only ledger must still balance —
/// every response the server counts sits in exactly one ladder rung,
/// and drain completes within a bound.
#[test]
fn drain_under_chaos_keeps_the_ledger_balanced() {
    let chaos = patlabor_serve::TransportPlane::seeded(0xC4A05)
        .with_spec("torn-write:0.08")
        .and_then(|p| p.with_spec("corrupt-write:0.08"))
        .and_then(|p| p.with_spec("disconnect:0.05"))
        .and_then(|p| p.with_spec("delay-read:0.10"))
        .expect("specs")
        .with_delay(Duration::from_millis(5));
    let server = serve(
        test_engine(),
        ServeConfig {
            window: Duration::from_millis(1),
            read_stall: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            chaos,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    const CLIENTS: u64 = 4;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut answered = 0u64;
                let nets = suite(0xAB + t, 40);
                // Reconnect whenever chaos kills the connection; every
                // request is answered or its connection observably dies.
                let mut it = nets.iter().enumerate();
                let mut current = it.next();
                'outer: while current.is_some() {
                    let Ok(mut client) = RouteClient::connect(addr) else {
                        break;
                    };
                    while let Some((i, net)) = current {
                        let request = RouteRequest {
                            id: t * 1_000 + i as u64,
                            net: net.clone(),
                            deadline_ms: None,
                        };
                        match client.route(&request) {
                            Ok(reply) => {
                                if reply.get("error").is_none() {
                                    answered += 1;
                                }
                                current = it.next();
                            }
                            // Torn, corrupt, or closed — the connection
                            // is dead either way; move on with a fresh
                            // one and retry this net once.
                            Err(_) => continue 'outer,
                        }
                    }
                }
                answered
            })
        })
        .collect();

    // SIGINT mid-chaos: drain starts while clients and faults are
    // still active. Undelivered clients see `shutting-down` or a
    // closed connection, never a hang.
    std::thread::sleep(Duration::from_millis(100));
    server.begin_shutdown();
    let answered: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
    assert!(answered > 0, "chaos at these rates must let most requests through");

    let started = Instant::now();
    let summary = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain under chaos exceeded its bound"
    );
    assert!(summary.chaos_injected > 0, "the schedule never fired");
    // The crash-only ledger: every counted response sits in exactly
    // one rung, and clients never saw more answers than were sent.
    assert_eq!(summary.served_by.iter().sum::<u64>(), summary.responses);
    assert!(answered <= summary.responses);
}
