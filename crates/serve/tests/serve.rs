//! End-to-end tests for the serve daemon: coalescing determinism,
//! admission-control backpressure, virtual-clock drain semantics, and
//! the HTTP adapter. Every test that needs to control time runs the
//! engine on a [`VirtualClock`], under which a coalescing window can
//! only close by `max_batch` or by drain — so the tests stage exact
//! interleavings with zero sleeps and zero race-prone timing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use patlabor::{DeltaKind, Engine, LutBuilder, Net, NetDelta, VirtualClock};
use patlabor_serve::{
    http_post_reroute, http_post_route, scrape_metrics, serve, Json, RerouteRequest, RouteClient,
    RouteRequest, ServeConfig,
};

fn test_engine() -> Engine {
    Engine::with_table(LutBuilder::new(4).threads(2).build())
}

fn suite(seed: u64, count: usize) -> Vec<Net> {
    patlabor_netgen::iccad_like_suite(seed, count, 4)
}

/// The reference answer: what an in-process `route` serializes for
/// this net. The wire reply must match this bit for bit on the fields
/// that describe the routing answer (frontier, degree, ok).
fn direct_frontier(engine: &Engine, id: u64, net: &Net) -> String {
    let result = engine.route(net);
    let json = patlabor_serve::result_to_json(id, &result);
    frontier_fields(&json)
}

fn frontier_fields(json: &Json) -> String {
    format!(
        "ok={} degree={} frontier={}",
        json.get("ok").map_or("-".into(), Json::render),
        json.get("degree").map_or("-".into(), Json::render),
        json.get("frontier").map_or("-".into(), Json::render),
    )
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// Any interleaving of concurrent clients through the coalescer must
/// produce exactly the frontiers the in-process router produces.
#[test]
fn coalesced_replies_match_direct_route_under_concurrency() {
    let engine = test_engine();
    let server = serve(
        engine.clone(),
        ServeConfig {
            // A real coalescing window on the system clock: batches
            // form from whatever several threads land together.
            window: Duration::from_millis(2),
            max_batch: 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    const THREADS: u64 = 4;
    const PER_THREAD: usize = 25;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = RouteClient::connect(addr).expect("connect");
                let nets = suite(0xC0A1 + t, PER_THREAD);
                // Pipeline everything, then collect.
                for (i, net) in nets.iter().enumerate() {
                    let request = RouteRequest {
                        id: t * 1_000 + i as u64,
                        net: net.clone(),
                        deadline_ms: None,
                    };
                    client.send(&request).expect("send");
                }
                let mut replies = Vec::new();
                for _ in 0..nets.len() {
                    let reply = client.recv().expect("recv").expect("reply");
                    replies.push(reply);
                }
                (t, nets, replies)
            })
        })
        .collect();

    for handle in handles {
        let (t, nets, replies) = handle.join().expect("client thread");
        assert_eq!(replies.len(), nets.len());
        for (i, reply) in replies.iter().enumerate() {
            // Accepted requests answer in per-connection arrival order.
            let id = t * 1_000 + i as u64;
            assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id));
            assert_eq!(
                frontier_fields(reply),
                direct_frontier(&engine, id, &nets[i]),
                "thread {t} net {i} diverged from direct route"
            );
        }
    }

    let summary = server.shutdown();
    assert_eq!(summary.report.nets, THREADS * PER_THREAD as u64);
    assert_eq!(summary.rejected, 0);
    assert_eq!(summary.report.errors, 0);
}

/// A saturated queue rejects with the documented `"overloaded"` error
/// and `retry_after_ms`; what was admitted still completes at drain.
#[test]
fn backpressure_rejects_beyond_queue_depth() {
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine.clone(),
        ServeConfig {
            // The window is an hour of *virtual* time: it never closes
            // on its own, so the queue must absorb or reject every
            // request we pipeline.
            window: Duration::from_secs(3600),
            max_batch: 64,
            queue_depth: 2,
            retry_after_ms: 7,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let nets = suite(0xBAC4, 10);
    for (i, net) in nets.iter().enumerate() {
        client
            .send(&RouteRequest {
                id: i as u64,
                net: net.clone(),
                deadline_ms: None,
            })
            .expect("send");
    }
    // 2 admitted, 8 rejected — confirmed via metrics before draining.
    let metrics = server.metrics();
    assert!(
        wait_for(Duration::from_secs(10), || {
            patlabor_serve::Metrics::get(&metrics.rejected) == 8
        }),
        "expected 8 overload rejections, saw {}",
        patlabor_serve::Metrics::get(&metrics.rejected)
    );
    assert_eq!(patlabor_serve::Metrics::get(&metrics.requests), 2);

    // Rejections arrive immediately; the 2 admitted replies only
    // arrive once shutdown drains the never-closing window.
    server.begin_shutdown();
    let mut ok = Vec::new();
    let mut overloaded = Vec::new();
    for _ in 0..nets.len() {
        let reply = client.recv().expect("recv").expect("reply");
        let id = reply.get("id").and_then(Json::as_u64).expect("id");
        match reply.get("error").and_then(Json::as_str) {
            None => ok.push(id),
            Some("overloaded") => {
                assert_eq!(
                    reply.get("retry_after_ms").and_then(Json::as_u64),
                    Some(7),
                    "overload rejections must carry the retry hint"
                );
                overloaded.push(id);
            }
            Some(other) => panic!("unexpected error {other}"),
        }
    }
    ok.sort_unstable();
    overloaded.sort_unstable();
    assert_eq!(ok, vec![0, 1], "the first two requests fill the queue");
    assert_eq!(overloaded, (2..10).collect::<Vec<u64>>());

    let summary = server.shutdown();
    assert_eq!(summary.report.nets, 2);
    assert_eq!(summary.rejected, 8);
}

/// Graceful shutdown drains in-flight coalescing windows: requests
/// parked in a window that virtual time can never close are still
/// answered, bit-identical to direct routing, before the server exits.
#[test]
fn shutdown_drains_inflight_windows_on_a_virtual_clock() {
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine.clone(),
        ServeConfig {
            window: Duration::from_secs(3600),
            max_batch: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let nets = suite(0xD4A1, 12);
    for (i, net) in nets.iter().enumerate() {
        client
            .send(&RouteRequest {
                id: i as u64,
                net: net.clone(),
                deadline_ms: None,
            })
            .expect("send");
    }
    let metrics = server.metrics();
    assert!(
        wait_for(Duration::from_secs(10), || {
            patlabor_serve::Metrics::get(&metrics.requests) == 12
        }),
        "requests never reached the queue"
    );
    // Nothing can have been answered: the window cannot close.
    assert_eq!(patlabor_serve::Metrics::get(&metrics.responses), 0);

    server.begin_shutdown();
    for (i, net) in nets.iter().enumerate() {
        let reply = client.recv().expect("recv").expect("reply");
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(
            frontier_fields(&reply),
            direct_frontier(&engine, i as u64, net),
            "drained reply {i} diverged from direct route"
        );
    }
    // After the drain the server hangs up cleanly.
    assert!(client.recv().expect("recv after drain").is_none());

    // Exactly one window carried everything.
    assert_eq!(patlabor_serve::Metrics::get(&metrics.batches), 1);
    let summary = server.shutdown();
    assert_eq!(summary.report.nets, 12);
    assert_eq!(summary.report.errors, 0);
    assert_eq!(summary.rejected, 0);
}

/// Malformed frames answer `"malformed"` without poisoning the
/// connection: the next valid request on the same socket still routes.
#[test]
fn malformed_frames_do_not_poison_the_connection() {
    let server = serve(
        test_engine(),
        ServeConfig {
            window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    client.send_raw(b"this is not json").expect("send raw");
    let reply = client.recv().expect("recv").expect("reply");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("malformed"));
    assert!(reply.get("detail").is_some());

    // The connection survives: a valid request still routes.
    let net = suite(0x11, 1).remove(0);
    let reply = client
        .route(&RouteRequest {
            id: 99,
            net,
            deadline_ms: None,
        })
        .expect("route after malformed");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    let summary = server.shutdown();
    assert_eq!(summary.malformed, 1);
    assert_eq!(summary.report.nets, 1);
}

/// Per-request deadlines ride the degradation ladder: an impossible
/// deadline is still answered (degraded), never errored.
#[test]
fn impossible_deadline_degrades_but_answers() {
    // A zero deadline is exceeded the moment the budget is minted, on
    // any clock; the virtual clock just keeps the rest of the ladder's
    // timing out of the picture.
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine,
        ServeConfig {
            window: Duration::from_secs(3600),
            max_batch: 1, // close each window immediately by count
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    // Degree ≥ 3 so the degree-2 closed form (never deadline-gated)
    // cannot answer.
    let net = suite(0x22, 16)
        .into_iter()
        .find(|n| n.degree() >= 3)
        .expect("degree-3 net");
    let reply = client
        .route(&RouteRequest {
            id: 1,
            net,
            deadline_ms: Some(0),
        })
        .expect("route");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("degraded").and_then(Json::as_bool),
        Some(true),
        "a zero deadline must degrade: {}",
        reply.render()
    );
    assert_eq!(reply.get("rung").and_then(Json::as_str), Some("baseline"));

    let summary = server.shutdown();
    assert_eq!(summary.report.deadline_hits, 1);
}

/// ECO reroute frames share the coalescing windows with fresh routes:
/// a mixed window answers both, and a class-preserving edit whose base
/// was routed in the same window replays (`"source": "reused"`) —
/// fresh sub-batches close before delta sub-batches, so the winners
/// are already resident.
#[test]
fn reroute_frames_replay_in_mixed_windows() {
    let clock = Arc::new(VirtualClock::new());
    let engine = test_engine().with_clock(clock);
    let server = serve(
        engine.clone(),
        ServeConfig {
            // Virtual time never closes the window; the 4th request
            // does, making the mixed window deterministic.
            window: Duration::from_secs(3600),
            max_batch: 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let mut client = RouteClient::connect(server.addr()).expect("connect");
    let nets: Vec<Net> = suite(0x44, 24)
        .into_iter()
        .filter(|n| (3..=4).contains(&n.degree()))
        .take(3)
        .collect();
    for (i, net) in nets.iter().enumerate() {
        client
            .send(&RouteRequest { id: i as u64, net: net.clone(), deadline_ms: None })
            .expect("send route");
    }
    let delta = NetDelta::new(nets[0].clone(), DeltaKind::Translate { dx: 5, dy: -2 });
    client
        .send_reroute(&RerouteRequest {
            id: 3,
            delta: delta.clone(),
            prior_edits: 0,
            deadline_ms: None,
        })
        .expect("send reroute");

    let mut replies = Vec::new();
    for _ in 0..4 {
        replies.push(client.recv().expect("recv").expect("reply"));
    }
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }
    let eco = &replies[3];
    assert_eq!(
        eco.get("source").and_then(Json::as_str),
        Some("reused"),
        "a translate edit preserves the class and must replay: {}",
        eco.render()
    );
    // The replayed frontier is the one a fresh route of the mutated
    // net produces.
    assert_eq!(
        frontier_fields(eco),
        direct_frontier(&engine, 3, &delta.apply()),
        "replay diverged from routing the mutated net"
    );

    assert_eq!(
        patlabor_serve::Metrics::get(&server.metrics().batches),
        1,
        "one mixed window carried all four requests"
    );
    let summary = server.shutdown();
    assert_eq!(summary.report.nets, 4);
    assert_eq!(summary.report.errors, 0);
}

/// `POST /reroute` mirrors the socket reroute verb: replay after a
/// prior `/route`, malformed bodies get the wire vocabulary.
#[test]
fn http_reroute_replays_after_a_route() {
    let engine = test_engine();
    let server = serve(
        engine.clone(),
        ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let http = server.http_addr().expect("http enabled");

    let base = suite(0x55, 24)
        .into_iter()
        .find(|n| (3..=4).contains(&n.degree()))
        .expect("tabulated net");
    let route = RouteRequest { id: 1, net: base.clone(), deadline_ms: None };
    let (status, _) =
        http_post_route(http, route.to_json().render().as_bytes()).expect("POST /route");
    assert_eq!(status, 200);

    let delta = NetDelta::new(base, DeltaKind::Translate { dx: -4, dy: 9 });
    let reroute = RerouteRequest { id: 2, delta: delta.clone(), prior_edits: 0, deadline_ms: None };
    let (status, body) =
        http_post_reroute(http, reroute.to_json().render().as_bytes()).expect("POST /reroute");
    assert_eq!(status, 200);
    let reply = patlabor_serve::parse(&body).expect("json body");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("source").and_then(Json::as_str),
        Some("reused"),
        "{}",
        reply.render()
    );
    assert_eq!(frontier_fields(&reply), direct_frontier(&engine, 2, &delta.apply()));

    // A reroute body without an edit is malformed, not a 4xx.
    let (status, body) =
        http_post_reroute(http, br#"{"id": 3, "base": [[0,0],[1,1]]}"#).expect("POST");
    assert_eq!(status, 200);
    let reply = patlabor_serve::parse(&body).expect("json");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("malformed"));

    let summary = server.shutdown();
    assert_eq!(summary.malformed, 1);
    assert_eq!(summary.report.nets, 2);
}

/// The HTTP adapter: /healthz, /metrics exposition, and POST /route
/// sharing the wire JSON verbatim.
#[test]
fn http_adapter_serves_metrics_and_routes() {
    let engine = test_engine();
    let server = serve(
        engine.clone(),
        ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            window: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let http = server.http_addr().expect("http enabled");

    let (status, body) = patlabor_serve::http_request(http, "GET", "/healthz", &[]).expect("GET");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Route a couple of nets over HTTP; replies match direct routing.
    for (i, net) in suite(0x33, 3).iter().enumerate() {
        let request = RouteRequest {
            id: i as u64,
            net: net.clone(),
            deadline_ms: None,
        };
        let (status, body) =
            http_post_route(http, request.to_json().render().as_bytes()).expect("POST /route");
        assert_eq!(status, 200);
        let reply = patlabor_serve::parse(&body).expect("json body");
        assert_eq!(
            frontier_fields(&reply),
            direct_frontier(&engine, i as u64, net)
        );
    }

    let text = scrape_metrics(http).expect("scrape");
    for family in [
        "patlabor_requests_total 3",
        "patlabor_responses_total 3",
        "patlabor_served_by_rung_total{rung=\"lut\"}",
        "patlabor_latency_seconds{quantile=\"0.99\"}",
        "patlabor_latency_seconds_count 3",
        "patlabor_cache_hit_rate",
        "patlabor_queue_depth 0",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }

    // Unknown paths 404 without killing the listener.
    let (status, _) = patlabor_serve::http_request(http, "GET", "/nope", &[]).expect("GET");
    assert_eq!(status, 404);

    // A malformed HTTP route body gets the wire error vocabulary.
    let (status, body) = http_post_route(http, b"not json").expect("POST");
    assert_eq!(status, 200);
    let reply = patlabor_serve::parse(&body).expect("json");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("malformed"));

    server.shutdown();
}
