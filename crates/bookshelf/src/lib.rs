//! Bookshelf placement-format parsing (the format the ICCAD-15 benchmark
//! ships in).
//!
//! The paper evaluates on ICCAD-15, which we cannot redistribute; this
//! crate closes the gap from the user's side: anyone holding the
//! benchmark can parse its `.aux` / `.nodes` / `.pl` / `.nets` files into
//! [`Net`]s and run every experiment on the real data.
//!
//! Supported subset (what routing needs):
//!
//! * `.nodes` — cell names and dimensions (`terminal` flag accepted);
//! * `.pl` — placed cell positions (orientation tokens accepted,
//!   offsets are applied from cell centers);
//! * `.nets` — net pin lists with `I`/`O` directions and pin offsets;
//!   the `O` (driver) pin becomes the net's source;
//! * `.aux` — the index file tying the above together.
//!
//! # Example
//!
//! ```
//! use patlabor_bookshelf::parse_design_strs;
//!
//! let nodes = "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n a 2 2\n b 2 2\n";
//! let pl = "UCLA pl 1.0\n a 10 20 : N\n b 40 50 : N\n";
//! let nets = "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n\
//!             NetDegree : 2 n0\n a O : 0 0\n b I : 0 0\n";
//! let design = parse_design_strs(nodes, pl, nets)?;
//! assert_eq!(design.nets.len(), 1);
//! assert_eq!(design.nets[0].source(), patlabor_geom::Point::new(11, 21));
//! # Ok::<(), patlabor_bookshelf::ParseBookshelfError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use patlabor_geom::{Net, Point};

/// A parsed design: placed cells and routable nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// Net list; each net's source pin is the `O`-direction pin (or the
    /// first pin when no direction is given).
    pub nets: Vec<Net>,
    /// Net names, aligned with `nets`.
    pub net_names: Vec<String>,
    /// Number of placed cells.
    pub num_cells: usize,
}

/// Error from parsing Bookshelf files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBookshelfError {
    /// Which file the error is in (`nodes`, `pl`, `nets`, `aux`).
    pub file: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseBookshelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} line {}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for ParseBookshelfError {}

fn err(file: &'static str, line: usize, message: impl Into<String>) -> ParseBookshelfError {
    ParseBookshelfError {
        file,
        line,
        message: message.into(),
    }
}

/// Lines of a Bookshelf file that carry content: strips the `UCLA` header,
/// comments (`#`) and blanks; yields `(line_number, content)`.
fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, raw)| {
        let s = raw.split('#').next().unwrap_or("").trim();
        if s.is_empty() || s.starts_with("UCLA") {
            None
        } else {
            Some((i + 1, s))
        }
    })
}

/// Parses a `Key : value` header line; returns the value.
fn header_value(s: &str) -> Option<&str> {
    let (_, v) = s.split_once(':')?;
    Some(v.trim())
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    width: i64,
    height: i64,
    x: i64,
    y: i64,
}

fn parse_nodes(text: &str) -> Result<HashMap<String, Cell>, ParseBookshelfError> {
    let mut cells = HashMap::new();
    for (line, s) in content_lines(text) {
        if s.starts_with("NumNodes") || s.starts_with("NumTerminals") {
            continue;
        }
        let mut it = s.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| err("nodes", line, "missing node name"))?;
        let width: i64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("nodes", line, "missing/invalid width"))?;
        let height: i64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("nodes", line, "missing/invalid height"))?;
        // Optional trailing "terminal" / "terminal_NI" token is ignored.
        cells.insert(
            name.to_string(),
            Cell {
                width,
                height,
                x: 0,
                y: 0,
            },
        );
    }
    Ok(cells)
}

fn parse_pl(text: &str, cells: &mut HashMap<String, Cell>) -> Result<(), ParseBookshelfError> {
    for (line, s) in content_lines(text) {
        let mut it = s.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| err("pl", line, "missing node name"))?;
        let x: i64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("pl", line, "missing/invalid x"))?;
        let y: i64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("pl", line, "missing/invalid y"))?;
        let cell = cells
            .get_mut(name)
            .ok_or_else(|| err("pl", line, format!("unknown node `{name}`")))?;
        cell.x = x;
        cell.y = y;
    }
    Ok(())
}

fn parse_nets(
    text: &str,
    cells: &HashMap<String, Cell>,
) -> Result<(Vec<Net>, Vec<String>), ParseBookshelfError> {
    let mut nets = Vec::new();
    let mut names = Vec::new();
    let mut lines = content_lines(text).peekable();
    let mut anonymous = 0usize;
    while let Some((line, s)) = lines.next() {
        if s.starts_with("NumNets") || s.starts_with("NumPins") {
            continue;
        }
        if !s.starts_with("NetDegree") {
            return Err(err("nets", line, format!("expected `NetDegree`, got `{s}`")));
        }
        let rest = header_value(s).ok_or_else(|| err("nets", line, "malformed NetDegree"))?;
        let mut it = rest.split_whitespace();
        let degree: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("nets", line, "NetDegree needs a count"))?;
        let name = it.next().map(str::to_string).unwrap_or_else(|| {
            anonymous += 1;
            format!("net_{anonymous}")
        });
        let mut source: Option<Point> = None;
        let mut sinks: Vec<Point> = Vec::new();
        for _ in 0..degree {
            let (pin_line, pin) = lines
                .next()
                .ok_or_else(|| err("nets", line, "net truncated"))?;
            let mut pt = pin.split_whitespace();
            let node = pt
                .next()
                .ok_or_else(|| err("nets", pin_line, "missing pin node"))?;
            let direction = pt.next().unwrap_or("I");
            // Optional ": dx dy" offsets from the cell center.
            let mut dx = 0i64;
            let mut dy = 0i64;
            let offsets: Vec<&str> = pt.filter(|t| *t != ":").collect();
            if offsets.len() >= 2 {
                dx = parse_offset(offsets[0], pin_line)?;
                dy = parse_offset(offsets[1], pin_line)?;
            }
            let cell = cells
                .get(node)
                .ok_or_else(|| err("nets", pin_line, format!("unknown node `{node}`")))?;
            let pos = Point::new(
                cell.x + cell.width / 2 + dx,
                cell.y + cell.height / 2 + dy,
            );
            if direction.eq_ignore_ascii_case("O") && source.is_none() {
                source = Some(pos);
            } else {
                sinks.push(pos);
            }
        }
        let mut pins = Vec::with_capacity(degree);
        // With no driver listed, pin order is kept and the first pin drives.
        if let Some(src) = source {
            pins.push(src);
        }
        pins.append(&mut sinks);
        if pins.len() < 2 {
            // Single-pin nets exist in real benchmarks; skip them (they
            // need no routing).
            continue;
        }
        let net = Net::new(pins).expect("length checked above");
        nets.push(net);
        names.push(name);
    }
    Ok((nets, names))
}

fn parse_offset(token: &str, line: usize) -> Result<i64, ParseBookshelfError> {
    // Offsets may be fractional in some generations of the format; round
    // toward zero to stay on the integer grid.
    if let Ok(v) = token.parse::<i64>() {
        return Ok(v);
    }
    token
        .parse::<f64>()
        .map(|v| v as i64)
        .map_err(|_| err("nets", line, format!("bad offset `{token}`")))
}

/// Parses a design from in-memory file contents.
///
/// # Errors
///
/// Returns the first syntax or cross-reference error.
pub fn parse_design_strs(
    nodes: &str,
    pl: &str,
    nets: &str,
) -> Result<Design, ParseBookshelfError> {
    let mut cells = parse_nodes(nodes)?;
    parse_pl(pl, &mut cells)?;
    let (nets, net_names) = parse_nets(nets, &cells)?;
    Ok(Design {
        nets,
        net_names,
        num_cells: cells.len(),
    })
}

/// Loads a design from an `.aux` file (resolving the `.nodes`, `.pl` and
/// `.nets` files it references, relative to the `.aux` location).
///
/// # Errors
///
/// I/O problems and parse errors are both reported as
/// [`ParseBookshelfError`] (I/O uses line 0).
pub fn load_design(aux_path: impl AsRef<Path>) -> Result<Design, ParseBookshelfError> {
    let aux_path = aux_path.as_ref();
    let aux = std::fs::read_to_string(aux_path)
        .map_err(|e| err("aux", 0, format!("{}: {e}", aux_path.display())))?;
    let dir = aux_path.parent().unwrap_or_else(|| Path::new("."));
    let mut nodes = None;
    let mut pl = None;
    let mut nets = None;
    for token in aux.split_whitespace() {
        let lower = token.to_ascii_lowercase();
        let slot = if lower.ends_with(".nodes") {
            &mut nodes
        } else if lower.ends_with(".pl") {
            &mut pl
        } else if lower.ends_with(".nets") {
            &mut nets
        } else {
            continue;
        };
        *slot = Some(dir.join(token));
    }
    let read = |path: Option<std::path::PathBuf>, what: &'static str| {
        let path = path.ok_or_else(|| err("aux", 0, format!("no .{what} file referenced")))?;
        std::fs::read_to_string(&path)
            .map_err(|e| err("aux", 0, format!("{}: {e}", path.display())))
    };
    parse_design_strs(
        &read(nodes, "nodes")?,
        &read(pl, "pl")?,
        &read(nets, "nets")?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: &str = "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n\
                         a 2 2\n b 4 2\n pad 0 0 terminal\n";
    const PL: &str = "UCLA pl 1.0\n a 10 20 : N\n b 40 50 : FS\n pad 0 0 : N\n";
    const NETS: &str = "UCLA nets 1.0\nNumNets : 2\nNumPins : 5\n\
                        NetDegree : 3 clk\n a O : 0 0\n b I : 1 -1\n pad I\n\
                        NetDegree : 2\n b O : 0 0\n a I : 0 0\n";

    #[test]
    fn parses_a_full_design() {
        let d = parse_design_strs(NODES, PL, NETS).unwrap();
        assert_eq!(d.num_cells, 3);
        assert_eq!(d.nets.len(), 2);
        assert_eq!(d.net_names, vec!["clk", "net_1"]);
        // clk: source = a center (11, 21); sinks = b center + (1,-1) =
        // (43, 50), pad (0,0).
        assert_eq!(d.nets[0].source(), Point::new(11, 21));
        assert_eq!(d.nets[0].pins()[1], Point::new(43, 50));
        assert_eq!(d.nets[0].pins()[2], Point::new(0, 0));
        // Second net: source = b center (42, 51).
        assert_eq!(d.nets[1].source(), Point::new(42, 51));
    }

    #[test]
    fn single_pin_nets_are_skipped() {
        let nets = "NumNets : 1\nNetDegree : 1 lonely\n a O : 0 0\n";
        let d = parse_design_strs(NODES, PL, nets).unwrap();
        assert!(d.nets.is_empty());
    }

    #[test]
    fn fractional_offsets_round() {
        let nets = "NetDegree : 2 n\n a O : 0.5 -0.5\n b I : 0 0\n";
        let d = parse_design_strs(NODES, PL, nets).unwrap();
        assert_eq!(d.nets[0].source(), Point::new(11, 21));
    }

    #[test]
    fn unknown_node_is_reported_with_location() {
        let nets = "NetDegree : 2 n\n ghost O : 0 0\n b I : 0 0\n";
        let e = parse_design_strs(NODES, PL, nets).unwrap_err();
        assert_eq!(e.file, "nets");
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn truncated_net_is_an_error() {
        let nets = "NetDegree : 3 n\n a O : 0 0\n b I : 0 0\n";
        let e = parse_design_strs(NODES, PL, nets).unwrap_err();
        assert!(e.message.contains("truncated"));
    }

    #[test]
    fn garbage_header_is_an_error() {
        let nets = "definitely not bookshelf\n";
        let e = parse_design_strs(NODES, PL, nets).unwrap_err();
        assert!(e.message.contains("NetDegree"));
    }

    #[test]
    fn missing_driver_keeps_pin_order() {
        let nets = "NetDegree : 2 n\n a I : 0 0\n b I : 0 0\n";
        let d = parse_design_strs(NODES, PL, nets).unwrap();
        assert_eq!(d.nets[0].source(), Point::new(11, 21)); // a first
    }

    #[test]
    fn aux_loading_roundtrip() {
        let dir = std::env::temp_dir().join("patlabor_bookshelf_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("d.nodes"), NODES).unwrap();
        std::fs::write(dir.join("d.pl"), PL).unwrap();
        std::fs::write(dir.join("d.nets"), NETS).unwrap();
        std::fs::write(
            dir.join("d.aux"),
            "RowBasedPlacement : d.nodes d.nets d.pl\n",
        )
        .unwrap();
        let d = load_design(dir.join("d.aux")).unwrap();
        assert_eq!(d.nets.len(), 2);
        let e = load_design(dir.join("missing.aux")).unwrap_err();
        assert_eq!(e.file, "aux");
    }
}
