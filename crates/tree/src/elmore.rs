//! Elmore (RC) delay evaluation — the extension direction the paper's
//! conclusion sketches ("extend our approach to other metrics").
//!
//! The paper's delay objective is the source→sink *path length* (linear
//! delay). Physical sign-off uses the Elmore model: each wire segment is
//! an RC π-section and the delay to a sink is
//!
//! ```text
//! t(s) = R_drv · C_total + Σ_{e ∈ path(root→s)} R_e · (C_e / 2 + C_below(e))
//! ```
//!
//! Path-length-optimal trees are good Elmore candidates (Elmore delay
//! grows with both path resistance and loading), so a natural extension
//! re-ranks a PatLabor Pareto set under Elmore — the `elmore` experiment
//! binary quantifies how well that works.

use crate::RoutingTree;

/// RC parameters of the Elmore model (units are arbitrary but must be
/// mutually consistent; delays come out in `R·C` units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElmoreModel {
    /// Resistance per unit wirelength.
    pub unit_resistance: f64,
    /// Capacitance per unit wirelength.
    pub unit_capacitance: f64,
    /// Lumped input capacitance of every sink pin.
    pub sink_capacitance: f64,
    /// Output resistance of the driver at the source.
    pub driver_resistance: f64,
}

impl Default for ElmoreModel {
    /// A generic technology-neutral default (unit wire R/C, a sink load
    /// worth 20 wire units, a driver worth 30).
    fn default() -> Self {
        ElmoreModel {
            unit_resistance: 1.0,
            unit_capacitance: 1.0,
            sink_capacitance: 20.0,
            driver_resistance: 30.0,
        }
    }
}

/// Elmore delay at every node of the tree (index = node id; entries for
/// Steiner nodes are the delays at those internal points).
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Point};
/// use patlabor_tree::{elmore_delays, ElmoreModel, RoutingTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(10, 0)])?;
/// let tree = RoutingTree::direct(&net);
/// let model = ElmoreModel::default();
/// let delays = elmore_delays(&tree, &model);
/// // R_drv·(10c + C_sink) + 10r·(10c/2 + C_sink) = 30·30 + 10·25
/// assert!((delays[1] - (900.0 + 250.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn elmore_delays(tree: &RoutingTree, model: &ElmoreModel) -> Vec<f64> {
    let n = tree.num_nodes();
    let children = tree.children();

    // Subtree capacitance (wire + sink loads), bottom-up.
    let mut cap = vec![0.0f64; n];
    let order = topo_order(tree, &children);
    for &v in order.iter().rev() {
        if v >= 1 && v < tree.num_pins() {
            cap[v] += model.sink_capacitance;
        }
        for &c in &children[v] {
            let wire = tree.point(v).l1(tree.point(c)) as f64 * model.unit_capacitance;
            cap[v] += cap[c] + wire;
        }
    }

    // Delays top-down.
    let mut delay = vec![0.0f64; n];
    delay[0] = model.driver_resistance * cap[0];
    for &v in &order {
        for &c in &children[v] {
            let len = tree.point(v).l1(tree.point(c)) as f64;
            let r = len * model.unit_resistance;
            let c_edge = len * model.unit_capacitance;
            delay[c] = delay[v] + r * (c_edge / 2.0 + cap[c]);
        }
    }
    delay
}

/// Maximum Elmore delay over the sinks.
pub fn max_elmore(tree: &RoutingTree, model: &ElmoreModel) -> f64 {
    let delays = elmore_delays(tree, model);
    (1..tree.num_pins())
        .map(|pin| delays[pin])
        .fold(0.0, f64::max)
}

/// Root-first order (parents before children).
fn topo_order(tree: &RoutingTree, children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::with_capacity(tree.num_nodes());
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        order.push(v);
        stack.extend(&children[v]);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::{Net, Point};

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn two_pin_closed_form() {
        let n = net(&[(0, 0), (10, 0)]);
        let t = RoutingTree::direct(&n);
        let m = ElmoreModel::default();
        // cap_total = 10·1 + 20 = 30; driver term 30·30 = 900;
        // wire term 10·(5 + 20) = 250.
        assert!((max_elmore(&t, &m) - 1150.0).abs() < 1e-9);
    }

    #[test]
    fn branching_loads_slow_each_other() {
        // Two sinks sharing a trunk: each sink sees the other's load
        // through the shared segment, so its delay exceeds its own
        // point-to-point delay.
        let shared = net(&[(0, 0), (10, 1), (10, -1)]);
        let t = RoutingTree::from_edges(
            &shared,
            &[
                (Point::new(0, 0), Point::new(10, 0)),
                (Point::new(10, 0), Point::new(10, 1)),
                (Point::new(10, 0), Point::new(10, -1)),
            ],
        )
        .unwrap();
        let single = net(&[(0, 0), (10, 1)]);
        let alone = RoutingTree::direct(&single);
        let m = ElmoreModel::default();
        let d_shared = elmore_delays(&t, &m)[1];
        let d_alone = elmore_delays(&alone, &m)[1];
        assert!(d_shared > d_alone);
    }

    #[test]
    fn longer_paths_have_larger_elmore() {
        let n = net(&[(0, 0), (5, 0), (20, 0)]);
        let t = RoutingTree::from_parents(n.pins().to_vec(), vec![0, 0, 1], 3).unwrap();
        let m = ElmoreModel::default();
        let d = elmore_delays(&t, &m);
        assert!(d[2] > d[1]);
        assert!((max_elmore(&t, &m) - d[2]).abs() < 1e-12);
    }

    #[test]
    fn zero_rc_leaves_only_driver_delay() {
        let n = net(&[(0, 0), (10, 10), (3, 7)]);
        let t = RoutingTree::direct(&n);
        let m = ElmoreModel {
            unit_resistance: 0.0,
            unit_capacitance: 0.0,
            sink_capacitance: 1.0,
            driver_resistance: 2.0,
        };
        let d = elmore_delays(&t, &m);
        // No wire RC: every sink sees exactly R_drv · (2 sinks · 1.0).
        assert!((d[1] - 4.0).abs() < 1e-12);
        assert!((d[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn steiner_nodes_carry_no_sink_load() {
        let n = net(&[(0, 0), (10, 0)]);
        let direct = RoutingTree::direct(&n);
        let via_steiner = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(5, 0)),
                (Point::new(5, 0), Point::new(10, 0)),
            ],
        )
        .unwrap();
        let m = ElmoreModel::default();
        // Splitting an edge at a point on its route must not change the
        // Elmore delay (same R, same C distribution up to the π lumping).
        let a = max_elmore(&direct, &m);
        let b = max_elmore(&via_steiner, &m);
        // π-model lumping differs slightly when an edge is split; the two
        // must agree within the half-capacitance granularity.
        assert!((a - b).abs() <= m.unit_resistance * 10.0 * (10.0 * m.unit_capacitance) / 2.0);
    }
}
