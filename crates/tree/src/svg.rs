//! SVG rendering of routing trees (documentation / debugging aid).
//!
//! Produces self-contained SVG strings: pins as squares (source filled),
//! Steiner points as circles, edges as L-shapes. Several trees can be
//! overlaid in different colors to visualize a Pareto set, Fig. 2 style.

use std::fmt::Write as _;

use patlabor_geom::{Net, Point};

use crate::RoutingTree;

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Margin around the drawing, in pixels.
    pub margin: f64,
    /// Stroke width for tree edges.
    pub stroke_width: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 480,
            height: 480,
            margin: 24.0,
            stroke_width: 2.0,
        }
    }
}

/// Renders one or more trees of the same net, each with a CSS color.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Point};
/// use patlabor_tree::{render_trees_svg, RoutingTree, SvgOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(8, 5)])?;
/// let tree = RoutingTree::direct(&net);
/// let svg = render_trees_svg(&net, &[(&tree, "#d81b60")], &SvgOptions::default());
/// assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
/// # Ok(())
/// # }
/// ```
pub fn render_trees_svg(
    net: &Net,
    trees: &[(&RoutingTree, &str)],
    options: &SvgOptions,
) -> String {
    let mut bb = net.bounding_box();
    for (tree, _) in trees {
        for p in tree.points() {
            bb.expand(*p);
        }
    }
    let span_x = (bb.hi().x - bb.lo().x).max(1) as f64;
    let span_y = (bb.hi().y - bb.lo().y).max(1) as f64;
    let scale_x = (options.width as f64 - 2.0 * options.margin) / span_x;
    let scale_y = (options.height as f64 - 2.0 * options.margin) / span_y;
    let scale = scale_x.min(scale_y);
    let map = |p: Point| -> (f64, f64) {
        (
            options.margin + (p.x - bb.lo().x) as f64 * scale,
            // SVG y grows downward; flip so the plot reads like a plan.
            options.height as f64 - options.margin - (p.y - bb.lo().y) as f64 * scale,
        )
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\">",
        options.width, options.height, options.width, options.height
    );
    let _ = writeln!(svg, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");

    for (tree, color) in trees {
        for (child, parent) in tree.edges() {
            let a = map(tree.point(child));
            let b = map(tree.point(parent));
            // L-shape: horizontal first.
            let _ = writeln!(
                svg,
                "<polyline points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" fill=\"none\" \
                 stroke=\"{color}\" stroke-width=\"{}\" stroke-linecap=\"round\"/>",
                a.0, a.1, b.0, a.1, b.0, b.1, options.stroke_width
            );
        }
        // Steiner points.
        for v in tree.num_pins()..tree.num_nodes() {
            let (x, y) = map(tree.point(v));
            let _ = writeln!(
                svg,
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3\" fill=\"{color}\"/>"
            );
        }
    }

    // Pins on top: source filled black, sinks outlined.
    for (i, &p) in net.pins().iter().enumerate() {
        let (x, y) = map(p);
        let fill = if i == 0 { "black" } else { "white" };
        let _ = writeln!(
            svg,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"9\" height=\"9\" fill=\"{fill}\" \
             stroke=\"black\" stroke-width=\"1.5\"/>",
            x - 4.5,
            y - 4.5
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn svg_structure_is_well_formed() {
        let n = net(&[(0, 0), (10, 5), (3, 8)]);
        let t = RoutingTree::direct(&n);
        let svg = render_trees_svg(&n, &[(&t, "red")], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polyline per edge, one rect per pin (+ background).
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<rect").count(), 3 + 1);
    }

    #[test]
    fn multiple_trees_use_their_colors() {
        let n = net(&[(0, 0), (10, 5)]);
        let a = RoutingTree::direct(&n);
        let b = RoutingTree::direct(&n);
        let svg = render_trees_svg(
            &n,
            &[(&a, "#ff0000"), (&b, "#0000ff")],
            &SvgOptions::default(),
        );
        assert!(svg.contains("#ff0000") && svg.contains("#0000ff"));
    }

    #[test]
    fn steiner_points_are_drawn_as_circles() {
        let n = net(&[(0, 0), (4, 2), (2, 4)]);
        let t = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(2, 2)),
                (Point::new(2, 2), Point::new(4, 2)),
                (Point::new(2, 2), Point::new(2, 4)),
            ],
        )
        .unwrap();
        let svg = render_trees_svg(&n, &[(&t, "green")], &SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn coordinates_stay_inside_the_canvas() {
        let n = net(&[(0, 0), (1000, 1), (1, 1000)]);
        let t = RoutingTree::direct(&n);
        let opts = SvgOptions::default();
        let svg = render_trees_svg(&n, &[(&t, "red")], &opts);
        // Check every polyline vertex stays inside the canvas.
        for line in svg.lines().filter(|l| l.contains("<polyline")) {
            let points = line
                .split("points=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("polyline has points");
            for coord in points.split([' ', ',']) {
                let v: f64 = coord.parse().expect("numeric coordinate");
                assert!(
                    (-10.0..=opts.width.max(opts.height) as f64 + 10.0).contains(&v),
                    "coordinate {v} escaped the canvas"
                );
            }
        }
    }

    #[test]
    fn degenerate_single_point_net_renders() {
        let n = net(&[(5, 5), (5, 5)]);
        let t = RoutingTree::direct(&n);
        let svg = render_trees_svg(&n, &[(&t, "red")], &SvgOptions::default());
        assert!(svg.contains("<rect"));
    }
}
