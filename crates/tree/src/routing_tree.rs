//! The core tree data structure.

use std::collections::HashMap;
use std::fmt;

use patlabor_geom::{Net, Point};

/// A rooted Steiner routing tree for a net.
///
/// Nodes `0 .. num_pins` are the net's pins in net order (node 0 is the
/// source and the root); any further nodes are Steiner points. Every
/// non-root node has exactly one parent; edge lengths are rectilinear.
///
/// The structure is immutable from the outside; algorithms build new trees
/// through [`RoutingTree::from_edges`], [`RoutingTree::from_parents`], or
/// the rewriting passes in [`crate::reconnect_pass_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoutingTree {
    points: Vec<Point>,
    /// `parent[v]` for `v > 0`; `parent[0]` is unused (stored as 0).
    parent: Vec<usize>,
    num_pins: usize,
}

/// Error returned when a proposed tree does not span the net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidTreeError {
    /// A pin is not connected to the source through the edge set.
    DisconnectedPin {
        /// Index of the offending pin in the net's pin list.
        pin: usize,
    },
    /// The edge set contains a cycle reachable from the source.
    CyclicEdges,
    /// A parent index was out of range or self-referential.
    MalformedParent {
        /// The offending node index.
        node: usize,
    },
}

impl fmt::Display for InvalidTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidTreeError::DisconnectedPin { pin } => {
                write!(f, "pin {pin} is not connected to the source")
            }
            InvalidTreeError::CyclicEdges => write!(f, "edge set contains a cycle"),
            InvalidTreeError::MalformedParent { node } => {
                write!(f, "node {node} has a malformed parent index")
            }
        }
    }
}

impl std::error::Error for InvalidTreeError {}

impl RoutingTree {
    /// Builds a tree from an explicit edge list over plane points.
    ///
    /// Edge endpoints that coincide with pin positions are identified with
    /// those pins (first matching pin wins); all other endpoints become
    /// Steiner nodes. The edges must form a tree (connected, acyclic)
    /// spanning every pin.
    ///
    /// # Errors
    ///
    /// [`InvalidTreeError::DisconnectedPin`] if some pin cannot be reached
    /// from the source, [`InvalidTreeError::CyclicEdges`] if the edges
    /// contain a cycle.
    pub fn from_edges(net: &Net, edges: &[(Point, Point)]) -> Result<Self, InvalidTreeError> {
        let num_pins = net.degree();
        let mut points: Vec<Point> = net.pins().to_vec();
        let mut index: HashMap<Point, usize> = HashMap::new();
        // Pins first; coinciding pins map to the first occurrence.
        for (i, &p) in net.pins().iter().enumerate() {
            index.entry(p).or_insert(i);
        }
        let mut id_of = |p: Point, points: &mut Vec<Point>| -> usize {
            *index.entry(p).or_insert_with(|| {
                points.push(p);
                points.len() - 1
            })
        };
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); points.len()];
        for &(a, b) in edges {
            let ia = id_of(a, &mut points);
            let ib = id_of(b, &mut points);
            adj.resize(points.len().max(adj.len()), Vec::new());
            if ia != ib {
                adj[ia].push(ib);
                adj[ib].push(ia);
            }
        }
        adj.resize(points.len(), Vec::new());

        // BFS from the source; detect cycles among visited edges.
        let mut parent = vec![usize::MAX; points.len()];
        parent[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    queue.push_back(v);
                } else if parent[u] != v && parent[v] != u {
                    // A visited neighbor on neither side of our tree edge
                    // closes a cycle. (Each undirected edge is seen from
                    // both endpoints; the parent-side sighting is legal.)
                    return Err(InvalidTreeError::CyclicEdges);
                }
            }
        }
        for (pin, &par) in parent.iter().enumerate().take(num_pins) {
            if par == usize::MAX {
                return Err(InvalidTreeError::DisconnectedPin { pin });
            }
        }
        // Drop unreachable Steiner nodes (legal: they carry no pins).
        let mut keep: Vec<usize> = (0..points.len())
            .filter(|&v| parent[v] != usize::MAX)
            .collect();
        keep.sort_unstable();
        let mut remap = vec![usize::MAX; points.len()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let tree = RoutingTree {
            points: keep.iter().map(|&v| points[v]).collect(),
            parent: keep.iter().map(|&v| remap[parent[v]]).collect(),
            num_pins,
        };
        Ok(tree)
    }

    /// Builds a tree from parent pointers.
    ///
    /// `points[0..num_pins]` must be the net pins in net order; `parent[v]`
    /// gives the parent of node `v > 0` (`parent[0]` is ignored).
    ///
    /// # Errors
    ///
    /// [`InvalidTreeError::MalformedParent`] for out-of-range parents and
    /// [`InvalidTreeError::CyclicEdges`] if the parent pointers do not all
    /// lead back to the root.
    pub fn from_parents(
        points: Vec<Point>,
        parent: Vec<usize>,
        num_pins: usize,
    ) -> Result<Self, InvalidTreeError> {
        assert_eq!(points.len(), parent.len(), "points/parent length mismatch");
        assert!(num_pins >= 2 && num_pins <= points.len());
        let n = points.len();
        for (v, &p) in parent.iter().enumerate().skip(1) {
            if p >= n || p == v {
                return Err(InvalidTreeError::MalformedParent { node: v });
            }
        }
        // Every node must reach the root within n steps.
        for start in 1..n {
            let mut v = start;
            let mut steps = 0;
            while v != 0 {
                v = parent[v];
                steps += 1;
                if steps > n {
                    return Err(InvalidTreeError::CyclicEdges);
                }
            }
        }
        Ok(RoutingTree {
            points,
            parent,
            num_pins,
        })
    }

    /// The trivial two-pin tree: one edge from source to sink.
    pub fn direct(net: &Net) -> Self {
        let points: Vec<Point> = net.pins().to_vec();
        let parent = vec![0; points.len()];
        RoutingTree {
            points,
            parent,
            num_pins: net.degree(),
        }
    }

    /// Number of pin nodes (the degree of the net).
    pub fn num_pins(&self) -> usize {
        self.num_pins
    }

    /// Total number of nodes (pins + Steiner points).
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// The position of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn point(&self, v: usize) -> Point {
        self.points[v]
    }

    /// All node positions (pins first, in net order).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Parent of node `v` (`v = 0` returns 0: the root is its own parent).
    pub fn parent(&self, v: usize) -> usize {
        if v == 0 {
            0
        } else {
            self.parent[v]
        }
    }

    /// Iterator over the tree's edges as `(child, parent)` node indices.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (1..self.points.len()).map(|v| (v, self.parent[v]))
    }

    /// Iterator over the tree's edges as point pairs.
    pub fn edge_points(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.edges()
            .map(|(v, p)| (self.points[v], self.points[p]))
    }

    /// Total wirelength `w(T)`: the sum of rectilinear edge lengths.
    pub fn wirelength(&self) -> i64 {
        self.edges()
            .map(|(v, p)| self.points[v].l1(self.points[p]))
            .sum()
    }

    /// Distance from the root to every node along tree edges.
    pub fn root_distances(&self) -> Vec<i64> {
        let n = self.points.len();
        let mut dist = vec![-1i64; n];
        dist[0] = 0;
        // Nodes may appear in any order; resolve by chasing parents.
        for v in 1..n {
            self.resolve_dist(v, &mut dist);
        }
        dist
    }

    fn resolve_dist(&self, v: usize, dist: &mut [i64]) -> i64 {
        if dist[v] >= 0 {
            return dist[v];
        }
        let p = self.parent[v];
        let d = self.resolve_dist(p, dist) + self.points[v].l1(self.points[p]);
        dist[v] = d;
        d
    }

    /// Delay `d(T)`: the maximum root→sink path length.
    pub fn delay(&self) -> i64 {
        let dist = self.root_distances();
        (1..self.num_pins).map(|v| dist[v]).max().unwrap_or(0)
    }

    /// Both objectives as a `(wirelength, delay)` pair.
    pub fn objectives(&self) -> (i64, i64) {
        (self.wirelength(), self.delay())
    }

    /// Path length from the root to pin `pin` (net pin index).
    ///
    /// # Panics
    ///
    /// Panics if `pin >= num_pins`.
    pub fn pin_path_length(&self, pin: usize) -> i64 {
        assert!(pin < self.num_pins, "pin index out of range");
        self.root_distances()[pin]
    }

    /// Node degrees (number of incident tree edges).
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.points.len()];
        for (v, p) in self.edges() {
            deg[v] += 1;
            deg[p] += 1;
        }
        deg
    }

    /// Children lists (inverse of the parent map).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.points.len()];
        for (v, p) in self.edges() {
            ch[p].push(v);
        }
        ch
    }

    /// The set of nodes in the subtree rooted at `v` (including `v`).
    pub fn subtree(&self, v: usize) -> Vec<usize> {
        let children = self.children();
        let mut out = vec![v];
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            for &c in &children[u] {
                out.push(c);
                stack.push(c);
            }
        }
        out
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, net: &Net) -> Result<(), InvalidTreeError> {
        if self.num_pins != net.degree() || self.points[..self.num_pins] != *net.pins() {
            return Err(InvalidTreeError::DisconnectedPin { pin: 0 });
        }
        for mut v in 1..self.points.len() {
            let mut steps = 0;
            while v != 0 {
                v = self.parent[v];
                steps += 1;
                if steps > self.points.len() {
                    return Err(InvalidTreeError::CyclicEdges);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Net;
    use proptest::prelude::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn direct_tree_objectives() {
        let n = net(&[(0, 0), (3, 4), (1, 1)]);
        let t = RoutingTree::direct(&n);
        assert_eq!(t.wirelength(), 7 + 2);
        assert_eq!(t.delay(), 7);
        t.validate(&n).unwrap();
    }

    #[test]
    fn from_edges_with_steiner_point() {
        let n = net(&[(0, 0), (4, 0), (4, 3)]);
        // Steiner point at (2, 0) splitting the horizontal run.
        let t = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(2, 0)),
                (Point::new(2, 0), Point::new(4, 0)),
                (Point::new(4, 0), Point::new(4, 3)),
            ],
        )
        .unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.wirelength(), 7);
        assert_eq!(t.delay(), 7);
        assert_eq!(t.pin_path_length(1), 4);
    }

    #[test]
    fn from_edges_detects_disconnection() {
        let n = net(&[(0, 0), (4, 0), (9, 9)]);
        let err = RoutingTree::from_edges(&n, &[(Point::new(0, 0), Point::new(4, 0))])
            .unwrap_err();
        assert_eq!(err, InvalidTreeError::DisconnectedPin { pin: 2 });
    }

    #[test]
    fn from_edges_detects_cycle() {
        let n = net(&[(0, 0), (4, 0)]);
        let err = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(4, 0)),
                (Point::new(4, 0), Point::new(4, 4)),
                (Point::new(4, 4), Point::new(0, 4)),
                (Point::new(0, 4), Point::new(0, 0)),
            ],
        )
        .unwrap_err();
        assert_eq!(err, InvalidTreeError::CyclicEdges);
    }

    #[test]
    fn from_parents_detects_malformed() {
        let pts = vec![Point::new(0, 0), Point::new(1, 0)];
        let err = RoutingTree::from_parents(pts, vec![0, 1], 2).unwrap_err();
        assert_eq!(err, InvalidTreeError::MalformedParent { node: 1 });
    }

    #[test]
    fn from_parents_detects_cycle() {
        let pts = vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(3, 0),
        ];
        let err = RoutingTree::from_parents(pts, vec![0, 2, 3, 2], 2).unwrap_err();
        assert_eq!(err, InvalidTreeError::CyclicEdges);
    }

    #[test]
    fn duplicate_pin_positions_are_identified() {
        let n = net(&[(0, 0), (4, 0), (4, 0)]);
        let t = RoutingTree::from_edges(&n, &[(Point::new(0, 0), Point::new(4, 0))]);
        // Pin 2 shares pin 1's position; from_edges identifies the position
        // with pin 1 only, so pin 2 stays disconnected — callers dedup
        // first. This documents the behavior.
        assert!(t.is_err());
    }

    #[test]
    fn subtree_and_children() {
        let n = net(&[(0, 0), (2, 0), (2, 2), (0, 2)]);
        // 0 → 1 → 2 → 3 chain
        let t = RoutingTree::from_parents(
            n.pins().to_vec(),
            vec![0, 0, 1, 2],
            4,
        )
        .unwrap();
        let mut sub = t.subtree(1);
        sub.sort_unstable();
        assert_eq!(sub, vec![1, 2, 3]);
        assert_eq!(t.children()[0], vec![1]);
        assert_eq!(t.delay(), 2 + 2 + 2);
    }

    fn arb_points(n: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::hash_set((0i64..50, 0i64..50), n..n + 1).prop_map(|s| {
            s.into_iter().map(Point::from).collect()
        })
    }

    proptest! {
        /// Random chains: wirelength is the chain length, delay the max
        /// prefix, and both are at least their trivial lower bounds.
        #[test]
        fn prop_chain_tree_objectives(pts in arb_points(5)) {
            let n = Net::new(pts).unwrap();
            let parent: Vec<usize> = (0..5usize).map(|v| v.saturating_sub(1)).collect();
            let t = RoutingTree::from_parents(n.pins().to_vec(), parent, 5).unwrap();
            t.validate(&n).unwrap();
            let w: i64 = (1..5).map(|v| n.pins()[v].l1(n.pins()[v - 1])).sum();
            prop_assert_eq!(t.wirelength(), w);
            prop_assert!(t.delay() >= n.delay_lower_bound());
            prop_assert!(t.delay() <= w);
        }

        /// Star trees: delay equals the delay lower bound exactly.
        #[test]
        fn prop_star_tree_is_delay_optimal(pts in arb_points(6)) {
            let n = Net::new(pts).unwrap();
            let t = RoutingTree::direct(&n);
            prop_assert_eq!(t.delay(), n.delay_lower_bound());
            let w: i64 = n.sinks().map(|s| n.source().l1(s)).sum();
            prop_assert_eq!(t.wirelength(), w);
        }
    }
}
