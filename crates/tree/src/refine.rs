//! SALT-style post-processing passes (paper §V-B).
//!
//! After a local-search step rewires a subset of pins, the resulting
//! topology may be locally sub-optimal: Steiner nodes of degree ≤ 2 are
//! useless, and a node may have a much closer attachment point elsewhere in
//! the tree. The two passes here are *safe* rewrites — each accepted change
//! weakly improves the selected objective without worsening the other — so
//! they can be applied to every member of a Pareto set without knocking it
//! off the frontier.
//!
//! Candidate rewrites are scored analytically (O(1) per candidate after an
//! O(n) precomputation per accepted change), so a full pass over a
//! degree-100 net costs a few hundred thousand integer operations rather
//! than rebuilding trees.

use patlabor_geom::{BoundingBox, Point};

use crate::RoutingTree;

/// Which objective a [`reconnect_pass`] tries to improve. The other
/// objective is never allowed to get worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefineObjective {
    /// Reduce total wirelength, keeping delay no worse.
    Wirelength,
    /// Reduce delay, keeping wirelength no worse.
    Delay,
}

/// Which rewrites a reconnection pass may use.
///
/// Node-only moves model PD-II's detour-aware edge swaps; Steiner splits
/// are the stronger SALT-style move set used by PatLabor's
/// post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconnectMoves {
    /// Only reattach a node to another existing node.
    NodesOnly,
    /// Also allow splitting a tree edge with a new Steiner point.
    WithSteinerSplits,
}

/// Removes useless Steiner nodes: degree-1 Steiner leaves are dropped and
/// degree-2 Steiner nodes are spliced out (their child reattached to their
/// parent). By the triangle inequality neither rewrite can increase either
/// objective. Runs to fixpoint.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Point};
/// use patlabor_tree::{remove_redundant_steiner, RoutingTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(4, 0)])?;
/// // A detour through an off-path Steiner point.
/// let tree = RoutingTree::from_edges(&net, &[
///     (Point::new(0, 0), Point::new(2, 3)),
///     (Point::new(2, 3), Point::new(4, 0)),
/// ])?;
/// assert_eq!(tree.wirelength(), 5 + 5);
/// let slim = remove_redundant_steiner(&tree);
/// assert_eq!(slim.wirelength(), 4);
/// # Ok(())
/// # }
/// ```
pub fn remove_redundant_steiner(tree: &RoutingTree) -> RoutingTree {
    let mut points = tree.points().to_vec();
    let mut parent: Vec<usize> = (0..tree.num_nodes()).map(|v| tree.parent(v)).collect();
    let num_pins = tree.num_pins();
    let mut alive = vec![true; points.len()];

    loop {
        let mut degree = vec![0usize; points.len()];
        for v in 1..points.len() {
            if alive[v] {
                degree[v] += 1;
                degree[parent[v]] += 1;
            }
        }
        let mut changed = false;
        for v in num_pins..points.len() {
            if !alive[v] {
                continue;
            }
            match degree[v] {
                0 | 1 => {
                    // Isolated or leaf Steiner node: drop it.
                    alive[v] = false;
                    changed = true;
                }
                2 => {
                    // Splice: exactly one child c; reattach c to parent[v].
                    if let Some(c) = (1..points.len())
                        .find(|&c| alive[c] && c != v && parent[c] == v)
                    {
                        parent[c] = parent[v];
                        alive[v] = false;
                        changed = true;
                    }
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Compact.
    let keep: Vec<usize> = (0..points.len()).filter(|&v| alive[v]).collect();
    let mut remap = vec![usize::MAX; points.len()];
    for (new, &old) in keep.iter().enumerate() {
        remap[old] = new;
    }
    points = keep.iter().map(|&v| points[v]).collect();
    let parent = keep.iter().map(|&v| remap[parent[v]]).collect();
    RoutingTree::from_parents(points, parent, num_pins)
        .expect("splicing preserves tree structure")
}

/// One greedy reconnection sweep (SALT's "edge substitution") with the
/// full move set.
///
/// For every non-root node `v` (deepest first) the pass considers
/// reattaching `v` to any other tree node or to a Steiner point on any tree
/// edge (the `l₁` projection of `v` onto the edge's bounding box — splitting
/// an edge there never changes its length). The best strictly-improving,
/// non-worsening rewrite per node is applied immediately.
///
/// Returns the refined tree; compare objectives with the input to detect
/// convergence.
pub fn reconnect_pass(tree: &RoutingTree, objective: RefineObjective) -> RoutingTree {
    reconnect_pass_with(tree, objective, ReconnectMoves::WithSteinerSplits)
}

/// Mutable pass state: parents/points plus the derived arrays needed for
/// O(1) candidate scoring.
struct PassState {
    points: Vec<Point>,
    parent: Vec<usize>,
    num_pins: usize,
    wirelength: i64,
    /// Root distance per node.
    dist: Vec<i64>,
    /// Euler-tour interval per node (`tin`, `tout`), for subtree tests.
    tin: Vec<usize>,
    tout: Vec<usize>,
    /// Max root distance over *sink pins* inside each node's subtree
    /// (`i64::MIN` when none).
    sub_pin_max: Vec<i64>,
    /// Prefix/suffix maxima of sink-pin distances in Euler order, for
    /// complement queries.
    prefix: Vec<i64>,
    suffix: Vec<i64>,
    /// Euler order of nodes.
    order: Vec<usize>,
}

impl PassState {
    fn new(points: Vec<Point>, parent: Vec<usize>, num_pins: usize) -> PassState {
        let n = points.len();
        let mut state = PassState {
            points,
            parent,
            num_pins,
            wirelength: 0,
            dist: Vec::new(),
            tin: vec![0; n],
            tout: vec![0; n],
            sub_pin_max: Vec::new(),
            prefix: Vec::new(),
            suffix: Vec::new(),
            order: Vec::new(),
        };
        state.recompute();
        state
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn edge_len(&self, v: usize) -> i64 {
        self.points[v].l1(self.points[self.parent[v]])
    }

    fn is_sink(&self, v: usize) -> bool {
        v >= 1 && v < self.num_pins
    }

    /// Rebuilds every derived array in O(n).
    fn recompute(&mut self) {
        let n = self.len();
        self.tin.resize(n, 0);
        self.tout.resize(n, 0);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        self.wirelength = 0;
        for v in 1..n {
            children[self.parent[v]].push(v);
            self.wirelength += self.edge_len(v);
        }
        // Iterative DFS for dist + Euler intervals + subtree pin maxima.
        self.dist = vec![0; n];
        self.sub_pin_max = vec![i64::MIN; n];
        self.order = Vec::with_capacity(n);
        let mut stack: Vec<(usize, bool)> = vec![(0, false)];
        while let Some((v, exiting)) = stack.pop() {
            if exiting {
                self.tout[v] = self.order.len() - 1;
                if self.is_sink(v) {
                    self.sub_pin_max[v] = self.sub_pin_max[v].max(self.dist[v]);
                }
                let p = self.parent[v];
                if v != 0 {
                    let up = self.sub_pin_max[v];
                    if up > self.sub_pin_max[p] {
                        self.sub_pin_max[p] = up;
                    }
                }
                continue;
            }
            if v != 0 {
                self.dist[v] = self.dist[self.parent[v]] + self.edge_len(v);
            }
            self.tin[v] = self.order.len();
            self.order.push(v);
            stack.push((v, true));
            for &c in &children[v] {
                stack.push((c, false));
            }
        }
        // Prefix/suffix maxima of sink distances in Euler order.
        let pin_dist: Vec<i64> = self
            .order
            .iter()
            .map(|&v| if self.is_sink(v) { self.dist[v] } else { i64::MIN })
            .collect();
        self.prefix = vec![i64::MIN; n + 1];
        for (i, &d) in pin_dist.iter().enumerate() {
            self.prefix[i + 1] = self.prefix[i].max(d);
        }
        self.suffix = vec![i64::MIN; n + 1];
        for i in (0..n).rev() {
            self.suffix[i] = self.suffix[i + 1].max(pin_dist[i]);
        }
    }

    fn in_subtree(&self, node: usize, root: usize) -> bool {
        self.tin[root] <= self.tin[node] && self.tin[node] <= self.tout[root]
    }

    /// Max sink distance outside `v`'s subtree (`i64::MIN` when none).
    fn complement_pin_max(&self, v: usize) -> i64 {
        self.prefix[self.tin[v]].max(self.suffix[self.tout[v] + 1])
    }

    /// Current delay.
    fn delay(&self) -> i64 {
        self.sub_pin_max[0].max(0)
    }

    /// Objectives after reattaching `v` so that its subtree's root path
    /// starts at `new_base` (the root distance of the attachment point)
    /// with a connecting edge of length `link`.
    fn rewired_objectives(&self, v: usize, link: i64, new_base: i64) -> (i64, i64) {
        let w = self.wirelength - self.edge_len(v) + link;
        let shift = new_base + link - self.dist[v];
        let inside = self.sub_pin_max[v];
        let inside_shifted = if inside == i64::MIN { i64::MIN } else { inside + shift };
        let d = self.complement_pin_max(v).max(inside_shifted).max(0);
        (w, d)
    }
}

/// [`reconnect_pass`] with an explicit move set.
pub fn reconnect_pass_with(
    tree: &RoutingTree,
    objective: RefineObjective,
    moves: ReconnectMoves,
) -> RoutingTree {
    let slim = remove_redundant_steiner(tree);
    let mut state = PassState::new(
        slim.points().to_vec(),
        (0..slim.num_nodes()).map(|v| slim.parent(v)).collect(),
        slim.num_pins(),
    );

    // Deepest-first order mirrors SALT's DFS refinement (computed once).
    let mut order: Vec<usize> = (1..state.len()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(state.dist[v]));

    for &v in &order {
        let (w0, d0) = (state.wirelength, state.delay());
        let vp = state.points[v];

        /// A candidate rewrite: reattach `v` to `parent`, optionally
        /// through a fresh Steiner point splitting edge `(child, parent)`.
        enum Action {
            Node(usize),
            Split { child: usize, at: Point },
        }
        let mut best: Option<(i64, i64, Action)> = None;
        let consider = |w: i64, d: i64, action: Action, best: &mut Option<(i64, i64, Action)>| {
            let improves = match objective {
                RefineObjective::Wirelength => w < w0 && d <= d0,
                RefineObjective::Delay => d < d0 && w <= w0,
            };
            if !improves {
                return;
            }
            let better = match best {
                None => true,
                Some((bw, bd, _)) => match objective {
                    RefineObjective::Wirelength => (w, d) < (*bw, *bd),
                    RefineObjective::Delay => (d, w) < (*bd, *bw),
                },
            };
            if better {
                *best = Some((w, d, action));
            }
        };

        // Candidate 1: reattach to an existing node.
        for u in 0..state.len() {
            if u == state.parent[v] || state.in_subtree(u, v) {
                continue;
            }
            let link = vp.l1(state.points[u]);
            let (w, d) = state.rewired_objectives(v, link, state.dist[u]);
            consider(w, d, Action::Node(u), &mut best);
        }

        // Candidate 2: split an edge (c, p) at the projection of v.
        if moves == ReconnectMoves::WithSteinerSplits {
            for c in 1..state.len() {
                if c == v {
                    continue;
                }
                let p = state.parent[c];
                if state.in_subtree(c, v) || state.in_subtree(p, v) {
                    continue;
                }
                let bb = BoundingBox::of_points([state.points[c], state.points[p]])
                    .expect("two points");
                let q = bb.project(vp);
                if q == state.points[c] || q == state.points[p] {
                    continue; // covered by node candidates
                }
                let link = vp.l1(q);
                // q lies on a monotone c–p route: dist(q) = dist(p) + |p−q|
                // and the split leaves every other path length unchanged.
                let base = state.dist[p] + state.points[p].l1(q);
                let (w, d) = state.rewired_objectives(v, link, base);
                consider(w, d, Action::Split { child: c, at: q }, &mut best);
            }
        }

        if let Some((_, _, action)) = best {
            match action {
                Action::Node(u) => {
                    state.parent[v] = u;
                }
                Action::Split { child, at } => {
                    let p = state.parent[child];
                    state.points.push(at);
                    let q = state.points.len() - 1;
                    state.parent.push(p);
                    state.parent[child] = q;
                    state.parent[v] = q;
                }
            }
            state.recompute();
        }
    }

    let tree = RoutingTree::from_parents(state.points, state.parent, state.num_pins)
        .expect("reconnection preserves acyclicity by subtree checks");
    remove_redundant_steiner(&tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::{Net, Point};

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn removes_leaf_and_chain_steiner_nodes() {
        let n = net(&[(0, 0), (8, 0)]);
        let t = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(4, 0)),
                (Point::new(4, 0), Point::new(8, 0)),
                (Point::new(4, 0), Point::new(4, 5)), // dangling stub
            ],
        )
        .unwrap();
        let slim = remove_redundant_steiner(&t);
        assert_eq!(slim.num_nodes(), 2);
        assert_eq!(slim.wirelength(), 8);
        assert_eq!(slim.delay(), 8);
    }

    #[test]
    fn keeps_branching_steiner_nodes() {
        let n = net(&[(0, 0), (4, 2), (4, -2)]);
        let t = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(4, 0)),
                (Point::new(4, 0), Point::new(4, 2)),
                (Point::new(4, 0), Point::new(4, -2)),
            ],
        )
        .unwrap();
        let slim = remove_redundant_steiner(&t);
        assert_eq!(slim.num_nodes(), 4); // branching Steiner survives
        assert_eq!(slim.wirelength(), 8);
    }

    #[test]
    fn reconnect_shortens_a_detour() {
        // Sink 2 hangs off sink 1 although it is right next to the source.
        let n = net(&[(0, 0), (10, 0), (1, 1)]);
        let t = RoutingTree::from_parents(
            n.pins().to_vec(),
            vec![0, 0, 1],
            3,
        )
        .unwrap();
        assert_eq!(t.wirelength(), 10 + 10);
        let r = reconnect_pass(&t, RefineObjective::Wirelength);
        // Best rewrite splits the horizontal edge at (1, 0) and hangs the
        // sink there: 10 for the trunk plus a unit stub.
        assert_eq!(r.wirelength(), 10 + 1);
        assert!(r.delay() <= t.delay());
    }

    #[test]
    fn reconnect_can_split_an_edge() {
        // Sink 2 lies under the long horizontal edge; optimal attachment is
        // a Steiner split at (5, 0).
        let n = net(&[(0, 0), (10, 0), (5, -3)]);
        let t = RoutingTree::from_parents(n.pins().to_vec(), vec![0, 0, 0], 3).unwrap();
        assert_eq!(t.wirelength(), 10 + 8);
        let r = reconnect_pass(&t, RefineObjective::Wirelength);
        assert_eq!(r.wirelength(), 10 + 3);
        assert!(r.delay() <= t.delay());
        r.validate(&n).unwrap();
    }

    #[test]
    fn nodes_only_moves_never_add_steiner_points() {
        let n = net(&[(0, 0), (10, 0), (5, -3)]);
        let t = RoutingTree::from_parents(n.pins().to_vec(), vec![0, 0, 0], 3).unwrap();
        let r = reconnect_pass_with(&t, RefineObjective::Wirelength, ReconnectMoves::NodesOnly);
        assert!(r.num_nodes() <= t.num_nodes());
        // The split-based w=13 rewrite is out of reach for node-only moves.
        assert!(r.wirelength() >= 13);
    }

    #[test]
    fn delay_mode_never_hurts_wirelength() {
        let n = net(&[(0, 0), (5, 5), (6, 6)]);
        // Chain 0→1→2.
        let t = RoutingTree::from_parents(n.pins().to_vec(), vec![0, 0, 1], 3).unwrap();
        let r = reconnect_pass(&t, RefineObjective::Delay);
        assert!(r.wirelength() <= t.wirelength());
        assert!(r.delay() <= t.delay());
    }

    #[test]
    fn refinement_is_idempotent_on_optimal_trees() {
        let n = net(&[(0, 0), (4, 0), (4, 3)]);
        let t = RoutingTree::from_edges(
            &n,
            &[
                (Point::new(0, 0), Point::new(4, 0)),
                (Point::new(4, 0), Point::new(4, 3)),
            ],
        )
        .unwrap();
        let r = reconnect_pass(&t, RefineObjective::Wirelength);
        assert_eq!(r.objectives(), t.objectives());
    }

    /// The analytic candidate scoring must agree with ground-truth
    /// re-evaluation: after a pass, objectives must never have worsened,
    /// across many random trees.
    #[test]
    fn analytic_scoring_is_safe_on_random_trees() {
        let mut seed = 0x5eedu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for degree in [5usize, 9, 14] {
            for _ in 0..12 {
                let pins: Vec<Point> = (0..degree)
                    .map(|_| Point::new((rng() % 80) as i64, (rng() % 80) as i64))
                    .collect();
                let n = Net::new(pins).unwrap();
                // Random (valid) parent vector: parent[v] < v.
                let parent: Vec<usize> = (0..degree)
                    .map(|v| if v == 0 { 0 } else { (rng() as usize) % v })
                    .collect();
                let t = RoutingTree::from_parents(n.pins().to_vec(), parent, degree).unwrap();
                let (w0, d0) = t.objectives();
                for obj in [RefineObjective::Wirelength, RefineObjective::Delay] {
                    for moves in [ReconnectMoves::NodesOnly, ReconnectMoves::WithSteinerSplits] {
                        let r = reconnect_pass_with(&t, obj, moves);
                        r.validate(&n).unwrap();
                        let (w, d) = r.objectives();
                        assert!(
                            w <= w0 && d <= d0,
                            "pass worsened ({w0},{d0})→({w},{d}) on {:?}",
                            n.pins()
                        );
                    }
                }
            }
        }
    }
}
