//! Rooted rectilinear Steiner routing trees.
//!
//! Every routing algorithm in the workspace ultimately produces a
//! [`RoutingTree`]: a tree over plane points rooted at the net's source,
//! whose pins appear in net order (`node 0` = source) and whose remaining
//! nodes are Steiner points. Edges are abstract rectilinear connections of
//! length `‖a − b‖₁`; both paper objectives — wirelength `w(T)` and delay
//! `d(T)` — are path-length functionals, so no concrete L-shape embedding
//! is needed to evaluate them.
//!
//! The crate also provides:
//!
//! * [`extract_from_union`] — turning a (possibly overlapping, cyclic)
//!   union of edge sets, as produced by the Pareto-DW merge step, into a
//!   valid tree that is no worse in either objective;
//! * [`reconnect_pass`] / [`remove_redundant_steiner`] — the SALT-style
//!   post-processing passes (redundant-Steiner
//!   removal and greedy reconnection) used by both the SALT baseline and
//!   PatLabor's local search.
//!
//! # Example
//!
//! ```
//! use patlabor_geom::{Net, Point};
//! use patlabor_tree::RoutingTree;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Net::new(vec![Point::new(0, 0), Point::new(4, 0), Point::new(4, 3)])?;
//! // Chain source → sink1 → sink2.
//! let tree = RoutingTree::from_edges(
//!     &net,
//!     &[(Point::new(0, 0), Point::new(4, 0)), (Point::new(4, 0), Point::new(4, 3))],
//! )?;
//! assert_eq!(tree.wirelength(), 7);
//! assert_eq!(tree.delay(), 7);
//! # Ok(())
//! # }
//! ```

mod elmore;
mod extract;
mod refine;
mod routing_tree;
mod svg;

pub use elmore::{elmore_delays, max_elmore, ElmoreModel};
pub use svg::{render_trees_svg, SvgOptions};

pub use extract::{extract_from_union, extract_from_union_with, ExtractScratch, ExtractTreeError};
pub use refine::{
    reconnect_pass, reconnect_pass_with, remove_redundant_steiner, ReconnectMoves,
    RefineObjective,
};
pub use routing_tree::{InvalidTreeError, RoutingTree};
