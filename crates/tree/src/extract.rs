//! Extraction of a valid routing tree from a union of edge sets.
//!
//! The Pareto-DW merge step `S ⊕ S'` unions the edge sets of two subtree
//! solutions. The union may reuse an edge (its length would be counted
//! twice) or even close a cycle; its bookkept objectives `(w₁+w₂,
//! max(d₁,d₂))` are then only an *upper bound* on what a real tree
//! achieves. This module turns such a union into a genuine tree that is no
//! worse in either objective:
//!
//! 1. deduplicate the edge multiset into a graph `G`;
//! 2. take the shortest-path tree of `G` from the source (delays can only
//!    shrink: every source→sink path of the union is still a path of `G`);
//! 3. prune Steiner leaves iteratively (wirelength can only shrink).
//!
//! Union graphs are tiny — a handful of pins plus at most a few dozen
//! Steiner points — so the implementation is sized for that regime: a
//! linear-scan point index instead of a hash map, a settled-scan Dijkstra
//! instead of a binary heap, and an [`ExtractScratch`] of reusable buffers
//! so a hot caller (the lookup table's materialize stage) allocates
//! nothing per extraction beyond the returned tree.

use std::fmt;

use patlabor_geom::{Net, Point};

use crate::RoutingTree;

/// Error returned by [`extract_from_union`] when the union graph does not
/// connect every pin to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractTreeError {
    /// Index of the first pin that is unreachable from the source.
    pub pin: usize,
}

impl fmt::Display for ExtractTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pin {} is unreachable in the union graph", self.pin)
    }
}

impl std::error::Error for ExtractTreeError {}

/// Reusable buffers for [`extract_from_union_with`].
///
/// Holding one of these per thread and passing it to every extraction
/// keeps the graph bookkeeping allocation-free in the steady state; the
/// buffers grow to the high-water mark of the unions seen and stay there.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    points: Vec<Point>,
    /// Deduplicated edges as point indices (kept in input order).
    edge_ids: Vec<(usize, usize, i64)>,
    adj: Vec<Vec<(usize, i64)>>,
    dist: Vec<i64>,
    parent: Vec<usize>,
    done: Vec<bool>,
    needed: Vec<bool>,
    keep: Vec<usize>,
    remap: Vec<usize>,
}

impl ExtractScratch {
    /// An empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> ExtractScratch {
        ExtractScratch::default()
    }
}

/// Extracts a routing tree from an arbitrary union of edges.
///
/// The result is a valid tree spanning the net whose wirelength is at most
/// the total (deduplicated) union length and whose delay is at most the
/// longest source→sink path of any tree whose edges are contained in the
/// union.
///
/// # Errors
///
/// Returns [`ExtractTreeError`] when some pin is not connected to the
/// source by the union edges.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Point};
/// use patlabor_tree::extract_from_union;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(2, 0), Point::new(2, 2)])?;
/// // A union with a duplicated edge and a detour.
/// let tree = extract_from_union(&net, &[
///     (Point::new(0, 0), Point::new(2, 0)),
///     (Point::new(0, 0), Point::new(2, 0)), // duplicate
///     (Point::new(2, 0), Point::new(2, 2)),
///     (Point::new(0, 0), Point::new(2, 2)), // closes a cycle
/// ])?;
/// assert_eq!(tree.wirelength(), 2 + 2 + 4 - 2 /* pruned back to a tree */);
/// # Ok(())
/// # }
/// ```
pub fn extract_from_union(
    net: &Net,
    edges: &[(Point, Point)],
) -> Result<RoutingTree, ExtractTreeError> {
    extract_from_union_with(net, edges, &mut ExtractScratch::new())
}

/// [`extract_from_union`] with caller-provided scratch buffers — the
/// allocation-lean form for hot loops. Results are identical.
pub fn extract_from_union_with(
    net: &Net,
    edges: &[(Point, Point)],
    s: &mut ExtractScratch,
) -> Result<RoutingTree, ExtractTreeError> {
    // Index points: pins first (dedup by position → first occurrence
    // wins, matching the first-pin rule).
    s.points.clear();
    s.points.extend_from_slice(net.pins());
    s.edge_ids.clear();
    let id_of = |p: Point, points: &mut Vec<Point>| -> usize {
        match points.iter().position(|&q| q == p) {
            Some(i) => i,
            None => {
                points.push(p);
                points.len() - 1
            }
        }
    };
    for &(a, b) in edges {
        let ia = id_of(a, &mut s.points);
        let ib = id_of(b, &mut s.points);
        if ia != ib {
            s.edge_ids.push((ia, ib, a.l1(b)));
        }
    }
    let n = s.points.len();
    for v in s.adj.iter_mut() {
        v.clear();
    }
    if s.adj.len() < n {
        s.adj.resize_with(n, Vec::new);
    }
    for &(ia, ib, len) in &s.edge_ids {
        s.adj[ia].push((ib, len));
        s.adj[ib].push((ia, len));
    }

    // Dijkstra from the source over the union graph. The graph is tiny,
    // so a settled scan beats a heap; nodes settle in ascending
    // (dist, index) order — the same order a lexicographic min-heap pops
    // them — and relaxation improves strictly, so the parents are
    // identical to the heap formulation's.
    s.dist.clear();
    s.dist.resize(n, i64::MAX);
    s.parent.clear();
    s.parent.resize(n, usize::MAX);
    s.done.clear();
    s.done.resize(n, false);
    s.dist[0] = 0;
    s.parent[0] = 0;
    loop {
        let mut u = usize::MAX;
        let mut best = i64::MAX;
        for v in 0..n {
            if !s.done[v] && s.dist[v] < best {
                best = s.dist[v];
                u = v;
            }
        }
        if u == usize::MAX {
            break;
        }
        s.done[u] = true;
        for &(v, len) in &s.adj[u] {
            let nd = best + len;
            if nd < s.dist[v] {
                s.dist[v] = nd;
                s.parent[v] = u;
            }
        }
    }
    // Map duplicated pin positions onto their representative's path.
    for pin in 0..net.degree() {
        let rep = s
            .points
            .iter()
            .position(|&q| q == s.points[pin])
            .expect("a pin always finds itself");
        if s.dist[rep] == i64::MAX {
            return Err(ExtractTreeError { pin });
        }
        if rep != pin {
            // Duplicate pin: hang it on its representative with a
            // zero-length edge.
            s.dist[pin] = s.dist[rep];
            s.parent[pin] = rep;
        }
    }

    // Keep only nodes on some root→pin path: prune Steiner branches.
    s.needed.clear();
    s.needed.resize(n, false);
    for pin in 0..net.degree() {
        let mut v = pin;
        while !s.needed[v] {
            s.needed[v] = true;
            v = s.parent[v];
        }
    }
    s.keep.clear();
    s.keep.extend((0..n).filter(|&v| s.needed[v]));
    s.remap.clear();
    s.remap.resize(n, usize::MAX);
    for (new, &old) in s.keep.iter().enumerate() {
        s.remap[old] = new;
    }
    let tree_points: Vec<Point> = s.keep.iter().map(|&v| s.points[v]).collect();
    let tree_parent: Vec<usize> = s.keep.iter().map(|&v| s.remap[s.parent[v]]).collect();
    let tree = RoutingTree::from_parents(tree_points, tree_parent, net.degree())
        .expect("shortest-path tree construction cannot produce cycles");
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn e(a: (i64, i64), b: (i64, i64)) -> (Point, Point) {
        (Point::from(a), Point::from(b))
    }

    #[test]
    fn extraction_from_a_plain_tree_is_lossless() {
        let n = net(&[(0, 0), (4, 0), (4, 3)]);
        let edges = [e((0, 0), (4, 0)), e((4, 0), (4, 3))];
        let t = extract_from_union(&n, &edges).unwrap();
        assert_eq!(t.wirelength(), 7);
        assert_eq!(t.delay(), 7);
    }

    #[test]
    fn duplicate_edges_are_not_double_counted() {
        let n = net(&[(0, 0), (4, 0)]);
        let edges = [e((0, 0), (4, 0)), e((0, 0), (4, 0))];
        let t = extract_from_union(&n, &edges).unwrap();
        assert_eq!(t.wirelength(), 4);
    }

    #[test]
    fn cycles_are_broken_by_shortest_paths() {
        let n = net(&[(0, 0), (2, 0), (2, 2)]);
        let edges = [
            e((0, 0), (2, 0)),
            e((2, 0), (2, 2)),
            e((0, 0), (2, 2)), // shortcut to the far sink
        ];
        let t = extract_from_union(&n, &edges).unwrap();
        t.validate(&n).unwrap();
        // Shortest paths: sink (2,0) via direct (2), sink (2,2) via direct (4).
        assert_eq!(t.delay(), 4);
        assert_eq!(t.wirelength(), 2 + 4);
    }

    #[test]
    fn unused_branches_are_pruned() {
        let n = net(&[(0, 0), (4, 0)]);
        let edges = [
            e((0, 0), (4, 0)),
            e((4, 0), (4, 9)), // dangling Steiner stub
            e((4, 9), (9, 9)),
        ];
        let t = extract_from_union(&n, &edges).unwrap();
        assert_eq!(t.wirelength(), 4);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn disconnected_pin_is_reported() {
        let n = net(&[(0, 0), (4, 0), (9, 9)]);
        let err = extract_from_union(&n, &[e((0, 0), (4, 0))]).unwrap_err();
        assert_eq!(err.pin, 2);
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn duplicate_pin_positions_share_a_path() {
        let n = net(&[(0, 0), (4, 0), (4, 0)]);
        let t = extract_from_union(&n, &[e((0, 0), (4, 0))]).unwrap();
        t.validate(&n).unwrap();
        assert_eq!(t.wirelength(), 4); // zero-length edge for the twin pin
        assert_eq!(t.delay(), 4);
        assert_eq!(t.pin_path_length(2), 4);
    }

    #[test]
    fn extraction_never_worsens_objectives_vs_bookkeeping() {
        // Union of two subtrees sharing an edge: bookkeeping would count
        // the shared edge twice; extraction must beat that bound.
        let n = net(&[(0, 0), (6, 0), (6, 4)]);
        let sub1 = [e((0, 0), (6, 0))];
        let sub2 = [e((0, 0), (6, 0)), e((6, 0), (6, 4))];
        let union: Vec<_> = sub1.iter().chain(sub2.iter()).copied().collect();
        let bookkept_w: i64 = 6 + (6 + 4);
        let t = extract_from_union(&n, &union).unwrap();
        assert!(t.wirelength() <= bookkept_w);
        assert_eq!(t.wirelength(), 10);
        assert_eq!(t.delay(), 10);
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // The same scratch across dissimilar unions (growing and
        // shrinking) must reproduce the fresh-scratch result each time.
        let mut scratch = ExtractScratch::new();
        let cases: Vec<(Net, Vec<(Point, Point)>)> = vec![
            (
                net(&[(0, 0), (4, 0), (4, 3)]),
                vec![e((0, 0), (4, 0)), e((4, 0), (4, 3))],
            ),
            (
                net(&[(0, 0), (2, 0), (2, 2)]),
                vec![
                    e((0, 0), (2, 0)),
                    e((2, 0), (2, 2)),
                    e((0, 0), (2, 2)),
                    e((2, 2), (5, 2)),
                    e((5, 2), (5, 5)),
                ],
            ),
            (net(&[(0, 0), (4, 0)]), vec![e((0, 0), (4, 0))]),
            (
                net(&[(0, 0), (4, 0), (4, 0)]),
                vec![e((0, 0), (4, 0))],
            ),
        ];
        for _round in 0..3 {
            for (n, edges) in &cases {
                let fresh = extract_from_union(n, edges).unwrap();
                let reused = extract_from_union_with(n, edges, &mut scratch).unwrap();
                assert_eq!(fresh, reused);
            }
        }
    }
}
