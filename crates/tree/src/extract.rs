//! Extraction of a valid routing tree from a union of edge sets.
//!
//! The Pareto-DW merge step `S ⊕ S'` unions the edge sets of two subtree
//! solutions. The union may reuse an edge (its length would be counted
//! twice) or even close a cycle; its bookkept objectives `(w₁+w₂,
//! max(d₁,d₂))` are then only an *upper bound* on what a real tree
//! achieves. This module turns such a union into a genuine tree that is no
//! worse in either objective:
//!
//! 1. deduplicate the edge multiset into a graph `G`;
//! 2. take the shortest-path tree of `G` from the source (delays can only
//!    shrink: every source→sink path of the union is still a path of `G`);
//! 3. prune Steiner leaves iteratively (wirelength can only shrink).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use patlabor_geom::{Net, Point};

use crate::RoutingTree;

/// Error returned by [`extract_from_union`] when the union graph does not
/// connect every pin to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractTreeError {
    /// Index of the first pin that is unreachable from the source.
    pub pin: usize,
}

impl fmt::Display for ExtractTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pin {} is unreachable in the union graph", self.pin)
    }
}

impl std::error::Error for ExtractTreeError {}

/// Extracts a routing tree from an arbitrary union of edges.
///
/// The result is a valid tree spanning the net whose wirelength is at most
/// the total (deduplicated) union length and whose delay is at most the
/// longest source→sink path of any tree whose edges are contained in the
/// union.
///
/// # Errors
///
/// Returns [`ExtractTreeError`] when some pin is not connected to the
/// source by the union edges.
///
/// # Example
///
/// ```
/// use patlabor_geom::{Net, Point};
/// use patlabor_tree::extract_from_union;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Net::new(vec![Point::new(0, 0), Point::new(2, 0), Point::new(2, 2)])?;
/// // A union with a duplicated edge and a detour.
/// let tree = extract_from_union(&net, &[
///     (Point::new(0, 0), Point::new(2, 0)),
///     (Point::new(0, 0), Point::new(2, 0)), // duplicate
///     (Point::new(2, 0), Point::new(2, 2)),
///     (Point::new(0, 0), Point::new(2, 2)), // closes a cycle
/// ])?;
/// assert_eq!(tree.wirelength(), 2 + 2 + 4 - 2 /* pruned back to a tree */);
/// # Ok(())
/// # }
/// ```
pub fn extract_from_union(
    net: &Net,
    edges: &[(Point, Point)],
) -> Result<RoutingTree, ExtractTreeError> {
    // Index points: pins first (dedup by position → first pin wins).
    let mut points: Vec<Point> = net.pins().to_vec();
    let mut index: HashMap<Point, usize> = HashMap::new();
    for (i, &p) in net.pins().iter().enumerate() {
        index.entry(p).or_insert(i);
    }
    let mut id_of = |p: Point, points: &mut Vec<Point>| -> usize {
        *index.entry(p).or_insert_with(|| {
            points.push(p);
            points.len() - 1
        })
    };
    let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); points.len()];
    for &(a, b) in edges {
        let ia = id_of(a, &mut points);
        let ib = id_of(b, &mut points);
        if adj.len() < points.len() {
            adj.resize(points.len(), Vec::new());
        }
        if ia != ib {
            let len = a.l1(b);
            adj[ia].push((ib, len));
            adj[ib].push((ia, len));
        }
    }
    adj.resize(points.len(), Vec::new());

    // Dijkstra from the source over the union graph.
    let n = points.len();
    let mut dist = vec![i64::MAX; n];
    let mut parent = vec![usize::MAX; n];
    dist[0] = 0;
    parent[0] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, 0usize)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, len) in &adj[u] {
            let nd = d + len;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    // Map duplicated pin positions onto their representative's path.
    for pin in 0..net.degree() {
        let rep = index[&points[pin]];
        if dist[rep] == i64::MAX {
            return Err(ExtractTreeError { pin });
        }
        if rep != pin {
            // Duplicate pin: hang it on its representative with a
            // zero-length edge.
            dist[pin] = dist[rep];
            parent[pin] = rep;
        }
    }

    // Keep only nodes on some root→pin path: prune Steiner branches.
    let mut needed = vec![false; n];
    for pin in 0..net.degree() {
        let mut v = pin;
        while !needed[v] {
            needed[v] = true;
            v = parent[v];
        }
    }
    let keep: Vec<usize> = (0..n).filter(|&v| needed[v]).collect();
    let mut remap = vec![usize::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        remap[old] = new;
    }
    let tree_points: Vec<Point> = keep.iter().map(|&v| points[v]).collect();
    let tree_parent: Vec<usize> = keep.iter().map(|&v| remap[parent[v]]).collect();
    let tree = RoutingTree::from_parents(tree_points, tree_parent, net.degree())
        .expect("shortest-path tree construction cannot produce cycles");
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn e(a: (i64, i64), b: (i64, i64)) -> (Point, Point) {
        (Point::from(a), Point::from(b))
    }

    #[test]
    fn extraction_from_a_plain_tree_is_lossless() {
        let n = net(&[(0, 0), (4, 0), (4, 3)]);
        let edges = [e((0, 0), (4, 0)), e((4, 0), (4, 3))];
        let t = extract_from_union(&n, &edges).unwrap();
        assert_eq!(t.wirelength(), 7);
        assert_eq!(t.delay(), 7);
    }

    #[test]
    fn duplicate_edges_are_not_double_counted() {
        let n = net(&[(0, 0), (4, 0)]);
        let edges = [e((0, 0), (4, 0)), e((0, 0), (4, 0))];
        let t = extract_from_union(&n, &edges).unwrap();
        assert_eq!(t.wirelength(), 4);
    }

    #[test]
    fn cycles_are_broken_by_shortest_paths() {
        let n = net(&[(0, 0), (2, 0), (2, 2)]);
        let edges = [
            e((0, 0), (2, 0)),
            e((2, 0), (2, 2)),
            e((0, 0), (2, 2)), // shortcut to the far sink
        ];
        let t = extract_from_union(&n, &edges).unwrap();
        t.validate(&n).unwrap();
        // Shortest paths: sink (2,0) via direct (2), sink (2,2) via direct (4).
        assert_eq!(t.delay(), 4);
        assert_eq!(t.wirelength(), 2 + 4);
    }

    #[test]
    fn unused_branches_are_pruned() {
        let n = net(&[(0, 0), (4, 0)]);
        let edges = [
            e((0, 0), (4, 0)),
            e((4, 0), (4, 9)), // dangling Steiner stub
            e((4, 9), (9, 9)),
        ];
        let t = extract_from_union(&n, &edges).unwrap();
        assert_eq!(t.wirelength(), 4);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn disconnected_pin_is_reported() {
        let n = net(&[(0, 0), (4, 0), (9, 9)]);
        let err = extract_from_union(&n, &[e((0, 0), (4, 0))]).unwrap_err();
        assert_eq!(err.pin, 2);
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn duplicate_pin_positions_share_a_path() {
        let n = net(&[(0, 0), (4, 0), (4, 0)]);
        let t = extract_from_union(&n, &[e((0, 0), (4, 0))]).unwrap();
        t.validate(&n).unwrap();
        assert_eq!(t.wirelength(), 4); // zero-length edge for the twin pin
        assert_eq!(t.delay(), 4);
        assert_eq!(t.pin_path_length(2), 4);
    }

    #[test]
    fn extraction_never_worsens_objectives_vs_bookkeeping() {
        // Union of two subtrees sharing an edge: bookkeeping would count
        // the shared edge twice; extraction must beat that bound.
        let n = net(&[(0, 0), (6, 0), (6, 4)]);
        let sub1 = [e((0, 0), (6, 0))];
        let sub2 = [e((0, 0), (6, 0)), e((6, 0), (6, 4))];
        let union: Vec<_> = sub1.iter().chain(sub2.iter()).copied().collect();
        let bookkept_w: i64 = 6 + (6 + 4);
        let t = extract_from_union(&n, &union).unwrap();
        assert!(t.wirelength() <= bookkept_w);
        assert_eq!(t.wirelength(), 10);
        assert_eq!(t.delay(), 10);
    }
}
