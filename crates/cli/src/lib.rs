//! Library backing the `patlabor` command-line tool.
//!
//! Kept separate from `main.rs` so the net-list parser and the command
//! implementations are unit-testable. The CLI covers the three workflows
//! a user needs:
//!
//! * `patlabor route <nets.txt>` — route a net list, print each net's
//!   Pareto frontier (optionally picking one tree per delay budget);
//! * `patlabor lut build --lambda L -o tables.plut` — generate v3 lookup
//!   tables offline (also the migration path for pre-v3 table files);
//! * `patlabor lut info <tables.plut>` — format version, per-degree
//!   Table II statistics and arena sizes of a table file.
//!
//! `gen-tables` and `stats` remain as aliases of the two `lut`
//! subcommands.
//!
//! # Net-list format
//!
//! One net per line: whitespace-separated `x,y` pins, source first.
//! `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! # three nets
//! 0,0 40,15 12,33
//! 5,5 25,5
//! 0,0 9,1 8,8 1,9
//! ```

use std::fmt;

use patlabor::{LutBuilder, Net, PatLabor, Point};
use patlabor_lut::LookupTable;

/// Error from parsing a net list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetsError {}

/// Parses the net-list format described in the crate docs.
///
/// # Errors
///
/// Returns the first offending line with a description.
pub fn parse_nets(text: &str) -> Result<Vec<Net>, ParseNetsError> {
    let mut nets = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut pins = Vec::new();
        for token in content.split_whitespace() {
            let (x, y) = token.split_once(',').ok_or_else(|| ParseNetsError {
                line,
                message: format!("expected `x,y`, got `{token}`"),
            })?;
            let parse = |s: &str| -> Result<i64, ParseNetsError> {
                s.trim().parse().map_err(|_| ParseNetsError {
                    line,
                    message: format!("`{s}` is not an integer coordinate"),
                })
            };
            pins.push(Point::new(parse(x)?, parse(y)?));
        }
        let net = Net::new(pins).map_err(|e| ParseNetsError {
            line,
            message: e.to_string(),
        })?;
        nets.push(net);
    }
    Ok(nets)
}

/// Options of the `route` command.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// λ of the freshly built tables (ignored when `tables` is given).
    pub lambda: u8,
    /// Pre-generated table file to load instead of building.
    pub tables: Option<String>,
    /// When set, also print the single tree picked per net: the lightest
    /// frontier member within `slack ×` the net's delay lower bound.
    pub pick_slack: Option<f64>,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            lambda: 5,
            tables: None,
            pick_slack: None,
        }
    }
}

/// Runs the `route` command; returns the rendered output.
///
/// # Errors
///
/// Propagates table-loading problems as strings (the CLI prints them).
pub fn route_command(nets: &[Net], options: &RouteOptions) -> Result<String, String> {
    let router = match &options.tables {
        Some(path) => {
            let table = LookupTable::load(path).map_err(|e| e.to_string())?;
            PatLabor::with_table(table)
        }
        None => PatLabor::with_config(patlabor::RouterConfig {
            lambda: options.lambda,
            ..patlabor::RouterConfig::default()
        }),
    };
    let mut out = String::new();
    for (i, net) in nets.iter().enumerate() {
        let frontier = router.route(net);
        out.push_str(&format!(
            "net {i} (degree {}): {} Pareto solutions\n",
            net.degree(),
            frontier.len()
        ));
        for (cost, _) in frontier.iter() {
            out.push_str(&format!("  w={} d={}\n", cost.wirelength, cost.delay));
        }
        if let Some(slack) = options.pick_slack {
            let budget = (net.delay_lower_bound() as f64 * slack).floor() as i64;
            let pick = frontier
                .iter()
                .find(|(c, _)| c.delay <= budget)
                .or_else(|| frontier.min_delay());
            if let Some((cost, tree)) = pick {
                out.push_str(&format!("  pick (budget {budget}): w={} d={}\n", cost.wirelength, cost.delay));
                for (a, b) in tree.edge_points() {
                    out.push_str(&format!("    {},{} -- {},{}\n", a.x, a.y, b.x, b.y));
                }
            }
        }
    }
    Ok(out)
}

/// Runs `lut build` (alias: `gen-tables`).
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn gen_tables_command(lambda: u8, output: &str) -> Result<String, String> {
    if !(3..=9).contains(&lambda) {
        return Err(format!("--lambda must be 3..=9, got {lambda}"));
    }
    let start = std::time::Instant::now();
    let table = LutBuilder::new(lambda).build();
    table.save(output).map_err(|e| e.to_string())?;
    Ok(format!(
        "generated lambda={lambda} tables in {:?} → {output}\n",
        start.elapsed()
    ))
}

/// Runs `lut info` (alias: `stats`) on a table file.
///
/// # Errors
///
/// Propagates loading problems as strings.
pub fn stats_command(path: &str) -> Result<String, String> {
    let table = LookupTable::load(path).map_err(|e| e.to_string())?;
    let mut out = format!("lambda = {}\n", table.lambda());
    out.push_str("degree  #Index  avg #Topo  total topologies  unique (pool)  arena bytes\n");
    let mut total_bytes = 0usize;
    for s in table.stats() {
        total_bytes += s.bytes;
        out.push_str(&format!(
            "{:>6}  {:>6}  {:>9.2}  {:>16}  {:>13}  {:>11}\n",
            s.degree,
            s.num_patterns,
            s.avg_topologies,
            s.total_topologies,
            s.unique_topologies,
            s.bytes
        ));
    }
    out.push_str(&format!("total arena bytes: {total_bytes}\n"));
    Ok(out)
}

/// Dispatches the `lut` subcommands (`build`, `info`).
///
/// # Errors
///
/// Returns a user-facing message for unknown subcommands or flag
/// problems, and propagates build/load errors.
pub fn lut_command(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("build") => {
            let mut lambda = None;
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        lambda = Some(
                            next_value(&mut it, "--lambda")?
                                .parse::<u8>()
                                .map_err(|_| "--lambda expects an integer".to_string())?,
                        );
                    }
                    "-o" | "--output" => output = Some(next_value(&mut it, "-o")?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            let lambda = lambda.ok_or_else(|| "lut build needs --lambda".to_string())?;
            let output = output.ok_or_else(|| "lut build needs -o FILE".to_string())?;
            gen_tables_command(lambda, &output)
        }
        Some("info") => {
            let path = args
                .get(1)
                .ok_or_else(|| "lut info needs a file".to_string())?;
            stats_command(path)
        }
        Some(other) => Err(format!("unknown lut subcommand `{other}`\n\n{USAGE}")),
        None => Err(format!("lut needs a subcommand (build | info)\n\n{USAGE}")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
patlabor — Pareto optimization of timing-driven routing trees

USAGE:
  patlabor route [--lambda L] [--tables FILE] [--pick SLACK] <nets.txt>
  patlabor route [...] --bookshelf DESIGN.aux
  patlabor lut build --lambda L -o FILE
  patlabor lut info FILE
  patlabor gen-tables --lambda L -o FILE   (alias of `lut build`)
  patlabor stats FILE                      (alias of `lut info`)

Net list: one net per line, `x,y` pins separated by spaces, source first;
`#` comments.
";

/// Parses CLI arguments and dispatches; returns the output to print or an
/// error message (exit code 2 territory).
///
/// # Errors
///
/// Returns a user-facing message for unknown commands, malformed flags,
/// unreadable files and malformed net lists.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("route") => {
            let mut options = RouteOptions::default();
            let mut file = None;
            let mut bookshelf = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        options.lambda = next_value(&mut it, "--lambda")?
                            .parse()
                            .map_err(|_| "--lambda expects an integer".to_string())?;
                    }
                    "--tables" => options.tables = Some(next_value(&mut it, "--tables")?),
                    "--pick" => {
                        options.pick_slack = Some(
                            next_value(&mut it, "--pick")?
                                .parse()
                                .map_err(|_| "--pick expects a number".to_string())?,
                        );
                    }
                    "--bookshelf" => bookshelf = Some(next_value(&mut it, "--bookshelf")?),
                    other if !other.starts_with('-') => file = Some(other.to_string()),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            let nets = match (bookshelf, file) {
                (Some(aux), _) => {
                    let design =
                        patlabor_bookshelf::load_design(&aux).map_err(|e| e.to_string())?;
                    design.nets
                }
                (None, Some(file)) => {
                    let text =
                        std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
                    parse_nets(&text).map_err(|e| e.to_string())?
                }
                (None, None) => {
                    return Err("route needs a net-list file or --bookshelf AUX".to_string())
                }
            };
            route_command(&nets, &options)
        }
        Some("lut") => lut_command(&args[1..]),
        Some("gen-tables") => {
            let mut lambda = None;
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        lambda = Some(
                            next_value(&mut it, "--lambda")?
                                .parse::<u8>()
                                .map_err(|_| "--lambda expects an integer".to_string())?,
                        );
                    }
                    "-o" | "--output" => output = Some(next_value(&mut it, "-o")?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            let lambda = lambda.ok_or_else(|| "gen-tables needs --lambda".to_string())?;
            let output = output.ok_or_else(|| "gen-tables needs -o FILE".to_string())?;
            gen_tables_command(lambda, &output)
        }
        Some("stats") => {
            let path = args.get(1).ok_or_else(|| "stats needs a file".to_string())?;
            stats_command(path)
        }
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} expects a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nets_happy_path() {
        let nets = parse_nets("# demo\n0,0 40,15 12,33\n\n5,5 25,5 # trailing\n").unwrap();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[0].degree(), 3);
        assert_eq!(nets[1].pins()[1], Point::new(25, 5));
    }

    #[test]
    fn parse_nets_reports_line_numbers() {
        let err = parse_nets("0,0 1,1\nbroken\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("x,y"));
        let err = parse_nets("0,0 1,x\n").unwrap_err();
        assert!(err.message.contains("not an integer"));
        let err = parse_nets("0,0\n").unwrap_err();
        assert!(err.message.contains("at least two pins"));
    }

    #[test]
    fn route_command_prints_frontiers_and_picks() {
        let nets = parse_nets("19,2 8,4 4,3 5,4 13,12\n").unwrap();
        let options = RouteOptions {
            lambda: 5,
            pick_slack: Some(1.2),
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        assert!(out.contains("2 Pareto solutions"));
        assert!(out.contains("w=26 d=18"));
        assert!(out.contains("pick (budget 19): w=26 d=18"));
        assert!(out.contains(" -- "));
    }

    #[test]
    fn gen_and_stats_roundtrip() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.plut").to_string_lossy().into_owned();
        let msg = gen_tables_command(4, &path).unwrap();
        assert!(msg.contains("lambda=4"));
        let stats = stats_command(&path).unwrap();
        assert!(stats.contains("lambda = 4"));
        assert!(stats.contains("16")); // degree-4 #Index
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_tables_rejects_bad_lambda() {
        assert!(gen_tables_command(2, "/tmp/x").is_err());
        assert!(gen_tables_command(10, "/tmp/x").is_err());
    }

    #[test]
    fn lut_build_and_info_end_to_end() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lut3.plut").to_string_lossy().into_owned();
        let msg = run(&[
            "lut".into(),
            "build".into(),
            "--lambda".into(),
            "3".into(),
            "-o".into(),
            path.clone(),
        ])
        .unwrap();
        assert!(msg.contains("lambda=3"));
        let info = run(&["lut".into(), "info".into(), path.clone()]).unwrap();
        assert!(info.contains("lambda = 3"));
        assert!(info.contains("arena bytes"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lut_subcommand_errors_are_actionable() {
        assert!(run(&["lut".into()]).unwrap_err().contains("build | info"));
        assert!(run(&["lut".into(), "bogus".into()])
            .unwrap_err()
            .contains("unknown lut subcommand"));
        assert!(run(&["lut".into(), "build".into()])
            .unwrap_err()
            .contains("--lambda"));
        assert!(run(&["lut".into(), "info".into()])
            .unwrap_err()
            .contains("needs a file"));
    }

    #[test]
    fn run_dispatch_and_usage() {
        let help = run(&[]).unwrap();
        assert!(help.contains("USAGE"));
        let err = run(&["bogus".into()]).unwrap_err();
        assert!(err.contains("unknown command"));
        let err = run(&["route".into()]).unwrap_err();
        assert!(err.contains("net-list file"));
        let err = run(&["route".into(), "--bookshelf".into(), "/nonexistent.aux".into()])
            .unwrap_err();
        assert!(err.contains("nonexistent"));
        let err = run(&["route".into(), "--lambda".into()]).unwrap_err();
        assert!(err.contains("expects a value"));
    }

    #[test]
    fn run_route_end_to_end_via_tempfile() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("nets.txt");
        std::fs::write(&file, "0,0 9,1 8,8 1,9\n").unwrap();
        let out = run(&[
            "route".into(),
            "--lambda".into(),
            "4".into(),
            file.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("net 0 (degree 4)"));
        std::fs::remove_file(&file).ok();
    }
}
