//! Library backing the `patlabor` command-line tool.
//!
//! Kept separate from `main.rs` so the net-list parser and the command
//! implementations are unit-testable. The CLI covers the three workflows
//! a user needs:
//!
//! * `patlabor route <nets.txt>` — route a net list, print each net's
//!   Pareto frontier (optionally picking one tree per delay budget);
//! * `patlabor lut build --lambda L [--format v4] -o tables.plut` —
//!   generate mmap-serveable v4 lookup tables offline (also the migration
//!   path for pre-v4 table files);
//! * `patlabor lut info <tables.plut>` — format version, section layout
//!   and checksum status, per-degree Table II statistics and arena sizes.
//!
//! `route` and `verify` open `--tables` files **zero-copy** via
//! [`LookupTable::open_mmap`]: the arenas are served straight from the
//! page cache after a one-pass checksum/structure validation, so startup
//! does not re-parse the table and concurrent processes share one copy.
//!
//! `gen-tables` and `stats` remain as aliases of the two `lut`
//! subcommands.
//!
//! # Net-list format
//!
//! One net per line: whitespace-separated `x,y` pins, source first.
//! `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! # three nets
//! 0,0 40,15 12,33
//! 5,5 25,5
//! 0,0 9,1 8,8 1,9
//! ```

// The CLI is the user-facing serving surface: every failure must print a
// diagnostic, never an `unwrap` panic; test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use patlabor::pipeline::RouteOutcome;
use patlabor::{
    DeltaKind, Engine, Fault, FaultPlane, LutBuilder, Net, NetDelta, Point, ProvenanceSummary,
    ResilienceConfig, RouteError, Session,
};
use patlabor_lut::{LookupTable, TableInfo};
use patlabor_serve::{serve, ServeConfig};
use patlabor_verify::{chaos_soak, mutation_smoke_with_table, verify_with_table, ChaosSoakConfig, VerifyConfig};

/// Error from parsing a net list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetsError {}

/// Any failure the CLI can hit, as one structured type.
///
/// Every variant prints a one-line diagnostic naming what failed and
/// where (the file, the net-list line, or the net index); `main` renders
/// it with `error: {e}` and exits non-zero. Nothing on the serving path
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Argument-level problems: unknown command/flag, missing value.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying OS error.
        message: String,
    },
    /// A net-list line failed to parse.
    Parse(ParseNetsError),
    /// A lookup-table file failed to load or save.
    Table {
        /// The offending path.
        path: String,
        /// The underlying format/OS error.
        message: String,
    },
    /// The router failed on one net (truncated or corrupt tables).
    Route {
        /// 0-based index of the net in the input.
        net: usize,
        /// The pipeline's structured error.
        source: RouteError,
    },
    /// The differential harness found a fast path diverging from its
    /// oracle (or, in `--smoke` mode, failed to catch a planted
    /// corruption). The message carries the full report, counterexample
    /// included.
    Verify(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => f.write_str(message),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Parse(e) => e.fmt(f),
            CliError::Table { path, message } => write!(f, "{path}: {message}"),
            CliError::Route { net, source } => write!(f, "net {net}: {source}"),
            CliError::Verify(report) => f.write_str(report),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Parse(e) => Some(e),
            CliError::Route { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ParseNetsError> for CliError {
    fn from(e: ParseNetsError) -> Self {
        CliError::Parse(e)
    }
}

fn usage_error(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

/// Parses the net-list format described in the crate docs.
///
/// # Errors
///
/// Returns the first offending line with a description.
pub fn parse_nets(text: &str) -> Result<Vec<Net>, ParseNetsError> {
    let mut nets = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut pins = Vec::new();
        for token in content.split_whitespace() {
            let (x, y) = token.split_once(',').ok_or_else(|| ParseNetsError {
                line,
                message: format!("expected `x,y`, got `{token}`"),
            })?;
            let parse = |s: &str| -> Result<i64, ParseNetsError> {
                s.trim().parse().map_err(|_| ParseNetsError {
                    line,
                    message: format!("`{s}` is not an integer coordinate"),
                })
            };
            pins.push(Point::new(parse(x)?, parse(y)?));
        }
        let net = Net::new(pins).map_err(|e| ParseNetsError {
            line,
            message: e.to_string(),
        })?;
        nets.push(net);
    }
    Ok(nets)
}

/// Options of the `route` command.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// λ of the freshly built tables (ignored when `tables` is given).
    pub lambda: u8,
    /// Pre-generated table file to load instead of building.
    pub tables: Option<String>,
    /// When set, also print the single tree picked per net: the lightest
    /// frontier member within `slack ×` the net's delay lower bound.
    pub pick_slack: Option<f64>,
    /// Fault drills (parsed from `--faults`), armed on the router's
    /// [`FaultPlane`] together with `fault_seed`. A non-empty list (or a
    /// deadline) switches the command to drill mode: per-net failures
    /// print inline and the run ends with a resilience report instead of
    /// aborting on the first error.
    pub faults: Vec<Fault>,
    /// Seed of the fault plane's deterministic per-net hash.
    pub fault_seed: u64,
    /// Per-net routing deadline in milliseconds (wall clock).
    pub deadline_ms: Option<u64>,
    /// Worker threads for the batch driver. With more than one, routing
    /// goes through the work-stealing batch path (results identical to
    /// serial) and the output ends with the per-worker scaling report:
    /// utilization, steals and cache lock contention.
    pub threads: usize,
    /// Emit NDJSON instead of the human rendering: one wire-protocol
    /// reply object per net, serialized by [`patlabor_serve::wire`] —
    /// byte-compatible with what `patlabor serve` answers.
    pub json: bool,
    /// ECO edits (parsed from `--eco <edits file>`), replayed after the
    /// initial routing pass through [`Engine::reroute`]. Edits chain:
    /// each applies to the net as left by the previous edit, and
    /// class-preserving edits answer from replay (`via reused`).
    pub eco: Vec<EcoEdit>,
}

/// One line of an `--eco` edits file: which net to mutate and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcoEdit {
    /// 0-based index into the routed net list.
    pub net: usize,
    /// The geometric edit to apply.
    pub kind: DeltaKind,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            lambda: 5,
            tables: None,
            pick_slack: None,
            faults: Vec::new(),
            fault_seed: 0x5eed,
            deadline_ms: None,
            threads: 1,
            json: false,
            eco: Vec::new(),
        }
    }
}

/// Parses the `--eco` edits format: one edit per line,
/// `<net-index> <kind> <args>`, `#` comments and blank lines ignored.
///
/// ```text
/// # chained edits; staleness grows per net
/// 0 translate 5,-2
/// 1 move-pin 2 7,7
/// 2 add-sink 3,4
/// 0 remove-sink 1
/// 3 blockage 2,2 8,8
/// ```
///
/// # Errors
///
/// Returns the first offending line with a description.
pub fn parse_edits(text: &str) -> Result<Vec<EcoEdit>, ParseNetsError> {
    let mut edits = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let err = |message: String| ParseNetsError { line, message };
        let tokens: Vec<&str> = content.split_whitespace().collect();
        let net: usize = tokens
            .first()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("expected a 0-based net index".to_string()))?;
        let kind_token = *tokens
            .get(1)
            .ok_or_else(|| err("expected an edit kind after the net index".to_string()))?;
        let point = |slot: usize, what: &str| -> Result<Point, ParseNetsError> {
            let token = tokens
                .get(slot)
                .ok_or_else(|| err(format!("{kind_token} expects {what} as `x,y`")))?;
            let (x, y) = token
                .split_once(',')
                .ok_or_else(|| err(format!("expected `x,y`, got `{token}`")))?;
            let parse = |s: &str| {
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| err(format!("`{s}` is not an integer coordinate")))
            };
            Ok(Point::new(parse(x)?, parse(y)?))
        };
        let index = || -> Result<usize, ParseNetsError> {
            tokens
                .get(2)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(format!("{kind_token} expects a pin index")))
        };
        let (kind, args) = match kind_token {
            "translate" => {
                let d = point(2, "an offset")?;
                (DeltaKind::Translate { dx: d.x, dy: d.y }, 1)
            }
            "add-sink" => (DeltaKind::AddSink { at: point(2, "a pin")? }, 1),
            "move-pin" => (
                DeltaKind::MovePin { index: index()?, to: point(3, "a destination")? },
                2,
            ),
            "remove-sink" => (DeltaKind::RemoveSink { index: index()? }, 1),
            "blockage" => (
                DeltaKind::BlockageMask {
                    min: point(2, "a corner")?,
                    max: point(3, "a corner")?,
                },
                2,
            ),
            other => {
                return Err(err(format!(
                    "unknown edit kind `{other}` (translate | move-pin | add-sink | \
                     remove-sink | blockage)"
                )))
            }
        };
        if tokens.len() > 2 + args {
            return Err(err(format!("trailing tokens after {kind_token} edit")));
        }
        edits.push(EcoEdit { net, kind });
    }
    Ok(edits)
}

/// Builds the long-lived [`Engine`]: mmap'd tables when `--tables` is
/// given, freshly built λ tables otherwise. Both `route` and `serve`
/// go through here — the serving daemon and the one-shot command share
/// one construction path.
fn build_engine(tables: Option<&str>, lambda: u8) -> Result<Engine, CliError> {
    match tables {
        Some(path) => {
            // Zero-copy open: checksum + structure validated once, then
            // the arenas are borrowed from the page-cache mapping.
            let table = LookupTable::open_mmap(path).map_err(|e| CliError::Table {
                path: path.to_string(),
                message: e.to_string(),
            })?;
            Ok(Engine::with_table(table))
        }
        None => Ok(Engine::with_config(patlabor::RouterConfig {
            lambda,
            ..patlabor::RouterConfig::default()
        })),
    }
}

/// Renders the `--threads` scaling report: one line of batch-level
/// telemetry plus one line per worker.
fn render_batch_stats(out: &mut String, stats: &patlabor::BatchStats) {
    out.push_str(&format!(
        "batch: {} workers, chunk {}, {:.1} ms, utilization {:.2} (min {:.2}), \
         {} steals ({} failed)\n",
        stats.workers,
        stats.chunk_size,
        stats.elapsed().as_secs_f64() * 1e3,
        stats.utilization(),
        stats.min_worker_utilization(),
        stats.total_steals(),
        stats.total_failed_steals(),
    ));
    for (i, w) in stats.per_worker.iter().enumerate() {
        out.push_str(&format!(
            "  worker {i}: {} nets in {} chunks, busy {:.1} ms, \
             {} steals ({} failed)\n",
            w.nets,
            w.chunks,
            w.busy_ns as f64 / 1e6,
            w.steals,
            w.failed_steals,
        ));
    }
}

/// Runs the `route` command; returns the rendered output.
///
/// Each net's header names the pipeline stage that answered it (`via
/// exact-lut`, `via cache-hit`, …) and the output ends with an aggregate
/// provenance line over all routed nets. Nets served by a fallback rung
/// additionally print their degradation trace.
///
/// With `--faults` or `--deadline-ms` the command runs in drill mode:
/// per-net failures (injected panics included) print inline instead of
/// aborting the run, and the output ends with the aggregated
/// [`patlabor::ResilienceReport`].
///
/// # Errors
///
/// Propagates table-loading problems and (outside drill mode) per-net
/// [`RouteError`]s as [`CliError`] (the CLI prints them as diagnostics).
pub fn route_command(nets: &[Net], options: &RouteOptions) -> Result<String, CliError> {
    let mut engine = build_engine(options.tables.as_deref(), options.lambda)?;
    let drills = !options.faults.is_empty() || options.deadline_ms.is_some();
    if !options.eco.is_empty() && (options.json || drills || options.threads > 1) {
        return Err(usage_error(
            "--eco replays edits on the serial human-readable path; it cannot \
             combine with --json, --threads, --faults or --deadline-ms",
        ));
    }
    if drills {
        let plane = options
            .faults
            .iter()
            .fold(FaultPlane::seeded(options.fault_seed), |plane, &fault| {
                plane.with_fault(fault)
            });
        engine = engine.with_faults(plane).with_resilience(ResilienceConfig {
            deadline: options.deadline_ms.map(Duration::from_millis),
            ..ResilienceConfig::default()
        });
    }
    if options.json {
        // NDJSON: one wire-protocol reply object per net, serialized by
        // the same module the serve daemon uses — the two outputs can
        // never drift. Per-net failures become `"error": "route"` lines
        // instead of aborting the run, exactly like the daemon.
        let (results, _report) = engine.route_batch_with_report(nets, options.threads.max(1));
        let mut out = String::new();
        for (i, result) in results.iter().enumerate() {
            out.push_str(&patlabor_serve::result_to_json(i as u64, result).render());
            out.push('\n');
        }
        return Ok(out);
    }
    let mut out = String::new();
    let mut summary = ProvenanceSummary::default();
    if drills {
        // Drills route through the batch driver so an injected panic
        // downgrades to a per-net diagnostic instead of killing the
        // process, and the run ends with the aggregated report.
        let (results, report) = engine.route_batch_with_report(nets, options.threads.max(1));
        for (i, (net, result)) in nets.iter().zip(&results).enumerate() {
            match result {
                Ok(outcome) => {
                    summary.record(&outcome.provenance);
                    render_outcome(&mut out, i, net, outcome, options);
                }
                Err(e) => {
                    out.push_str(&format!("net {i} (degree {}): FAILED: {e}\n", net.degree()));
                }
            }
        }
        out.push_str(&format!("provenance: {summary} ({} nets)\n", summary.total()));
        out.push_str(&format!("resilience: {report}\n"));
        return Ok(out);
    }
    if options.threads > 1 {
        // The parallel path: same results as the serial loop below (the
        // batch driver publishes in order, bit-identical), plus the
        // per-worker scaling report.
        let (results, stats) = engine.route_batch_with_stats(nets, options.threads);
        for (i, (net, result)) in nets.iter().zip(results).enumerate() {
            let outcome = result.map_err(|source| CliError::Route { net: i, source })?;
            summary.record(&outcome.provenance);
            render_outcome(&mut out, i, net, &outcome, options);
        }
        out.push_str(&format!(
            "provenance: {summary} ({} nets)\n",
            summary.total()
        ));
        render_batch_stats(&mut out, &stats);
        if let Some(cache) = engine.cache_stats() {
            out.push_str(&format!(
                "cache: {} shards, hit rate {:.3}, contention {}r/{}w{}\n",
                cache.shards,
                cache.hit_rate(),
                cache.contended_reads,
                cache.contended_writes,
                if cache.bypassed { ", bypassed" } else { "" },
            ));
        }
        return Ok(out);
    }
    let mut outcomes = Vec::with_capacity(nets.len());
    for (i, net) in nets.iter().enumerate() {
        let outcome = engine
            .route(net)
            .map_err(|source| CliError::Route { net: i, source })?;
        summary.record(&outcome.provenance);
        render_outcome(&mut out, i, net, &outcome, options);
        outcomes.push(outcome);
    }
    out.push_str(&format!(
        "provenance: {summary} ({} nets)\n",
        summary.total()
    ));
    if !options.eco.is_empty() {
        render_eco(&mut out, nets, &outcomes, &engine, options)?;
    }
    Ok(out)
}

/// The `--eco` replay pass: applies the edits in file order against the
/// outcomes of the initial routing pass, chaining per net so staleness
/// grows with each edit, and appends the ECO section to the output.
fn render_eco(
    out: &mut String,
    nets: &[Net],
    outcomes: &[RouteOutcome],
    engine: &Engine,
    options: &RouteOptions,
) -> Result<(), CliError> {
    let mut current: Vec<Net> = nets.to_vec();
    let mut last: Vec<RouteOutcome> = outcomes.to_vec();
    let mut summary = ProvenanceSummary::default();
    out.push_str(&format!("eco: {} edits\n", options.eco.len()));
    for (e, edit) in options.eco.iter().enumerate() {
        if edit.net >= current.len() {
            return Err(usage_error(format!(
                "eco edit {e}: net index {} out of range ({} nets)",
                edit.net,
                current.len()
            )));
        }
        let delta = NetDelta::new(current[edit.net].clone(), edit.kind);
        let outcome = engine
            .reroute(&last[edit.net], &delta, Session::default())
            .map_err(|source| CliError::Route { net: edit.net, source })?;
        current[edit.net] = delta.apply();
        summary.record(&outcome.provenance);
        out.push_str(&format!(
            "edit {e}: net {} {}: {} Pareto solutions via {}\n",
            edit.net,
            edit.kind.label(),
            outcome.frontier.len(),
            outcome.provenance.source,
        ));
        for (cost, _) in outcome.frontier.iter() {
            out.push_str(&format!("  w={} d={}\n", cost.wirelength, cost.delay));
        }
        last[edit.net] = outcome;
    }
    out.push_str(&format!(
        "eco provenance: {summary} ({} edits)\n",
        summary.total()
    ));
    Ok(())
}

/// Renders one routed net: header, frontier, degradation trace (when a
/// fallback rung served it) and the optional `--pick` tree.
fn render_outcome(
    out: &mut String,
    i: usize,
    net: &Net,
    outcome: &RouteOutcome,
    options: &RouteOptions,
) {
    let frontier = &outcome.frontier;
    out.push_str(&format!(
        "net {i} (degree {}): {} Pareto solutions via {}\n",
        net.degree(),
        frontier.len(),
        outcome.provenance.source,
    ));
    if outcome.provenance.trace.degraded() {
        out.push_str(&format!("  degraded: {}\n", outcome.provenance.trace));
    }
    for (cost, _) in frontier.iter() {
        out.push_str(&format!("  w={} d={}\n", cost.wirelength, cost.delay));
    }
    if let Some(slack) = options.pick_slack {
        let budget = (net.delay_lower_bound() as f64 * slack).floor() as i64;
        let pick = frontier
            .iter()
            .find(|(c, _)| c.delay <= budget)
            .or_else(|| frontier.min_delay());
        if let Some((cost, tree)) = pick {
            out.push_str(&format!("  pick (budget {budget}): w={} d={}\n", cost.wirelength, cost.delay));
            for (a, b) in tree.edge_points() {
                out.push_str(&format!("    {},{} -- {},{}\n", a.x, a.y, b.x, b.y));
            }
        }
    }
}

/// Runs `lut build` (alias: `gen-tables`).
///
/// # Errors
///
/// Propagates filesystem errors as [`CliError::Table`].
pub fn gen_tables_command(lambda: u8, output: &str) -> Result<String, CliError> {
    if !(3..=9).contains(&lambda) {
        return Err(usage_error(format!("--lambda must be 3..=9, got {lambda}")));
    }
    let start = std::time::Instant::now();
    let table = LutBuilder::new(lambda).build();
    table.save(output).map_err(|e| CliError::Table {
        path: output.to_string(),
        message: e.to_string(),
    })?;
    Ok(format!(
        "generated lambda={lambda} tables in {:?} → {output}\n",
        start.elapsed()
    ))
}

/// Runs `lut info` (alias: `stats`) on a table file: the v4 file-level
/// report (version, checksum status, mappability, per-section layout)
/// followed by the per-degree Table II statistics.
///
/// # Errors
///
/// Propagates loading problems as [`CliError::Table`]; a v3 file errors
/// with the `lut build --format v4` migration path.
pub fn stats_command(path: &str) -> Result<String, CliError> {
    let as_table_err = |e: patlabor_lut::ReadTableError| CliError::Table {
        path: path.to_string(),
        message: e.to_string(),
    };
    let info = TableInfo::read(path).map_err(as_table_err)?;
    let mut out = format!(
        "format v{}, {} bytes, checksum {:#018x} ({}), {}\n",
        info.version,
        info.file_len,
        info.checksum,
        if info.checksum_ok { "ok" } else { "MISMATCH" },
        if info.mappable {
            "zero-copy mappable"
        } else {
            "NOT mappable"
        },
    );
    out.push_str("degree  section   offset      bytes      count  align\n");
    for s in &info.sections {
        out.push_str(&format!(
            "{:>6}  {:<8}  {:>6}  {:>9}  {:>9}  {}\n",
            s.degree,
            s.kind,
            s.offset,
            s.bytes,
            s.count,
            if s.aligned { "64" } else { "MISALIGNED" },
        ));
    }
    let table = LookupTable::open_mmap(path).map_err(as_table_err)?;
    out.push_str(&format!("lambda = {}\n", table.lambda()));
    out.push_str("degree  #Index  avg #Topo  total topologies  unique (pool)  arena bytes\n");
    let mut total_bytes = 0usize;
    for s in table.stats() {
        total_bytes += s.bytes;
        out.push_str(&format!(
            "{:>6}  {:>6}  {:>9.2}  {:>16}  {:>13}  {:>11}\n",
            s.degree,
            s.num_patterns,
            s.avg_topologies,
            s.total_topologies,
            s.unique_topologies,
            s.bytes
        ));
    }
    out.push_str(&format!("total arena bytes: {total_bytes}\n"));
    Ok(out)
}

/// Options of the `verify` command.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VerifyOptions {
    /// Harness configuration (seed, corpus size, degree range, ...).
    pub config: VerifyConfig,
    /// Pre-generated table file to verify instead of building fresh λ
    /// tables (the harness adopts the file's λ).
    pub tables: Option<String>,
    /// Run the mutation-smoke self-check instead of a plain run: plant a
    /// one-row table corruption and demand the harness catch it.
    pub smoke: bool,
    /// Run the chaos soak instead of the differential matrix: a real
    /// daemon under a seeded transport fault schedule, audited against
    /// the crash-only serving invariants.
    pub chaos_soak: bool,
}

/// Runs the `verify` command: the differential harness over every
/// fast/slow path pair, or (with `--smoke`) its mutation self-check.
///
/// # Errors
///
/// Returns [`CliError::Verify`] carrying the full report when a fast path
/// diverges from its oracle — or when the smoke mode's planted corruption
/// goes *undetected*, which indicts the harness itself. Table-file
/// problems surface as [`CliError::Table`].
pub fn verify_command(options: &VerifyOptions) -> Result<String, CliError> {
    if options.chaos_soak {
        let report = chaos_soak(&ChaosSoakConfig {
            seed: options.config.seed,
            ..ChaosSoakConfig::default()
        });
        let summary = report.summary();
        return if report.is_clean() {
            Ok(summary)
        } else {
            Err(CliError::Verify(summary))
        };
    }
    let table = match &options.tables {
        Some(path) => LookupTable::open_mmap(path).map_err(|e| CliError::Table {
            path: path.clone(),
            message: e.to_string(),
        })?,
        None => LutBuilder::new(options.config.lambda).build(),
    };
    let mut config = options.config.clone();
    config.lambda = table.lambda();
    if options.smoke {
        let smoke = mutation_smoke_with_table(table, &config);
        match smoke.caught {
            Some(cx) => Ok(format!(
                "mutation-smoke: planted {}\nharness caught it:\n{cx}\n",
                smoke.mutation
            )),
            None => Err(CliError::Verify(format!(
                "mutation-smoke FAILED: planted {} but the harness verified clean \
                 — the oracle machinery cannot detect real table damage",
                smoke.mutation
            ))),
        }
    } else {
        let report = verify_with_table(table, &config);
        let summary = report.summary();
        if report.is_clean() {
            Ok(summary)
        } else {
            Err(CliError::Verify(summary))
        }
    }
}

/// Dispatches the `lut` subcommands (`build`, `info`).
///
/// # Errors
///
/// Returns a user-facing message for unknown subcommands or flag
/// problems, and propagates build/load errors.
pub fn lut_command(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("build") => {
            let mut lambda = None;
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        lambda = Some(
                            next_value(&mut it, "--lambda")?
                                .parse::<u8>()
                                .map_err(|_| usage_error("--lambda expects an integer"))?,
                        );
                    }
                    "-o" | "--output" => output = Some(next_value(&mut it, "-o")?),
                    "--format" => {
                        let format = next_value(&mut it, "--format")?;
                        if format != "v4" && format != "4" {
                            return Err(usage_error(format!(
                                "--format {format} is not writable; this build emits \
                                 the mmap-serveable v4 layout only (pre-v4 readers \
                                 must upgrade, v4 files cannot be downgraded)"
                            )));
                        }
                    }
                    other => return Err(usage_error(format!("unknown flag {other}"))),
                }
            }
            let lambda = lambda.ok_or_else(|| usage_error("lut build needs --lambda"))?;
            let output = output.ok_or_else(|| usage_error("lut build needs -o FILE"))?;
            gen_tables_command(lambda, &output)
        }
        Some("info") => {
            let path = args
                .get(1)
                .ok_or_else(|| usage_error("lut info needs a file"))?;
            stats_command(path)
        }
        Some(other) => Err(usage_error(format!(
            "unknown lut subcommand `{other}`\n\n{USAGE}"
        ))),
        None => Err(usage_error(format!(
            "lut needs a subcommand (build | info)\n\n{USAGE}"
        ))),
    }
}

/// Options of the `serve` command.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// λ of freshly built tables (ignored when `tables` is given).
    pub lambda: u8,
    /// Pre-generated table file to mmap instead of building.
    pub tables: Option<String>,
    /// Socket-protocol bind address (port 0 picks a free port).
    pub addr: String,
    /// HTTP adapter bind address; `None` disables `/metrics`.
    pub http_addr: Option<String>,
    /// Worker threads per coalescing window (0 ⇒ hardware threads).
    pub threads: usize,
    /// Coalescing window, microseconds (0 disables coalescing).
    pub window_us: u64,
    /// Requests per window cap.
    pub max_batch: usize,
    /// Admission bound: queued requests beyond this are rejected.
    pub queue_depth: usize,
    /// Default per-request deadline (requests can override per-call).
    pub deadline_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let defaults = ServeConfig::default();
        ServeOptions {
            lambda: 5,
            tables: None,
            addr: defaults.addr,
            http_addr: Some("127.0.0.1:0".to_string()),
            threads: defaults.threads,
            window_us: 200,
            max_batch: defaults.max_batch,
            queue_depth: defaults.queue_depth,
            deadline_ms: None,
        }
    }
}

/// What a finished `serve` run reports: the stdout summary line and
/// the stderr resilience report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeExit {
    /// One line for stdout: requests served/rejected.
    pub summary: String,
    /// The final aggregated [`patlabor::ResilienceReport`], for stderr.
    pub report: String,
}

/// Runs the serving daemon until `stop` becomes non-zero, then drains
/// and returns the exit summary. `announce` receives the one
/// "listening" line once both listeners are bound (the daemon prints
/// it; tests parse the port out of it).
///
/// # Errors
///
/// Table-loading and bind failures surface as [`CliError`]; once
/// serving starts, per-request failures are answered on the wire, not
/// returned here.
pub fn serve_command_with(
    options: &ServeOptions,
    stop: &AtomicU32,
    reloads: &AtomicU32,
    announce: &mut dyn FnMut(&str),
) -> Result<ServeExit, CliError> {
    let mut engine = build_engine(options.tables.as_deref(), options.lambda)?;
    if let Some(ms) = options.deadline_ms {
        engine = engine.with_resilience(ResilienceConfig {
            deadline: Some(Duration::from_millis(ms)),
            ..ResilienceConfig::default()
        });
    }
    let config = ServeConfig {
        addr: options.addr.clone(),
        http_addr: options.http_addr.clone(),
        threads: options.threads,
        window: Duration::from_micros(options.window_us),
        max_batch: options.max_batch,
        queue_depth: options.queue_depth,
        ..ServeConfig::default()
    };
    let server = serve(engine, config).map_err(|e| CliError::Io {
        path: options.addr.clone(),
        message: e.to_string(),
    })?;
    let http = match server.http_addr() {
        Some(a) => format!(", http {a}"),
        None => String::new(),
    };
    announce(&format!("listening on {}{http}\n", server.addr()));
    let mut reloads_seen = reloads.load(Ordering::SeqCst);
    while stop.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(50));
        // SIGHUP: hot-reload the serving table from the --tables file.
        // Validation happens off the hot path; a rejected candidate
        // leaves the old table serving and only costs a log line.
        let requested = reloads.load(Ordering::SeqCst);
        if requested != reloads_seen {
            reloads_seen = requested;
            match &options.tables {
                Some(path) => match server.reload_table(path) {
                    Ok(epoch) => {
                        announce(&format!("reloaded tables from {path} (epoch {epoch})\n"));
                    }
                    Err(detail) => {
                        announce(&format!(
                            "reload of {path} failed: {detail}; old table keeps serving\n"
                        ));
                    }
                },
                None => {
                    announce("reload requested but no --tables file to reload from\n");
                }
            }
        }
    }
    // First signal: drain. In-flight windows and everything admitted
    // complete; new requests are rejected as "shutting-down".
    let summary = server.shutdown();
    Ok(ServeExit {
        summary: format!(
            "serve: drained; {} nets routed, {} rejected, {} malformed\n",
            summary.report.nets, summary.rejected, summary.malformed
        ),
        report: format!("resilience: {}\n", summary.report),
    })
}

/// Signal plumbing for `patlabor serve`: SIGINT/SIGTERM flip a counter
/// the serve loop polls (first signal drains, second aborts), and
/// SIGHUP flips a separate counter that triggers a hot table reload.
/// Raw `signal(2)` against libc — the one place the workspace talks to
/// the OS beyond std, kept to two symbols so everything stays
/// dependency-free.
pub mod signals {
    use std::sync::atomic::{AtomicU32, Ordering};

    /// How many SIGINT/SIGTERM deliveries the process has seen.
    pub static INTERRUPTS: AtomicU32 = AtomicU32::new(0);

    /// How many SIGHUP deliveries (hot-reload requests) the process
    /// has seen; the serve loop reloads once per observed change.
    pub static RELOADS: AtomicU32 = AtomicU32::new(0);

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe by construction: one atomic increment, and
        // on the second delivery an immediate _exit with the
        // conventional 128+SIGINT status — no allocation, no locks.
        if INTERRUPTS.fetch_add(1, Ordering::SeqCst) >= 1 {
            unsafe { _exit(130) }
        }
    }

    extern "C" fn on_reload(_signum: i32) {
        // One atomic increment; the serve loop does the actual reload
        // on its own thread where allocation and I/O are safe.
        RELOADS.fetch_add(1, Ordering::SeqCst);
    }

    /// Installs the drain-on-signal handlers for SIGINT and SIGTERM
    /// and the reload-on-SIGHUP handler.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGHUP, on_reload as *const () as usize);
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
patlabor — Pareto optimization of timing-driven routing trees

USAGE:
  patlabor route [--lambda L] [--tables FILE] [--pick SLACK] [--threads T]
                 [--faults SPEC[,SPEC..]] [--fault-seed N] [--deadline-ms MS]
                 [--json] [--eco EDITS.txt] <nets.txt>
  patlabor route [...] --bookshelf DESIGN.aux
  patlabor serve [--lambda L] [--tables FILE] [--addr HOST:PORT]
                 [--http-addr HOST:PORT | --no-http] [--threads T]
                 [--window-us US] [--max-batch N] [--queue-depth N]
                 [--deadline-ms MS]
  patlabor lut build --lambda L [--format v4] -o FILE
  patlabor lut info FILE
  patlabor verify [--seed N] [--nets N] [--lambda L] [--tables FILE]
                  [--max-degree D] [--threads T] [--span S]
                  [--faults SPEC[,SPEC..]] [--deadline-ms MS]
                  [--smoke] [--chaos-soak] [--no-shrink]
  patlabor gen-tables --lambda L -o FILE   (alias of `lut build`)
  patlabor stats FILE                      (alias of `lut info`)

Net list: one net per line, `x,y` pins separated by spaces, source first;
`#` comments.

`route --threads T` routes through the work-stealing batch driver
(results identical to serial) and appends a scaling report: per-worker
utilization, steal counts and cache lock contention. `route --json`
emits one wire-protocol reply object per net (NDJSON), byte-compatible
with the `serve` daemon's responses.

`route --eco EDITS.txt` replays incremental edits after the base route:
one edit per line, `<net-index> <kind> <args>` where kind is one of
`translate dx,dy`, `move-pin IDX x,y`, `add-sink x,y`,
`remove-sink IDX`, `blockage x0,y0 x1,y1` (`#` comments). Each edit
reroutes through the delta API — class-preserving edits replay the
cached winners (provenance `reused`), class-breaking edits fall back
to the full ladder.

`serve` runs the routing daemon: a length-prefixed JSON socket protocol
with request coalescing and admission control, plus an HTTP adapter
(GET /metrics Prometheus exposition, GET /healthz, POST /route,
POST /reroute). First
SIGINT/SIGTERM drains in-flight windows and exits 0 with the final
resilience report on stderr; a second signal aborts immediately. SIGHUP
hot-reloads the table from the --tables file: the candidate is validated
off the hot path and atomically swapped in under a new epoch — in-flight
windows finish on the old table, and a rejected candidate leaves the old
table serving.

`verify` cross-checks every fast path against its slow oracle on a seeded
corpus and reports the first divergence as a minimized counterexample;
`--smoke` instead plants a one-row table corruption and proves the
harness catches it; `--chaos-soak` boots a real daemon under a seeded
transport fault schedule (torn/corrupted frames, disconnects, stalls)
and audits the crash-only serving invariants: answered-exactly-once-or
-closed, bounded drain under chaos, a balanced per-rung ledger, and no
torn frame ever accepted. Exit status is non-zero on any divergence.

Fault SPEC: kind[:probability][@rung|@all], e.g. `stage-panic:0.3@all` or
`missing-degree`. Kinds: missing-degree, missing-pattern, corrupted-row,
stage-panic, stage-delay. With `--faults`/`--deadline-ms`, `route` runs a
drill (per-net failures print inline, the run ends with a resilience
report) and `verify` replays its corpus through the fault-armed router,
checking the degradation ladder's service invariants.
";

/// Parses CLI arguments and dispatches; returns the output to print or a
/// [`CliError`] (exit code 2 territory).
///
/// # Errors
///
/// Returns a user-facing diagnostic for unknown commands, malformed
/// flags, unreadable files, malformed net lists and per-net routing
/// failures — never a panic.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("route") => {
            let mut options = RouteOptions::default();
            let mut file = None;
            let mut bookshelf = None;
            let mut eco_path = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        options.lambda = next_value(&mut it, "--lambda")?
                            .parse()
                            .map_err(|_| usage_error("--lambda expects an integer"))?;
                    }
                    "--tables" => options.tables = Some(next_value(&mut it, "--tables")?),
                    "--pick" => {
                        options.pick_slack = Some(
                            next_value(&mut it, "--pick")?
                                .parse()
                                .map_err(|_| usage_error("--pick expects a number"))?,
                        );
                    }
                    "--bookshelf" => bookshelf = Some(next_value(&mut it, "--bookshelf")?),
                    "--faults" => {
                        for spec in next_value(&mut it, "--faults")?.split(',') {
                            options.faults.push(Fault::parse(spec.trim()).map_err(usage_error)?);
                        }
                    }
                    "--fault-seed" => {
                        options.fault_seed = parse_seed(&next_value(&mut it, "--fault-seed")?)
                            .ok_or_else(|| {
                                usage_error("--fault-seed expects an integer (decimal or 0x hex)")
                            })?;
                    }
                    "--deadline-ms" => {
                        options.deadline_ms = Some(
                            next_value(&mut it, "--deadline-ms")?
                                .parse()
                                .map_err(|_| usage_error("--deadline-ms expects an integer"))?,
                        );
                    }
                    "--threads" => {
                        options.threads = next_value(&mut it, "--threads")?
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t >= 1)
                            .ok_or_else(|| {
                                usage_error("--threads expects a positive integer")
                            })?;
                    }
                    "--json" => options.json = true,
                    "--eco" => eco_path = Some(next_value(&mut it, "--eco")?),
                    other if !other.starts_with('-') => file = Some(other.to_string()),
                    other => return Err(usage_error(format!("unknown flag {other}"))),
                }
            }
            let nets = match (bookshelf, file) {
                (Some(aux), _) => {
                    let design = patlabor_bookshelf::load_design(&aux).map_err(|e| {
                        CliError::Io {
                            path: aux.clone(),
                            message: e.to_string(),
                        }
                    })?;
                    design.nets
                }
                (None, Some(file)) => {
                    let text = std::fs::read_to_string(&file).map_err(|e| CliError::Io {
                        path: file.clone(),
                        message: e.to_string(),
                    })?;
                    parse_nets(&text)?
                }
                (None, None) => {
                    return Err(usage_error("route needs a net-list file or --bookshelf AUX"))
                }
            };
            if let Some(path) = eco_path {
                let text = std::fs::read_to_string(&path).map_err(|e| CliError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                options.eco = parse_edits(&text)?;
            }
            route_command(&nets, &options)
        }
        Some("lut") => lut_command(&args[1..]),
        Some("serve") => {
            let mut options = ServeOptions::default();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        options.lambda = next_value(&mut it, "--lambda")?
                            .parse()
                            .map_err(|_| usage_error("--lambda expects an integer"))?;
                    }
                    "--tables" => options.tables = Some(next_value(&mut it, "--tables")?),
                    "--addr" => options.addr = next_value(&mut it, "--addr")?,
                    "--http-addr" => {
                        options.http_addr = Some(next_value(&mut it, "--http-addr")?);
                    }
                    "--no-http" => options.http_addr = None,
                    "--threads" => {
                        options.threads = next_value(&mut it, "--threads")?
                            .parse()
                            .map_err(|_| usage_error("--threads expects an integer"))?;
                    }
                    "--window-us" => {
                        options.window_us = next_value(&mut it, "--window-us")?
                            .parse()
                            .map_err(|_| usage_error("--window-us expects an integer"))?;
                    }
                    "--max-batch" => {
                        options.max_batch = next_value(&mut it, "--max-batch")?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| {
                                usage_error("--max-batch expects a positive integer")
                            })?;
                    }
                    "--queue-depth" => {
                        options.queue_depth = next_value(&mut it, "--queue-depth")?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| {
                                usage_error("--queue-depth expects a positive integer")
                            })?;
                    }
                    "--deadline-ms" => {
                        options.deadline_ms = Some(
                            next_value(&mut it, "--deadline-ms")?
                                .parse()
                                .map_err(|_| usage_error("--deadline-ms expects an integer"))?,
                        );
                    }
                    other => return Err(usage_error(format!("unknown flag {other}"))),
                }
            }
            signals::install();
            let exit = serve_command_with(&options, &signals::INTERRUPTS, &signals::RELOADS, &mut |line| {
                // The listening line must reach the operator before the
                // (possibly hours-long) serve loop, so it bypasses the
                // run() return value.
                print!("{line}");
                let _ = std::io::Write::flush(&mut std::io::stdout());
            })?;
            // The final resilience report goes to stderr, keeping
            // stdout machine-readable.
            eprint!("{}", exit.report);
            Ok(exit.summary)
        }
        Some("verify") => {
            let mut options = VerifyOptions::default();
            let mut fault_specs: Vec<Fault> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--seed" => {
                        options.config.seed = parse_seed(&next_value(&mut it, "--seed")?)
                            .ok_or_else(|| {
                                usage_error("--seed expects an integer (decimal or 0x hex)")
                            })?;
                    }
                    "--nets" => {
                        options.config.nets = next_value(&mut it, "--nets")?
                            .parse()
                            .map_err(|_| usage_error("--nets expects an integer"))?;
                    }
                    "--lambda" => {
                        options.config.lambda = next_value(&mut it, "--lambda")?
                            .parse()
                            .map_err(|_| usage_error("--lambda expects an integer"))?;
                    }
                    "--max-degree" => {
                        options.config.max_degree = next_value(&mut it, "--max-degree")?
                            .parse()
                            .map_err(|_| usage_error("--max-degree expects an integer"))?;
                    }
                    "--threads" => {
                        options.config.threads = next_value(&mut it, "--threads")?
                            .parse()
                            .map_err(|_| usage_error("--threads expects an integer"))?;
                    }
                    "--span" => {
                        options.config.span = next_value(&mut it, "--span")?
                            .parse()
                            .map_err(|_| usage_error("--span expects an integer"))?;
                    }
                    "--tables" => options.tables = Some(next_value(&mut it, "--tables")?),
                    "--smoke" => options.smoke = true,
                    "--chaos-soak" => options.chaos_soak = true,
                    "--no-shrink" => options.config.shrink = false,
                    "--faults" => {
                        for spec in next_value(&mut it, "--faults")?.split(',') {
                            fault_specs.push(Fault::parse(spec.trim()).map_err(usage_error)?);
                        }
                    }
                    "--deadline-ms" => {
                        options.config.deadline_ms = Some(
                            next_value(&mut it, "--deadline-ms")?
                                .parse()
                                .map_err(|_| usage_error("--deadline-ms expects an integer"))?,
                        );
                    }
                    other => return Err(usage_error(format!("unknown flag {other}"))),
                }
            }
            if options.config.max_degree < options.config.min_degree {
                return Err(usage_error(format!(
                    "--max-degree must be at least {}",
                    options.config.min_degree
                )));
            }
            // Folded after the loop so `--seed` applies regardless of
            // flag order.
            options.config.faults = fault_specs
                .iter()
                .fold(FaultPlane::seeded(options.config.seed), |plane, &fault| {
                    plane.with_fault(fault)
                });
            verify_command(&options)
        }
        Some("gen-tables") => {
            let mut lambda = None;
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--lambda" => {
                        lambda = Some(
                            next_value(&mut it, "--lambda")?
                                .parse::<u8>()
                                .map_err(|_| usage_error("--lambda expects an integer"))?,
                        );
                    }
                    "-o" | "--output" => output = Some(next_value(&mut it, "-o")?),
                    other => return Err(usage_error(format!("unknown flag {other}"))),
                }
            }
            let lambda = lambda.ok_or_else(|| usage_error("gen-tables needs --lambda"))?;
            let output = output.ok_or_else(|| usage_error("gen-tables needs -o FILE"))?;
            gen_tables_command(lambda, &output)
        }
        Some("stats") => {
            let path = args
                .get(1)
                .ok_or_else(|| usage_error("stats needs a file"))?;
            stats_command(path)
        }
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(usage_error(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| usage_error(format!("{flag} expects a value")))
}

fn parse_seed(value: &str) -> Option<u64> {
    match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => value.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nets_happy_path() {
        let nets = parse_nets("# demo\n0,0 40,15 12,33\n\n5,5 25,5 # trailing\n").unwrap();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[0].degree(), 3);
        assert_eq!(nets[1].pins()[1], Point::new(25, 5));
    }

    #[test]
    fn parse_nets_reports_line_numbers() {
        let err = parse_nets("0,0 1,1\nbroken\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("x,y"));
        let err = parse_nets("0,0 1,x\n").unwrap_err();
        assert!(err.message.contains("not an integer"));
        let err = parse_nets("0,0\n").unwrap_err();
        assert!(err.message.contains("at least two pins"));
    }

    #[test]
    fn route_command_prints_frontiers_and_picks() {
        let nets = parse_nets("19,2 8,4 4,3 5,4 13,12\n").unwrap();
        let options = RouteOptions {
            lambda: 5,
            pick_slack: Some(1.2),
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        assert!(out.contains("2 Pareto solutions via exact-lut"));
        assert!(out.contains("w=26 d=18"));
        assert!(out.contains("pick (budget 19): w=26 d=18"));
        assert!(out.contains(" -- "));
        assert!(out.contains(
            "provenance: closed-form 0, cache-hit 0, exact-lut 1, numeric-dw 0, local-search 0, baseline 0, reused 0 (1 nets)"
        ));
    }

    #[test]
    fn route_command_provenance_counts_cache_hits() {
        // The same congruence class twice: second net must hit the cache.
        let nets = parse_nets("0,0 7,2 3,9\n100,50 107,52 103,59\n").unwrap();
        let out = route_command(&nets, &RouteOptions::default()).unwrap();
        assert!(out.contains("net 0 (degree 3): 1 Pareto solutions via exact-lut"));
        assert!(out.contains("net 1 (degree 3): 1 Pareto solutions via cache-hit"));
        assert!(out.contains("cache-hit 1, exact-lut 1"));
    }

    #[test]
    fn parse_edits_covers_every_kind_and_reports_errors() {
        let edits = parse_edits(
            "# chained edits\n\
             0 translate 5,-2\n\
             1 move-pin 2 7,7\n\
             2 add-sink 3,4   # trailing comment\n\
             0 remove-sink 1\n\
             \n\
             3 blockage 2,2 8,8\n",
        )
        .unwrap();
        assert_eq!(edits.len(), 5);
        assert_eq!(
            edits[0],
            EcoEdit {
                net: 0,
                kind: DeltaKind::Translate { dx: 5, dy: -2 }
            }
        );
        assert_eq!(
            edits[1],
            EcoEdit {
                net: 1,
                kind: DeltaKind::MovePin {
                    index: 2,
                    to: Point::new(7, 7)
                }
            }
        );
        assert_eq!(
            edits[4],
            EcoEdit {
                net: 3,
                kind: DeltaKind::BlockageMask {
                    min: Point::new(2, 2),
                    max: Point::new(8, 8)
                }
            }
        );

        let err = parse_edits("0 teleport 1,1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("teleport"));
        assert!(err.message.contains("translate"));
        let err = parse_edits("0 translate 5,-2\nnope translate 1,1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("net index"));
        let err = parse_edits("0 move-pin 2\n").unwrap_err();
        assert!(err.message.contains("x,y"));
        let err = parse_edits("0 remove-sink 1 9,9\n").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn route_eco_replays_class_preserving_edits() {
        // A translate preserves the congruence class exactly, so the
        // edit must answer from winner-id replay (`via reused`) — and a
        // second translate of the same net chains to staleness 2
        // without changing the provenance label.
        let nets = parse_nets("19,2 8,4 4,3 5,4\n").unwrap();
        let options = RouteOptions {
            eco: parse_edits("0 translate 5,-2\n0 translate 1,1\n").unwrap(),
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        assert!(out.contains("eco: 2 edits"), "missing eco header:\n{out}");
        assert!(
            out.contains("edit 0: net 0 translate: ")
                && out.contains("via reused"),
            "translate should replay:\n{out}"
        );
        assert!(out.contains("eco provenance: "));
        assert!(out.contains("reused 2 (2 edits)"), "both edits replay:\n{out}");
    }

    #[test]
    fn route_eco_rejects_incompatible_modes_and_bad_indices() {
        let nets = parse_nets("19,2 8,4 4,3 5,4\n").unwrap();
        let eco = parse_edits("0 translate 5,-2\n").unwrap();
        for options in [
            RouteOptions {
                eco: eco.clone(),
                json: true,
                ..RouteOptions::default()
            },
            RouteOptions {
                eco: eco.clone(),
                threads: 2,
                ..RouteOptions::default()
            },
            RouteOptions {
                eco: eco.clone(),
                deadline_ms: Some(10),
                ..RouteOptions::default()
            },
        ] {
            let err = route_command(&nets, &options).unwrap_err();
            assert!(err.to_string().contains("--eco"), "{err}");
        }
        let options = RouteOptions {
            eco: parse_edits("7 translate 1,1\n").unwrap(),
            ..RouteOptions::default()
        };
        let err = route_command(&nets, &options).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn route_eco_flag_reads_the_edits_file() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let nets_file = dir.join("eco_nets.txt");
        let edits_file = dir.join("eco_edits.txt");
        std::fs::write(&nets_file, "19,2 8,4 4,3 5,4\n").unwrap();
        std::fs::write(&edits_file, "0 translate 3,3\n").unwrap();
        let out = run(&[
            "route".into(),
            "--eco".into(),
            edits_file.to_string_lossy().into_owned(),
            nets_file.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("eco: 1 edits"));
        assert!(out.contains("via reused"));
        std::fs::remove_file(&nets_file).ok();
        std::fs::remove_file(&edits_file).ok();
    }

    #[test]
    fn route_threads_matches_serial_and_appends_scaling_report() {
        let nets = parse_nets(
            "0,0 7,2 3,9\n100,50 107,52 103,59\n0,0 5,5 9,1 2,8\n1,1 8,3 4,4\n",
        )
        .unwrap();
        let serial = route_command(&nets, &RouteOptions::default()).unwrap();
        let parallel = route_command(
            &nets,
            &RouteOptions {
                threads: 3,
                ..RouteOptions::default()
            },
        )
        .unwrap();
        // Identical per-net output, then the scaling report on top.
        assert!(parallel.starts_with(&serial[..serial.find("provenance").unwrap()]));
        assert!(parallel.contains("batch: "));
        assert!(parallel.contains("worker 0:"));
        assert!(parallel.contains("cache: "));
        assert!(parallel.contains("hit rate"));
        assert!(!serial.contains("batch: "));
    }

    #[test]
    fn route_threads_flag_is_parsed_and_validated() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("threads_nets.txt");
        std::fs::write(&file, "0,0 4,2 2,4\n6,0 1,5 3,3\n").unwrap();
        let path = file.to_string_lossy().into_owned();
        let out = run(&[
            "route".into(),
            "--threads".into(),
            "2".into(),
            path.clone(),
        ])
        .unwrap();
        assert!(out.contains("batch: "));
        let err = run(&["route".into(), "--threads".into(), "0".into(), path]).unwrap_err();
        assert!(err.to_string().contains("--threads"));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn missing_table_file_is_a_diagnostic_not_a_panic() {
        let nets = parse_nets("0,0 4,2 2,4\n").unwrap();
        let options = RouteOptions {
            tables: Some("/nonexistent/tables.plut".into()),
            ..RouteOptions::default()
        };
        let err = route_command(&nets, &options).unwrap_err();
        assert!(matches!(err, CliError::Table { .. }));
        assert!(err.to_string().contains("/nonexistent/tables.plut"));
    }

    #[test]
    fn malformed_net_line_is_a_diagnostic_not_a_panic() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("broken_nets.txt");
        std::fs::write(&file, "0,0 1,1\nthis is not a net\n").unwrap();
        let err = run(&["route".into(), file.to_string_lossy().into_owned()]).unwrap_err();
        assert!(matches!(err, CliError::Parse(_)));
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn gen_and_stats_roundtrip() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.plut").to_string_lossy().into_owned();
        let msg = gen_tables_command(4, &path).unwrap();
        assert!(msg.contains("lambda=4"));
        let stats = stats_command(&path).unwrap();
        assert!(stats.contains("lambda = 4"));
        assert!(stats.contains("16")); // degree-4 #Index
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_tables_rejects_bad_lambda() {
        assert!(gen_tables_command(2, "/tmp/x").is_err());
        assert!(gen_tables_command(10, "/tmp/x").is_err());
    }

    #[test]
    fn lut_build_and_info_end_to_end() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lut3.plut").to_string_lossy().into_owned();
        let msg = run(&[
            "lut".into(),
            "build".into(),
            "--lambda".into(),
            "3".into(),
            "-o".into(),
            path.clone(),
        ])
        .unwrap();
        assert!(msg.contains("lambda=3"));
        let info = run(&["lut".into(), "info".into(), path.clone()]).unwrap();
        assert!(info.contains("lambda = 3"));
        assert!(info.contains("arena bytes"));
        assert!(info.contains("format v4"), "info was: {info}");
        assert!(info.contains("zero-copy mappable"), "info was: {info}");
        assert!(info.contains("edge_off"), "info was: {info}");
        assert!(info.contains("checksum"), "info was: {info}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lut_build_format_flag() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lut3v4.plut").to_string_lossy().into_owned();
        let msg = run(&[
            "lut".into(),
            "build".into(),
            "--lambda".into(),
            "3".into(),
            "--format".into(),
            "v4".into(),
            "-o".into(),
            path.clone(),
        ])
        .unwrap();
        assert!(msg.contains("lambda=3"));
        std::fs::remove_file(&path).ok();
        let err = run(&[
            "lut".into(),
            "build".into(),
            "--lambda".into(),
            "3".into(),
            "--format".into(),
            "v3".into(),
            "-o".into(),
            path.clone(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("v4"), "error was: {err}");
    }

    #[test]
    fn lut_info_names_the_migration_path_for_v3_files() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old_v3.plut").to_string_lossy().into_owned();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"PLUT");
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.resize(64, 0);
        std::fs::write(&path, &bytes).unwrap();
        let err = run(&["lut".into(), "info".into(), path.clone()]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported table version 3"), "was: {msg}");
        assert!(msg.contains("--format v4"), "was: {msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lut_subcommand_errors_are_actionable() {
        assert!(run(&["lut".into()])
            .unwrap_err()
            .to_string()
            .contains("build | info"));
        assert!(run(&["lut".into(), "bogus".into()])
            .unwrap_err()
            .to_string()
            .contains("unknown lut subcommand"));
        assert!(run(&["lut".into(), "build".into()])
            .unwrap_err()
            .to_string()
            .contains("--lambda"));
        assert!(run(&["lut".into(), "info".into()])
            .unwrap_err()
            .to_string()
            .contains("needs a file"));
    }

    #[test]
    fn run_dispatch_and_usage() {
        let help = run(&[]).unwrap();
        assert!(help.contains("USAGE"));
        let err = run(&["bogus".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        let err = run(&["route".into()]).unwrap_err();
        assert!(err.to_string().contains("net-list file"));
        let err = run(&["route".into(), "--bookshelf".into(), "/nonexistent.aux".into()])
            .unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
        let err = run(&["route".into(), "--lambda".into()]).unwrap_err();
        assert!(err.to_string().contains("expects a value"));
    }

    fn small_verify_options() -> VerifyOptions {
        VerifyOptions {
            config: VerifyConfig {
                seed: 0xcafe,
                nets: 12,
                min_degree: 3,
                max_degree: 4,
                lambda: 4,
                dw_max_degree: 4,
                threads: 2,
                span: 16,
                shrink: true,
                ..VerifyConfig::default()
            },
            tables: None,
            smoke: false,
            chaos_soak: false,
        }
    }

    #[test]
    fn verify_chaos_soak_flag_runs_the_soak() {
        let out = verify_command(&VerifyOptions {
            chaos_soak: true,
            ..small_verify_options()
        })
        .unwrap();
        assert!(out.contains("chaos-soak: seed 0xcafe"), "{out}");
        assert!(out.contains("all crash-only invariants held"), "{out}");
    }

    #[test]
    fn verify_command_clean_run_reports_every_pair() {
        let out = verify_command(&small_verify_options()).unwrap();
        assert!(out.contains("all fast paths agree"));
        assert!(out.contains("lut-vs-numeric-dw"));
        assert!(out.contains("mmap-vs-owned"));
        assert!(out.contains("batch-vs-serial"));
        assert!(out.contains("seed 0xcafe"));
    }

    #[test]
    fn verify_command_smoke_mode_proves_detection() {
        let options = VerifyOptions {
            smoke: true,
            ..small_verify_options()
        };
        let out = verify_command(&options).unwrap();
        assert!(out.contains("mutation-smoke: planted"));
        assert!(out.contains("divergence on pair"));
    }

    #[test]
    fn verify_command_flags_a_corrupt_table_file() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.plut").to_string_lossy().into_owned();
        let mut table = LutBuilder::new(4).build();
        // Corrupt every degree-4 cost row: any degree-4 corpus net with a
        // nonzero gap vector then scores a shifted frontier.
        let mut id = 0u32;
        while table.corrupt_cost_row(4, id, 3) {
            id += 1;
        }
        assert!(id > 0, "the degree-4 pool cannot be empty");
        table.save(&path).unwrap();
        let options = VerifyOptions {
            tables: Some(path.clone()),
            ..small_verify_options()
        };
        let err = verify_command(&options).unwrap_err();
        let text = err.to_string();
        assert!(
            matches!(err, CliError::Verify(_)),
            "expected a verify failure, got: {text}"
        );
        assert!(text.contains("divergence on pair"), "report was: {text}");
        assert!(text.contains("replay:"), "report was: {text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn route_drill_missing_degree_degrades_and_reports() {
        let nets = parse_nets("19,2 8,4 4,3 5,4 13,12\n").unwrap();
        let options = RouteOptions {
            faults: vec![Fault::parse("missing-degree").unwrap()],
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        assert!(out.contains("via numeric-dw"), "output was: {out}");
        assert!(out.contains("degraded: lut:missing-degree"), "output was: {out}");
        assert!(out.contains("resilience: "), "output was: {out}");
        // The drill serves the same frontier costs as a healthy run.
        assert!(out.contains("w=26 d=18"), "output was: {out}");
    }

    #[test]
    fn route_drill_unabsorbable_panic_fails_inline_not_fatally() {
        let nets = parse_nets("0,0 9,1 8,8\n5,5 25,5\n").unwrap();
        let options = RouteOptions {
            faults: vec![Fault::parse("stage-panic@all").unwrap()],
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        assert!(out.contains("net 0 (degree 3): FAILED:"), "output was: {out}");
        assert!(out.contains("routing worker panicked"), "output was: {out}");
        // Degree 2 is a closed form — no rung to panic, so it serves.
        assert!(out.contains("net 1 (degree 2): 1 Pareto solutions"), "output was: {out}");
    }

    #[test]
    fn run_parses_fault_flags() {
        let err = run(&["route".into(), "--faults".into(), "bogus-kind".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown fault kind"));
        let err = run(&["verify".into(), "--faults".into(), "stage-panic:2.0".into()]).unwrap_err();
        assert!(err.to_string().contains("out of [0, 1]"));
        let err = run(&["route".into(), "--deadline-ms".into(), "soon".into()]).unwrap_err();
        assert!(err.to_string().contains("--deadline-ms expects an integer"));
        let err = run(&["route".into(), "--fault-seed".into(), "zzz".into()]).unwrap_err();
        assert!(err.to_string().contains("--fault-seed expects an integer"));
        assert!(USAGE.contains("--faults"));
    }

    #[test]
    fn verify_command_runs_the_fault_sweep_when_asked() {
        let mut options = small_verify_options();
        options.config.faults = FaultPlane::seeded(options.config.seed).with_fault(
            Fault::parse("missing-degree:0.5").unwrap(),
        );
        let out = verify_command(&options).unwrap();
        assert!(out.contains("fault sweep:"), "output was: {out}");
        assert!(out.contains("all fast paths agree"), "output was: {out}");
    }

    #[test]
    fn run_parses_verify_flags() {
        // An impossible flag combination errors before any expensive work.
        let err = run(&["verify".into(), "--seed".into(), "zzz".into()]).unwrap_err();
        assert!(err.to_string().contains("--seed expects an integer"));
        let err = run(&["verify".into(), "--max-degree".into(), "2".into()]).unwrap_err();
        assert!(err.to_string().contains("--max-degree must be at least"));
        let err = run(&["verify".into(), "--bogus".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"));
        // Usage text advertises the subcommand.
        assert!(run(&[]).unwrap().contains("patlabor verify"));
    }

    #[test]
    fn route_json_is_byte_compatible_with_the_wire_protocol() {
        let nets = parse_nets("19,2 8,4 4,3 5,4 13,12\n5,5 25,5\n").unwrap();
        let options = RouteOptions {
            json: true,
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), nets.len());
        // Each line is exactly what a serve daemon over the same engine
        // would answer — same serializer, same bytes.
        let reference = Engine::with_config(patlabor::RouterConfig {
            lambda: options.lambda,
            ..patlabor::RouterConfig::default()
        });
        for (i, (line, net)) in lines.iter().zip(&nets).enumerate() {
            let expected =
                patlabor_serve::result_to_json(i as u64, &reference.route(net)).render();
            assert_eq!(*line, expected, "net {i} diverged from the wire serializer");
            let parsed = patlabor_serve::parse(line).unwrap();
            assert_eq!(parsed.get("ok").and_then(|j| j.as_bool()), Some(true));
        }
    }

    #[test]
    fn route_json_reports_failures_inline_like_the_daemon() {
        let nets = parse_nets("0,0 9,1 8,8\n5,5 25,5\n").unwrap();
        let options = RouteOptions {
            json: true,
            faults: vec![Fault::parse("stage-panic@all").unwrap()],
            ..RouteOptions::default()
        };
        let out = route_command(&nets, &options).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        let failed = patlabor_serve::parse(lines[0]).unwrap();
        assert_eq!(
            failed.get("error").and_then(|j| j.as_str()),
            Some("route"),
            "line was: {}",
            lines[0]
        );
        // Degree 2 is a closed form — no rung to panic, so it serves.
        let served = patlabor_serve::parse(lines[1]).unwrap();
        assert_eq!(served.get("ok").and_then(|j| j.as_bool()), Some(true));
    }

    #[test]
    fn serve_command_serves_then_drains_on_stop() {
        use std::sync::mpsc;
        let stop = AtomicU32::new(0);
        let reloads = AtomicU32::new(0);
        let options = ServeOptions {
            lambda: 4,
            window_us: 0,
            http_addr: None,
            ..ServeOptions::default()
        };
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                serve_command_with(&options, &stop, &reloads, &mut |line| {
                    tx.send(line.to_string()).unwrap();
                })
            });
            let line = rx.recv().unwrap();
            let addr: std::net::SocketAddr = line
                .trim()
                .strip_prefix("listening on ")
                .unwrap()
                .parse()
                .unwrap();
            let mut client = patlabor_serve::RouteClient::connect(addr).unwrap();
            let nets = parse_nets("0,0 7,2 3,9\n").unwrap();
            let reply = client
                .route(&patlabor_serve::RouteRequest {
                    id: 1,
                    net: nets[0].clone(),
                    deadline_ms: None,
                })
                .unwrap();
            assert_eq!(reply.get("ok").and_then(|j| j.as_bool()), Some(true));
            // The "signal": the serve loop polls this flag exactly like
            // the SIGINT handler flips it.
            stop.store(1, Ordering::SeqCst);
            let exit = handle.join().unwrap().unwrap();
            assert!(exit.summary.contains("1 nets routed"), "{}", exit.summary);
            assert!(exit.report.starts_with("resilience: "), "{}", exit.report);
        });
    }

    #[test]
    fn serve_command_hot_reloads_on_the_reload_counter() {
        use std::sync::mpsc;
        let dir = std::env::temp_dir().join("patlabor_cli_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.lut");
        patlabor_lut::LutBuilder::new(4)
            .threads(2)
            .build()
            .save(&path)
            .unwrap();

        let stop = AtomicU32::new(0);
        let reloads = AtomicU32::new(0);
        let options = ServeOptions {
            tables: Some(path.to_string_lossy().into_owned()),
            window_us: 0,
            http_addr: None,
            ..ServeOptions::default()
        };
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                serve_command_with(&options, &stop, &reloads, &mut |line| {
                    tx.send(line.to_string()).unwrap();
                })
            });
            let line = rx.recv().unwrap();
            let addr: std::net::SocketAddr = line
                .trim()
                .strip_prefix("listening on ")
                .unwrap()
                .parse()
                .unwrap();
            let mut client = patlabor_serve::RouteClient::connect(addr).unwrap();
            let nets = parse_nets("0,0 7,2 3,9\n").unwrap();
            let request = patlabor_serve::RouteRequest {
                id: 1,
                net: nets[0].clone(),
                deadline_ms: None,
            };
            let before = client.route(&request).unwrap();

            // The SIGHUP path, minus the signal: bump the counter the
            // handler would bump and wait for the poll loop's announce.
            reloads.fetch_add(1, Ordering::SeqCst);
            let line = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(line.contains("reloaded tables"), "{line}");
            assert!(line.contains("epoch 1"), "{line}");
            let after = client.route(&request).unwrap();
            assert_eq!(after.get("frontier").map(|j| j.render()),
                       before.get("frontier").map(|j| j.render()));

            // A corrupt candidate is rejected; the old table serves on.
            std::fs::write(&path, b"garbage, not a v4 table").unwrap();
            reloads.fetch_add(1, Ordering::SeqCst);
            let line = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(line.contains("failed"), "{line}");
            assert!(line.contains("old table keeps serving"), "{line}");
            let still = client.route(&request).unwrap();
            assert_eq!(still.get("ok").and_then(|j| j.as_bool()), Some(true));

            stop.store(1, Ordering::SeqCst);
            let exit = handle.join().unwrap().unwrap();
            assert!(exit.summary.contains("3 nets routed"), "{}", exit.summary);
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_parses_serve_and_json_flags() {
        let err = run(&["serve".into(), "--queue-depth".into(), "0".into()]).unwrap_err();
        assert!(err.to_string().contains("--queue-depth"));
        let err = run(&["serve".into(), "--max-batch".into(), "none".into()]).unwrap_err();
        assert!(err.to_string().contains("--max-batch"));
        let err = run(&["serve".into(), "--bogus".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"));
        assert!(USAGE.contains("patlabor serve"));
        assert!(USAGE.contains("--json"));
    }

    #[test]
    fn run_route_end_to_end_via_tempfile() {
        let dir = std::env::temp_dir().join("patlabor_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("nets.txt");
        std::fs::write(&file, "0,0 9,1 8,8 1,9\n").unwrap();
        let out = run(&[
            "route".into(),
            "--lambda".into(),
            "4".into(),
            file.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("net 0 (degree 4)"));
        std::fs::remove_file(&file).ok();
    }
}
