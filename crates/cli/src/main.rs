//! The `patlabor` binary: thin shell over [`patlabor_cli::run`].

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match patlabor_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
