//! Batch/cache determinism: `route_batch` must be bit-identical to
//! serial `route`, with the frontier cache enabled or disabled.
//!
//! Comparisons extract frontiers from the [`patlabor::RouteOutcome`]s:
//! the frontier is the bit-identical part, while provenance legitimately
//! differs between cache states (`ExactLut` on a cold cache, `CacheHit`
//! on a warm one) — that difference is itself asserted below.

use patlabor::{
    CacheConfig, Net, ParetoSet, PatLabor, Point, RouteResult, RouteSource, RouterConfig,
    RoutingTree,
};
use patlabor_netgen::uniform_net;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ≥ 100 seeded nets covering every degree in 3..=12 (tabulated nets,
/// the cache path and the local-search path alike).
fn workload() -> Vec<Net> {
    let mut rng = StdRng::seed_from_u64(0x0de7_ea11);
    let mut nets = Vec::new();
    for round in 0..11 {
        for degree in 3..=12 {
            // Small spans collapse Hanan grids onto few congruence
            // classes, exercising cache hits; large spans exercise misses.
            let span = [8, 40, 2_000][round % 3];
            nets.push(uniform_net(&mut rng, degree, span));
        }
    }
    assert!(nets.len() >= 100);
    nets
}

fn frontiers(results: Vec<RouteResult>) -> Vec<ParetoSet<RoutingTree>> {
    results
        .into_iter()
        .map(|r| r.expect("workload nets always route").frontier)
        .collect()
}

#[test]
fn batch_with_and_without_cache_matches_serial_route() {
    let cached = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });
    let uncached = PatLabor::with_config(RouterConfig {
        lambda: 5,
        cache: CacheConfig::disabled(),
        ..RouterConfig::default()
    });
    assert!(cached.cache_stats().is_some());
    assert!(uncached.cache_stats().is_none());

    let nets = workload();
    // Ground truth: serial, cache-free routing.
    let serial: Vec<_> = nets
        .iter()
        .map(|n| uncached.route(n).expect("workload nets always route").frontier)
        .collect();

    assert_eq!(
        frontiers(uncached.route_batch(&nets, 8)),
        serial,
        "batch, no cache"
    );
    assert_eq!(
        frontiers(cached.route_batch(&nets, 8)),
        serial,
        "batch, cold cache"
    );
    // A warm cache (every class now resident) must replay identically.
    assert_eq!(
        frontiers(cached.route_batch(&nets, 8)),
        serial,
        "batch, warm cache"
    );
    let stats = cached.cache_stats().unwrap();
    assert!(stats.hits > 0, "repeated workload must hit: {stats:?}");
}

#[test]
fn congruent_nets_share_one_cache_entry() {
    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });
    let base = Net::new(vec![
        Point::new(0, 0),
        Point::new(7, 2),
        Point::new(3, 9),
        Point::new(10, 5),
    ])
    .unwrap();
    // The same net translated, mirrored about both axes, and rotated 90°
    // (x, y) → (y, −x): all congruent, so all one cache entry.
    let translated = base.map_points(|p| Point::new(p.x + 1000, p.y - 37));
    let mirrored = base.map_points(|p| Point::new(-p.x, -p.y));
    let rotated = base.map_points(|p| Point::new(p.y, -p.x));

    let outcome = router.route(&base).unwrap();
    assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
    let stats = router.cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

    for (label, net) in [
        ("translated", &translated),
        ("mirrored", &mirrored),
        ("rotated", &rotated),
    ] {
        let sym = router.route(net).unwrap();
        assert_eq!(
            sym.frontier.cost_vec(),
            outcome.frontier.cost_vec(),
            "{label}"
        );
        assert_eq!(
            sym.provenance.source,
            RouteSource::CacheHit,
            "{label} must be served from the shared cache entry"
        );
    }
    let stats = router.cache_stats().unwrap();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (3, 1, 1),
        "every congruent net must hit the single shared entry"
    );
}
