//! The resilience layer: clocks and deadline budgets, the unified fault
//! plane, and the degradation-ladder vocabulary (DESIGN.md §12).
//!
//! Production serving cannot afford a hard failure because one degree is
//! missing from a table file or one net's enumeration runs long. Instead
//! of erroring, [`crate::PatLabor::route`] walks a **degradation ladder**
//!
//! ```text
//! cache → LUT query → numeric DW → baseline      (degree ≤ λ)
//!         local search → baseline                (degree > λ)
//! ```
//!
//! where every failed, faulted or budget-expired rung falls through to
//! the next. This module holds the pieces the router composes:
//!
//! * [`Clock`] / [`Budget`] — a monotonic clock abstraction so per-net
//!   deadlines are testable with a [`VirtualClock`] (no wall-time
//!   flakiness) and production uses the [`SystemClock`];
//! * [`FaultPlane`] — one seed-deterministic registry replacing the
//!   scattered test hooks (`remove_degree`, `corrupt_cost_row`, ad-hoc
//!   panic injection): missing-degree, missing-pattern, corrupted-row,
//!   stage-panic and stage-delay faults, injected per net by hash;
//! * [`Rung`] / [`RungOutcome`] / [`DegradationTrace`] — what each rung
//!   attempted and why it fell through, recorded per net in
//!   [`crate::RouteProvenance`];
//! * [`ResilienceConfig`] — which fallbacks are armed ([`strict`]
//!   disables them all, restoring fail-fast semantics for oracles);
//! * [`ResilienceReport`] — the batch-level aggregate the CLI surfaces.
//!
//! [`strict`]: ResilienceConfig::strict

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use patlabor_geom::Net;

use crate::pipeline::RouteResult;

// ---------------------------------------------------------------------------
// Clocks and budgets
// ---------------------------------------------------------------------------

/// A monotonic clock the router reads deadlines against.
///
/// Production routers use the [`SystemClock`]; tests inject a
/// [`VirtualClock`] advanced only by explicit [`Clock::advance`] calls
/// (the stage-delay fault), so deadline behavior is a pure function of
/// the configuration — no sleeps, no flaky timing assertions.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Monotonic time since the clock's origin.
    fn now(&self) -> Duration;
    /// Advances the clock by `by` (the stage-delay fault's injection
    /// point): a virtual clock jumps, the system clock actually sleeps.
    fn advance(&self, by: Duration);
}

/// Wall-clock time relative to the clock's construction instant.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock starting now.
    pub fn new() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn advance(&self, by: Duration) {
        std::thread::sleep(by);
    }
}

/// A test clock that moves only when told to.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    fn advance(&self, by: Duration) {
        let by = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(by, Ordering::AcqRel);
    }
}

/// A per-net deadline: fixed at route entry, checked cooperatively at
/// rung boundaries and inside the DW / local-search inner loops.
#[derive(Debug, Clone)]
pub struct Budget {
    clock: Arc<dyn Clock>,
    deadline_at: Duration,
}

impl Budget {
    /// Starts a budget of `deadline` from the clock's current reading.
    pub fn new(clock: Arc<dyn Clock>, deadline: Duration) -> Self {
        let deadline_at = clock.now().saturating_add(deadline);
        Budget { clock, deadline_at }
    }

    /// Whether the deadline has passed.
    pub fn exceeded(&self) -> bool {
        self.clock.now() >= self.deadline_at
    }
}

// ---------------------------------------------------------------------------
// Fault plane
// ---------------------------------------------------------------------------

/// The kinds of fault the plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The LUT rung behaves as if the net's degree had no table (the
    /// `remove_degree` failure mode, without mutating the shared table).
    /// At the LocalSearch rung it simulates reroute tables the search
    /// cannot use, demoting large nets to the baseline rung.
    MissingDegree,
    /// The LUT rung behaves as if the net's canonical pattern were absent.
    MissingPattern,
    /// The LUT rung's scored frontier is perturbed the way a corrupted
    /// cost row perturbs it (the `corrupt_cost_row` failure mode);
    /// frontier validation then catches the mismatch.
    CorruptedRow,
    /// The targeted rung panics (the batch driver's isolation test).
    StagePanic,
    /// The targeted rung stalls: the router's clock advances by the
    /// plane's [`delay`](FaultPlane::delay) before the rung runs.
    StageDelay,
}

impl FaultKind {
    /// Every kind, in CLI/report order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::MissingDegree,
        FaultKind::MissingPattern,
        FaultKind::CorruptedRow,
        FaultKind::StagePanic,
        FaultKind::StageDelay,
    ];

    /// Stable machine-readable label (`--faults` spelling).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::MissingDegree => "missing-degree",
            FaultKind::MissingPattern => "missing-pattern",
            FaultKind::CorruptedRow => "corrupted-row",
            FaultKind::StagePanic => "stage-panic",
            FaultKind::StageDelay => "stage-delay",
        }
    }

    /// Parses a [`label`](FaultKind::label).
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// The primary serving rung for the net's degree: [`Rung::Lut`] on
    /// tabulated degrees, [`Rung::LocalSearch`] above λ. The default —
    /// it exercises the fallback rungs without disabling them.
    Primary,
    /// Exactly one rung.
    Rung(Rung),
    /// Every rung the net passes through (a fault nothing can absorb).
    AllRungs,
}

impl FaultScope {
    /// Whether a fault with this scope applies at `rung`.
    pub fn matches(self, rung: Rung) -> bool {
        match self {
            FaultScope::Primary => matches!(rung, Rung::Lut | Rung::LocalSearch),
            FaultScope::Rung(r) => r == rung,
            FaultScope::AllRungs => true,
        }
    }
}

/// One registered fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// Where to inject it.
    pub scope: FaultScope,
    /// Fraction of nets hit, decided deterministically per net by the
    /// plane's seed (`1.0` hits every net).
    pub probability: f64,
}

impl Fault {
    /// Parses the CLI spelling `kind[:probability][@rung|@all]`, e.g.
    /// `stage-panic`, `corrupted-row:0.3`, `stage-delay:1@local-search`.
    /// Scope defaults to [`FaultScope::Primary`], probability to `1.0`.
    pub fn parse(spec: &str) -> Result<Fault, String> {
        let (head, scope) = match spec.split_once('@') {
            None => (spec, FaultScope::Primary),
            Some((head, "all")) => (head, FaultScope::AllRungs),
            Some((head, rung)) => {
                let rung = Rung::from_label(rung)
                    .ok_or_else(|| format!("unknown rung `{rung}` in fault `{spec}`"))?;
                (head, FaultScope::Rung(rung))
            }
        };
        let (kind, probability) = match head.split_once(':') {
            None => (head, 1.0),
            Some((kind, prob)) => {
                let p: f64 = prob
                    .parse()
                    .map_err(|_| format!("bad probability `{prob}` in fault `{spec}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} out of [0, 1] in fault `{spec}`"));
                }
                (kind, p)
            }
        };
        let kind = FaultKind::from_label(kind).ok_or_else(|| {
            format!(
                "unknown fault kind `{kind}`; expected one of {}",
                FaultKind::ALL.map(|k| k.label()).join(", ")
            )
        })?;
        Ok(Fault { kind, scope, probability })
    }
}

/// The unified fault-injection registry ([`crate::RouterConfig::faults`]).
///
/// Whether a fault fires on a given net is a pure function of
/// `(seed, fault kind, net pins)` — independent of rung, thread schedule
/// and routing order — so a missing-degree fault that hits a net in a
/// serial run hits the same net in every batch run, and the verify
/// harness can replay the exact fault pattern from the seed alone.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlane {
    seed: u64,
    delay: Duration,
    faults: Vec<Fault>,
}

impl Default for FaultPlane {
    /// An empty plane: nothing fires, zero serving-path overhead.
    fn default() -> Self {
        FaultPlane {
            seed: 0,
            delay: Duration::from_millis(5),
            faults: Vec::new(),
        }
    }
}

impl FaultPlane {
    /// An empty plane with the given decision seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlane { seed, ..FaultPlane::default() }
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the stage-delay fault's clock advance (default 5 ms).
    #[must_use]
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Whether any fault is registered (the serving path skips all fault
    /// bookkeeping on an empty plane).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The registered faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The plane's decision seed ([`Engine`] sessions read it so a
    /// per-request seed override can default to the plane's own).
    ///
    /// [`Engine`]: crate::Engine
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stage-delay fault's clock advance.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Whether a `kind` fault strikes `rung` for the net identified by
    /// `net_key` (see [`net_key`]). Deterministic per `(seed, kind, net)`:
    /// the rung only gates on scope, so an `AllRungs` fault that hits a
    /// net hits it at every rung.
    pub fn fires(&self, kind: FaultKind, rung: Rung, net_key: u64) -> bool {
        self.fires_seeded(self.seed, kind, rung, net_key)
    }

    /// [`FaultPlane::fires`] with the decision seed supplied by the
    /// caller instead of the plane. Sessions use this to re-hash the
    /// plane's registered faults under a per-request seed override
    /// (same faults, same probabilities, independent per-net decisions).
    pub fn fires_seeded(&self, seed: u64, kind: FaultKind, rung: Rung, net_key: u64) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        self.faults.iter().any(|f| {
            f.kind == kind
                && f.scope.matches(rung)
                && unit_hash(seed ^ kind_salt(kind) ^ net_key) < f.probability
        })
    }
}

/// A stable identity for a net's pin set, used by [`FaultPlane::fires`].
pub fn net_key(net: &Net) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in net.pins() {
        h = splitmix64(h ^ (p.x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ (p.y as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
    }
    h
}

fn kind_salt(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::MissingDegree => 0x6d69_7373_6465_6721,
        FaultKind::MissingPattern => 0x6d69_7373_7061_7421,
        FaultKind::CorruptedRow => 0x636f_7272_7570_7421,
        FaultKind::StagePanic => 0x7061_6e69_6321_2121,
        FaultKind::StageDelay => 0x6465_6c61_7921_2121,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a 64-bit hash (upper 53 bits).
fn unit_hash(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// ---------------------------------------------------------------------------
// Rungs and traces
// ---------------------------------------------------------------------------

/// The rungs of the degradation ladder, in descent order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Degree-2 closed form (infallible; not a fault site).
    ClosedForm,
    /// Frontier-cache replay of winning topology ids.
    Cache,
    /// LUT dot-product query + survivor materialization (the primary
    /// rung for degrees `3..=λ`).
    Lut,
    /// Fresh numeric Pareto-DW enumeration — exact but per-instance
    /// expensive; the fallback when the tables cannot serve.
    NumericDw,
    /// Policy-guided local search (the primary rung above λ).
    LocalSearch,
    /// Baseline heuristic sweep from `crates/baselines` — always
    /// available, approximate, the last resort.
    Baseline,
}

impl Rung {
    /// Every rung, in ladder order.
    pub const ALL: [Rung; 6] = [
        Rung::ClosedForm,
        Rung::Cache,
        Rung::Lut,
        Rung::NumericDw,
        Rung::LocalSearch,
        Rung::Baseline,
    ];

    /// Number of rungs (array-index bound for per-rung counters).
    pub const COUNT: usize = Rung::ALL.len();

    /// Position in [`Rung::ALL`].
    pub fn index(self) -> usize {
        match self {
            Rung::ClosedForm => 0,
            Rung::Cache => 1,
            Rung::Lut => 2,
            Rung::NumericDw => 3,
            Rung::LocalSearch => 4,
            Rung::Baseline => 5,
        }
    }

    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Rung::ClosedForm => "closed-form",
            Rung::Cache => "cache",
            Rung::Lut => "lut",
            Rung::NumericDw => "numeric-dw",
            Rung::LocalSearch => "local-search",
            Rung::Baseline => "baseline",
        }
    }

    /// Parses a [`label`](Rung::label).
    pub fn from_label(label: &str) -> Option<Rung> {
        Rung::ALL.into_iter().find(|r| r.label() == label)
    }

    /// Whether the per-net deadline gates this rung. Only the compute
    /// rungs are gated; the cache probe is nearly free and the baseline
    /// is the deliberately cheap last resort, so an expired budget still
    /// yields *some* tree instead of nothing.
    pub fn deadline_gated(self) -> bool {
        matches!(self, Rung::Lut | Rung::NumericDw | Rung::LocalSearch)
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How one rung attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RungOutcome {
    /// The rung produced the frontier (always the trace's last entry).
    Served,
    /// The table has no patterns for the degree (real or injected).
    MissingDegree,
    /// The net's canonical pattern is absent (real or injected).
    MissingPattern,
    /// Frontier validation caught a cost/witness mismatch — a corrupted
    /// cost row (real or injected).
    CorruptRow,
    /// The rung panicked; the ladder caught it and fell through.
    Panicked,
    /// The per-net deadline expired before or during the rung.
    DeadlineExceeded,
    /// The rung was not attempted (disabled fallback or trace filler).
    Unavailable,
}

impl RungOutcome {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RungOutcome::Served => "served",
            RungOutcome::MissingDegree => "missing-degree",
            RungOutcome::MissingPattern => "missing-pattern",
            RungOutcome::CorruptRow => "corrupt-row",
            RungOutcome::Panicked => "panicked",
            RungOutcome::DeadlineExceeded => "deadline",
            RungOutcome::Unavailable => "unavailable",
        }
    }
}

impl fmt::Display for RungOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One rung attempt: which rung, and how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RungAttempt {
    /// The rung.
    pub rung: Rung,
    /// Its outcome.
    pub outcome: RungOutcome,
}

const TRACE_FILLER: RungAttempt = RungAttempt {
    rung: Rung::Baseline,
    outcome: RungOutcome::Unavailable,
};

/// The per-net record of the ladder's descent, stored inline in
/// [`crate::RouteProvenance`] (fixed-size so provenance stays `Copy`).
///
/// A clean route has a single `served` entry for its primary rung; every
/// earlier entry names a rung that failed and why. Cache *misses* are
/// not recorded — a miss is the normal path, not a degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegradationTrace {
    len: u8,
    attempts: [RungAttempt; Rung::COUNT],
}

impl Default for DegradationTrace {
    fn default() -> Self {
        DegradationTrace {
            len: 0,
            attempts: [TRACE_FILLER; Rung::COUNT],
        }
    }
}

impl DegradationTrace {
    /// Appends an attempt (each rung is tried at most once, so the
    /// fixed-size array never overflows; saturates defensively anyway).
    pub fn push(&mut self, rung: Rung, outcome: RungOutcome) {
        let i = self.len as usize;
        if i < Rung::COUNT {
            self.attempts[i] = RungAttempt { rung, outcome };
            self.len += 1;
        }
    }

    /// The recorded attempts, in ladder order.
    pub fn attempts(&self) -> &[RungAttempt] {
        &self.attempts[..self.len as usize]
    }

    /// Whether any rung failed before (or instead of) serving.
    pub fn degraded(&self) -> bool {
        self.attempts()
            .iter()
            .any(|a| a.outcome != RungOutcome::Served)
    }

    /// The rung that served, if any ([`RungOutcome::Served`] is always
    /// last — the ladder stops on success).
    pub fn served_by(&self) -> Option<Rung> {
        self.attempts()
            .last()
            .filter(|a| a.outcome == RungOutcome::Served)
            .map(|a| a.rung)
    }

    /// Whether `rung` was attempted with `outcome`.
    pub fn contains(&self, rung: Rung, outcome: RungOutcome) -> bool {
        self.attempts()
            .iter()
            .any(|a| a.rung == rung && a.outcome == outcome)
    }
}

impl fmt::Display for DegradationTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return f.write_str("(no rungs attempted)");
        }
        for (i, a) in self.attempts().iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{}:{}", a.rung, a.outcome)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Configuration and report
// ---------------------------------------------------------------------------

/// Which parts of the resilience layer are armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Fall through to a fresh numeric DW enumeration when the cache and
    /// LUT rungs cannot serve a tabulated degree.
    pub dw_fallback: bool,
    /// Fall through to the baseline heuristic sweep as the last rung.
    pub baseline_fallback: bool,
    /// Validate every served frontier (each cost must equal its witness
    /// tree's recomputed objectives) so corrupted cost rows demote to
    /// the next rung instead of serving wrong answers.
    pub validate_frontiers: bool,
    /// Per-net deadline; `None` routes without a budget (and without the
    /// budget checkpoints' overhead).
    pub deadline: Option<Duration>,
}

impl Default for ResilienceConfig {
    /// Everything armed, no deadline.
    fn default() -> Self {
        ResilienceConfig {
            dw_fallback: true,
            baseline_fallback: true,
            validate_frontiers: true,
            deadline: None,
        }
    }
}

impl ResilienceConfig {
    /// Fail-fast mode: no fallback rungs, no validation, no deadline —
    /// the pre-ladder behavior. The verify harness routes its oracles
    /// this way so a table fault surfaces as a `RouteError` divergence
    /// instead of being silently absorbed.
    pub fn strict() -> Self {
        ResilienceConfig {
            dw_fallback: false,
            baseline_fallback: false,
            validate_frontiers: false,
            deadline: None,
        }
    }
}

/// Batch-level aggregate of the ladder's activity
/// ([`crate::PatLabor::route_batch_with_report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceReport {
    /// Nets routed.
    pub nets: u64,
    /// Nets that produced a frontier (any rung).
    pub served: u64,
    /// Served nets whose trace shows at least one failed rung.
    pub degraded: u64,
    /// Nets that failed every armed rung (structured `RouteError`).
    pub errors: u64,
    /// Errored nets whose failure was an isolated panic.
    pub panicked: u64,
    /// Nets whose trace records a deadline expiry.
    pub deadline_hits: u64,
    /// Served nets per rung, indexed by [`Rung::index`].
    pub served_by: [u64; Rung::COUNT],
    /// Whether the frontier cache's adaptive bypass retired the cache
    /// during this batch (hit rate below the configured floor through the
    /// warmup window — see [`crate::cache::CacheConfig::bypass_warmup`]).
    /// Stamped by [`crate::PatLabor::route_batch_with_report`];
    /// [`ResilienceReport::from_results`] alone cannot know it.
    pub cache_bypassed: bool,
    /// Cache read-lock acquisitions that found the shard lock held
    /// (failed `try_read` before blocking), summed across shards.
    /// Stamped like [`cache_bypassed`](ResilienceReport::cache_bypassed).
    pub cache_contended_reads: u64,
    /// Cache write-lock acquisitions that found the shard lock held
    /// (failed `try_write` before blocking), summed across shards.
    /// Stamped like [`cache_bypassed`](ResilienceReport::cache_bypassed).
    pub cache_contended_writes: u64,
}

impl ResilienceReport {
    /// Folds one net's result into the tally.
    pub fn record(&mut self, result: &RouteResult) {
        self.nets += 1;
        match result {
            Ok(outcome) => {
                self.served += 1;
                let trace = &outcome.provenance.trace;
                if trace.degraded() {
                    self.degraded += 1;
                }
                if let Some(rung) = trace.served_by() {
                    self.served_by[rung.index()] += 1;
                }
                if trace
                    .attempts()
                    .iter()
                    .any(|a| a.outcome == RungOutcome::DeadlineExceeded)
                {
                    self.deadline_hits += 1;
                }
            }
            Err(e) => {
                self.errors += 1;
                if matches!(e, crate::RouteError::Panicked { .. }) {
                    self.panicked += 1;
                }
                if let crate::RouteError::RungsExhausted { trace, .. } = e {
                    if trace
                        .attempts()
                        .iter()
                        .any(|a| a.outcome == RungOutcome::DeadlineExceeded)
                    {
                        self.deadline_hits += 1;
                    }
                }
            }
        }
    }

    /// Aggregates a whole batch.
    pub fn from_results(results: &[RouteResult]) -> Self {
        let mut report = ResilienceReport::default();
        for r in results {
            report.record(r);
        }
        report
    }
}

impl fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nets: {} served ({} degraded), {} errors ({} panicked), {} deadline hits; served by:",
            self.nets, self.served, self.degraded, self.errors, self.panicked, self.deadline_hits
        )?;
        for rung in Rung::ALL {
            write!(f, " {} {}", rung.label(), self.served_by[rung.index()])?;
        }
        if self.cache_bypassed {
            write!(f, "; cache bypassed (hit rate below floor)")?;
        }
        if self.cache_contended_reads + self.cache_contended_writes > 0 {
            write!(
                f,
                "; cache lock contention: {} reads, {} writes",
                self.cache_contended_reads, self.cache_contended_writes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Point;

    #[test]
    fn virtual_clock_advances_only_on_demand() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(3));
        clock.advance(Duration::from_millis(4));
        assert_eq!(clock.now(), Duration::from_millis(7));
    }

    #[test]
    fn budget_expires_exactly_at_the_deadline() {
        let clock = Arc::new(VirtualClock::new());
        clock.advance(Duration::from_secs(1)); // non-zero origin
        let budget = Budget::new(clock.clone() as Arc<dyn Clock>, Duration::from_millis(10));
        assert!(!budget.exceeded());
        clock.advance(Duration::from_millis(9));
        assert!(!budget.exceeded());
        clock.advance(Duration::from_millis(1));
        assert!(budget.exceeded());
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn fault_labels_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_label("bogus"), None);
        for rung in Rung::ALL {
            assert_eq!(Rung::from_label(rung.label()), Some(rung));
            assert_eq!(Rung::ALL[rung.index()], rung);
        }
    }

    #[test]
    fn fault_parse_accepts_kind_probability_and_scope() {
        let f = Fault::parse("missing-degree").unwrap();
        assert_eq!(f.kind, FaultKind::MissingDegree);
        assert_eq!(f.scope, FaultScope::Primary);
        assert_eq!(f.probability, 1.0);

        let f = Fault::parse("corrupted-row:0.25").unwrap();
        assert_eq!(f.kind, FaultKind::CorruptedRow);
        assert_eq!(f.probability, 0.25);

        let f = Fault::parse("stage-panic:0.5@local-search").unwrap();
        assert_eq!(f.scope, FaultScope::Rung(Rung::LocalSearch));

        let f = Fault::parse("stage-panic@all").unwrap();
        assert_eq!(f.scope, FaultScope::AllRungs);

        assert!(Fault::parse("bogus").is_err());
        assert!(Fault::parse("stage-panic:2.0").is_err());
        assert!(Fault::parse("stage-panic:x").is_err());
        assert!(Fault::parse("stage-panic@warp").is_err());
    }

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn fault_plane_is_deterministic_and_probability_scaled() {
        let plane = FaultPlane::seeded(7).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::Primary,
            probability: 0.5,
        });
        let mut hits = 0usize;
        let total = 400;
        for i in 0..total {
            let n = net(&[(0, 0), (i as i64 + 1, 3), (2, i as i64 + 5)]);
            let key = net_key(&n);
            let fired = plane.fires(FaultKind::StagePanic, Rung::Lut, key);
            // Deterministic: same decision on every query and rung in scope.
            assert_eq!(fired, plane.fires(FaultKind::StagePanic, Rung::Lut, key));
            assert_eq!(fired, plane.fires(FaultKind::StagePanic, Rung::LocalSearch, key));
            // Out-of-scope rung never fires under Primary.
            assert!(!plane.fires(FaultKind::StagePanic, Rung::Baseline, key));
            // Unregistered kinds never fire.
            assert!(!plane.fires(FaultKind::MissingDegree, Rung::Lut, key));
            hits += usize::from(fired);
        }
        // ~50% within a generous tolerance (the hash is seed-fixed).
        assert!((total / 4..=3 * total / 4).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn probability_one_hits_every_net_and_zero_hits_none() {
        let always = FaultPlane::seeded(3).with_fault(Fault {
            kind: FaultKind::MissingDegree,
            scope: FaultScope::Primary,
            probability: 1.0,
        });
        let never = FaultPlane::seeded(3).with_fault(Fault {
            kind: FaultKind::MissingDegree,
            scope: FaultScope::Primary,
            probability: 0.0,
        });
        for i in 0..50 {
            let n = net(&[(0, 0), (9, i), (i + 1, 4)]);
            let key = net_key(&n);
            assert!(always.fires(FaultKind::MissingDegree, Rung::Lut, key));
            assert!(!never.fires(FaultKind::MissingDegree, Rung::Lut, key));
        }
    }

    #[test]
    fn net_key_distinguishes_nets() {
        let a = net_key(&net(&[(0, 0), (1, 2), (3, 4)]));
        let b = net_key(&net(&[(0, 0), (1, 2), (3, 5)]));
        let c = net_key(&net(&[(0, 0), (2, 1), (4, 3)]));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, net_key(&net(&[(0, 0), (1, 2), (3, 4)])));
    }

    #[test]
    fn trace_records_descent_and_reports_degradation() {
        let mut trace = DegradationTrace::default();
        assert!(!trace.degraded());
        assert_eq!(trace.served_by(), None);
        trace.push(Rung::Lut, RungOutcome::MissingDegree);
        trace.push(Rung::NumericDw, RungOutcome::Served);
        assert!(trace.degraded());
        assert_eq!(trace.served_by(), Some(Rung::NumericDw));
        assert!(trace.contains(Rung::Lut, RungOutcome::MissingDegree));
        assert!(!trace.contains(Rung::Lut, RungOutcome::Served));
        assert_eq!(trace.to_string(), "lut:missing-degree -> numeric-dw:served");

        let mut clean = DegradationTrace::default();
        clean.push(Rung::Lut, RungOutcome::Served);
        assert!(!clean.degraded());
        assert_eq!(clean.served_by(), Some(Rung::Lut));
    }

    #[test]
    fn trace_push_saturates_at_capacity() {
        let mut trace = DegradationTrace::default();
        for _ in 0..10 {
            trace.push(Rung::Lut, RungOutcome::Panicked);
        }
        assert_eq!(trace.attempts().len(), Rung::COUNT);
    }

    #[test]
    fn strict_config_disarms_everything() {
        let strict = ResilienceConfig::strict();
        assert!(!strict.dw_fallback);
        assert!(!strict.baseline_fallback);
        assert!(!strict.validate_frontiers);
        assert_eq!(strict.deadline, None);
        let default = ResilienceConfig::default();
        assert!(default.dw_fallback && default.baseline_fallback && default.validate_frontiers);
    }
}
