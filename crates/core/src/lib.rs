//! **PatLabor** — Pareto optimization of timing-driven routing trees.
//!
//! Reproduction of the DAC 2025 paper by Chen, Yao and Yin. Given a net
//! (source pin + sinks), PatLabor computes a *set* of routing trees on the
//! Pareto frontier of total wirelength `w(T)` and source→sink delay
//! `d(T)`, instead of the single parameterized compromise produced by
//! Prim–Dijkstra, SALT or YSD:
//!
//! * nets with degree `n ≤ λ` (default λ up to 9) are solved **exactly**
//!   through precomputed lookup tables ([`patlabor_lut`]) — every
//!   Pareto-optimal objective pair is returned with a witness tree;
//! * larger nets run the paper's **local search**: start from an RSMT,
//!   repeatedly pick the tree with the worst delay, select `λ − 1` pins
//!   with the learned scoring policy π, reroute them through the lookup
//!   table, and keep the Pareto set of everything seen
//!   ([`local_search`], [`policy`]);
//! * the theoretical divide-and-conquer approximation **Pareto-KS**
//!   (§IV-B) is provided for comparison ([`ks`]);
//! * the reinforcement-style **policy training** loop (§V-B) is
//!   reproducible via [`policy::train`].
//!
//! # Quickstart
//!
//! ```
//! use patlabor::{PatLabor, Net, Point, RouteSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let router = PatLabor::new(); // builds lookup tables for λ = 5
//! let net = Net::new(vec![
//!     Point::new(0, 0),    // source
//!     Point::new(19, 2),
//!     Point::new(8, 14),
//!     Point::new(4, 3),
//!     Point::new(13, 12),
//! ])?;
//! let outcome = router.route(&net)?;
//! assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
//! for (cost, tree) in outcome.frontier.iter() {
//!     assert_eq!((cost.wirelength, cost.delay), tree.objectives());
//! }
//! # Ok(())
//! # }
//! ```

// The serving path must fail with structured `RouteError`s, never an
// `unwrap` panic; test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod batch;
pub mod cache;
pub mod eco;
mod engine;
pub mod pad;
pub mod ks;
pub mod local_search;
pub mod pipeline;
pub mod policy;
pub mod resilience;
mod router;

pub use batch::{BatchConfig, BatchStats, WorkerStats};
pub use eco::{DeltaJob, DeltaKind, EcoConfig, NetDelta};
pub use engine::{Engine, ReloadError, Session};
pub use cache::{CacheConfig, CacheStats, ShardStats};
pub use pad::CachePadded;
pub use pipeline::{
    ProvenanceSummary, RouteError, RouteOutcome, RouteProvenance, RouteResult, RouteSource,
    RouteStage, StageCounters,
};
pub use resilience::{
    net_key, Budget, Clock, DegradationTrace, Fault, FaultKind, FaultPlane, FaultScope,
    ResilienceConfig, ResilienceReport, Rung, RungAttempt, RungOutcome, SystemClock, VirtualClock,
};
pub use router::{PatLabor, RouterConfig};

// Re-export the vocabulary types so `patlabor` is usable on its own.
pub use patlabor_geom::{Net, Point};
pub use patlabor_lut::{LookupTable, LutBuilder};
pub use patlabor_pareto::{Cost, ParetoSet};
pub use patlabor_tree::RoutingTree;
