//! Cache-line padding for hot shared words.
//!
//! The batch driver's per-worker deque cursors and the frontier cache's
//! per-shard locks and counters are written concurrently from many
//! cores. Without padding, unrelated control words land on the same
//! 64-byte line and every write invalidates every other core's copy —
//! false sharing that turns "contention-free by design" into a coherence
//! storm. [`CachePadded`] aligns (and therefore sizes) its contents to
//! 128 bytes: one line for the data plus the adjacent line the hardware
//! prefetcher speculatively pairs with it (Intel's spatial prefetcher
//! fetches lines in 128-byte pairs, so 64-byte alignment alone still
//! false-shares through the prefetcher).

/// Aligns `T` to 128 bytes so no two padded values share a cache-line
/// pair. The price is memory (a padded `AtomicU64` occupies 128 bytes);
/// pay it only for words that are genuinely write-hot from multiple
/// threads — per-worker cursors, per-shard locks and counters — never
/// for bulk data.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache-line pair.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn padded_values_never_share_a_line_pair() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 128);
        // An array of padded words puts each on its own pair.
        let words: [CachePadded<AtomicU64>; 2] = Default::default();
        let a = &words[0] as *const _ as usize;
        let b = &words[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_passes_through() {
        let padded = CachePadded::new(41u32);
        assert_eq!(*padded + 1, 42);
    }
}
