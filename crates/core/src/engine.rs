//! The long-lived serving core: [`Engine`] and per-request [`Session`]s.
//!
//! The paper's amortization argument (§V-A) only pays off when the
//! lookup tables are loaded **once** and queried millions of times, so
//! the serving state is split into two layers:
//!
//! * [`Engine`] — everything expensive and shared: the (possibly
//!   mmap'd) [`LookupTable`], the sharded frontier cache, the policy
//!   weights, the fault plane and the deadline clock, all behind one
//!   `Arc`. Built once; [`Engine::clone`] is a reference-count bump, so
//!   every connection handler, batch worker and CLI invocation can hold
//!   its own handle without duplicating a byte of table data.
//! * [`Session`] — everything per-request: the deadline budget, an
//!   identity for provenance, and an optional fault-seed override for
//!   drills. A `Session` is a few machine words of `Copy` data; the
//!   server mints one per wire request.
//!
//! [`crate::PatLabor`] survives as a thin wrapper over an `Engine` (its
//! public API is unchanged), and `patlabor serve` drives the engine
//! directly: one engine per process, one session per request, coalesced
//! into [`Engine::route_batch_sessions`] windows.

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use patlabor_baselines::fallback_frontier;
use patlabor_dw::{numeric, Cancelled, DwConfig};
use patlabor_geom::{Net, NetClass};
use patlabor_lut::{LookupTable, LutBuilder};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::RoutingTree;

use crate::cache::{CacheKey, CacheStats, FrontierCache, ShardStats};
use crate::eco::{DeltaKind, NetDelta};
use crate::local_search::{local_search_cancellable, LocalSearchConfig};
use crate::pipeline::{
    RouteError, RouteOutcome, RouteProvenance, RouteResult, RouteSource, StageCounters,
};
use crate::policy::Policy;
use crate::resilience::{
    net_key, Budget, Clock, DegradationTrace, FaultKind, FaultPlane, ResilienceConfig, Rung,
    RungOutcome, SystemClock,
};
use crate::router::RouterConfig;

/// Cancellation checkpoints between clock reads. Checkpoints are counted
/// on every poll, but the deadline clock — the expensive part of a poll —
/// is consulted only on this stride, keeping the budgeted/unbudgeted gap
/// on the BENCH_PR5 workload under its 2% guard. Rung gates still read
/// the clock unconditionally, so deadline granularity stays bounded by a
/// rung even when an inner loop finishes in fewer polls than one stride.
const BUDGET_POLL_STRIDE: u32 = 64;

/// The per-request layer: deadline, identity, fault-seed override.
///
/// Cheap (`Copy`, a few words) by design — the server mints one per wire
/// request, the batch driver carries one per slot. A default session
/// adds nothing: [`Engine::route`] with `Session::default()` behaves
/// exactly like the engine-level configuration alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Session {
    /// Caller-chosen identity, carried for provenance/logging (the serve
    /// layer stores the wire request id here). Not consulted by routing.
    pub id: u64,
    /// Per-request deadline. `Some` overrides the engine's configured
    /// [`ResilienceConfig::deadline`]; `None` inherits it.
    pub deadline: Option<Duration>,
    /// Per-request fault-plane seed override for drills: the plane's
    /// registered faults are kept but their per-net decisions re-hash
    /// under this seed. `None` uses the plane's own seed.
    pub fault_seed: Option<u64>,
}

impl Session {
    /// A session with the given identity and no overrides.
    pub fn new(id: u64) -> Self {
        Session { id, ..Session::default() }
    }

    /// Sets the per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-request fault-seed override.
    #[must_use]
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }
}

/// One loaded table generation: the table plus the monotone epoch it
/// was installed under. Epoch 0 is the table the engine was built with;
/// every successful [`Engine::reload_table`] bumps it. `Clone` is an
/// `Arc` bump — no table bytes move.
#[derive(Debug, Clone)]
pub(crate) struct TableGeneration {
    pub(crate) table: Arc<LookupTable>,
    pub(crate) epoch: u64,
}

/// The engine's swappable table slot (DESIGN.md §17).
///
/// Readers snapshot the current generation — an `Arc` bump under a
/// briefly-held read lock — at route entry and never touch the lock
/// again, so in-flight routes finish on the generation they started
/// on while a reload installs the next one. The lock is only ever held
/// across pointer-sized work; table validation happens off-slot.
#[derive(Debug)]
pub(crate) struct TableSlot {
    slot: RwLock<TableGeneration>,
}

impl TableSlot {
    fn new(table: Arc<LookupTable>) -> Self {
        TableSlot {
            slot: RwLock::new(TableGeneration { table, epoch: 0 }),
        }
    }

    /// The current generation. Poisoning is shrugged off: the guarded
    /// state is two words that are never left half-written.
    pub(crate) fn snapshot(&self) -> TableGeneration {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Commits a validated table as the next generation and returns its
    /// epoch. The cache epoch is advanced *inside* the write section,
    /// before the new table becomes snapshottable: a route that
    /// snapshots the new generation can therefore never hit an entry
    /// stamped by the old one.
    fn install(&self, table: Arc<LookupTable>, cache: Option<&FrontierCache>) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let epoch = slot.epoch + 1;
        if let Some(cache) = cache {
            cache.set_epoch(epoch);
        }
        slot.table = table;
        slot.epoch = epoch;
        epoch
    }
}

impl Clone for TableSlot {
    /// A detached slot over the same current generation (fresh lock):
    /// builder rebuilds and explicit engine deep-copies must not share
    /// reload state with the original.
    fn clone(&self) -> Self {
        TableSlot {
            slot: RwLock::new(self.snapshot()),
        }
    }
}

/// Why [`Engine::reload_table`] refused to swap. The old table keeps
/// serving in every case — a failed reload is an observation, never an
/// outage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadError {
    /// The candidate file failed the same structural validation
    /// [`LookupTable::open_mmap`] enforces (magic, section table,
    /// checksum, arena invariants). The string is the loader's report.
    Validation(String),
    /// The candidate is a well-formed table for a different λ; swapping
    /// it would silently change which degrees are tabulated.
    LambdaMismatch {
        /// λ of the table currently serving.
        current: u8,
        /// λ of the rejected candidate.
        proposed: u8,
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Validation(detail) => write!(f, "table validation failed: {detail}"),
            ReloadError::LambdaMismatch { current, proposed } => write!(
                f,
                "lambda mismatch: serving table has lambda {current}, candidate has lambda {proposed}"
            ),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Everything the engine shares between requests. One allocation,
/// behind the engine's `Arc`.
#[derive(Debug, Clone)]
pub(crate) struct EngineInner {
    pub(crate) table: TableSlot,
    pub(crate) policy: Policy,
    pub(crate) config: RouterConfig,
    /// Present iff `config.cache.enabled`. Shared (not deep-copied) by
    /// clones, so batch workers cloning a handle still pool their hits.
    pub(crate) cache: Option<Arc<FrontierCache>>,
    /// The clock deadlines are read against. Production engines keep the
    /// default [`SystemClock`]; tests inject a
    /// [`crate::resilience::VirtualClock`].
    pub(crate) clock: Arc<dyn Clock>,
}

/// The long-lived routing engine (see the module docs for the
/// engine/session split).
///
/// `Clone` is an `Arc` bump: handles share the table, cache, policy,
/// fault plane and clock. Builder methods (`with_*`) rebuild the shared
/// state — call them while setting up, before handing clones out.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Builds an engine with freshly generated λ = 5 lookup tables and
    /// the default trained policy.
    pub fn new() -> Self {
        Self::with_config(RouterConfig::default())
    }

    /// Builds an engine with the given configuration (generating tables
    /// for its λ).
    pub fn with_config(config: RouterConfig) -> Self {
        let table = LutBuilder::new(config.lambda).build();
        Self::assemble(table, config)
    }

    /// Builds an engine around pre-generated tables (e.g. mmap'd from
    /// disk via [`LookupTable::open_mmap`]).
    pub fn with_table(table: LookupTable) -> Self {
        let config = RouterConfig {
            lambda: table.lambda(),
            ..RouterConfig::default()
        };
        Self::assemble(table, config)
    }

    /// Builds an engine around pre-generated tables with an explicit
    /// configuration. `config.lambda` is overridden by the table's λ —
    /// the table, not the config, decides which degrees are tabulated.
    pub fn with_table_and_config(table: LookupTable, config: RouterConfig) -> Self {
        let config = RouterConfig {
            lambda: table.lambda(),
            ..config
        };
        Self::assemble(table, config)
    }

    fn assemble(table: LookupTable, config: RouterConfig) -> Self {
        Engine {
            inner: Arc::new(EngineInner {
                table: TableSlot::new(Arc::new(table)),
                policy: Policy::default(),
                cache: Self::build_cache(&config),
                config,
                clock: Arc::new(SystemClock::new()),
            }),
        }
    }

    fn build_cache(config: &RouterConfig) -> Option<Arc<FrontierCache>> {
        config
            .cache
            .enabled
            .then(|| Arc::new(FrontierCache::new(&config.cache)))
    }

    /// Applies a mutation to the shared state, cloning it out of the
    /// `Arc` only when other handles exist (builder calls during setup
    /// mutate in place).
    fn map_inner(self, f: impl FnOnce(&mut EngineInner)) -> Self {
        let mut inner = Arc::try_unwrap(self.inner).unwrap_or_else(|arc| (*arc).clone());
        f(&mut inner);
        Engine { inner: Arc::new(inner) }
    }

    /// Replaces the pin-selection policy (e.g. with a freshly trained one).
    #[must_use]
    pub fn with_policy(self, policy: Policy) -> Self {
        self.map_inner(|inner| inner.policy = policy)
    }

    /// Replaces the local-search configuration.
    #[must_use]
    pub fn with_local_search(self, local_search: LocalSearchConfig) -> Self {
        self.map_inner(|inner| inner.config.local_search = local_search)
    }

    /// Replaces the frontier-cache configuration, dropping any cached
    /// entries (and the old counters) in the process.
    #[must_use]
    pub fn with_cache(self, cache: crate::cache::CacheConfig) -> Self {
        self.map_inner(|inner| {
            inner.config.cache = cache;
            inner.cache = Self::build_cache(&inner.config);
        })
    }

    /// Replaces the resilience configuration (armed fallback rungs,
    /// frontier validation, per-net deadline).
    #[must_use]
    pub fn with_resilience(self, resilience: ResilienceConfig) -> Self {
        self.map_inner(|inner| inner.config.resilience = resilience)
    }

    /// Replaces the fault plane (deterministic fault injection).
    #[must_use]
    pub fn with_faults(self, faults: FaultPlane) -> Self {
        self.map_inner(|inner| inner.config.faults = faults)
    }

    /// Replaces the deadline clock (tests inject a
    /// [`crate::resilience::VirtualClock`] so deadline behavior is a
    /// pure function of the configuration).
    #[must_use]
    pub fn with_clock(self, clock: Arc<dyn Clock>) -> Self {
        self.map_inner(|inner| inner.clock = clock)
    }

    /// The lookup tables backing this engine — a snapshot of the
    /// current generation. A concurrent [`Engine::reload_table`] does
    /// not invalidate the returned handle; it keeps the generation it
    /// captured alive.
    pub fn table(&self) -> Arc<LookupTable> {
        self.inner.table.snapshot().table
    }

    /// The epoch of the currently serving table generation: 0 at build,
    /// +1 per successful [`Engine::reload_table`]. Exposed by the serve
    /// layer as the `patlabor_table_epoch` gauge.
    pub fn table_epoch(&self) -> u64 {
        self.inner.table.snapshot().epoch
    }

    /// Hot-swaps the serving table from a v4 file (DESIGN.md §17).
    ///
    /// The candidate is opened and validated **off the hot path** with
    /// the same invariants [`LookupTable::open_mmap`] enforces (magic,
    /// section table, word-striped checksum, arena bounds); only a
    /// candidate that passes and matches the serving λ is committed.
    /// The commit is an epoch'd pointer swap: in-flight routes finish
    /// on the generation they snapshotted at entry, the frontier cache
    /// is invalidated wholesale by the epoch bump (no sweep), and late
    /// inserts from old-generation routes are dropped by their stale
    /// epoch stamp. On any error the old table keeps serving.
    ///
    /// Returns the new generation's epoch.
    pub fn reload_table(&self, path: impl AsRef<Path>) -> Result<u64, ReloadError> {
        let candidate = LookupTable::open_mmap(path)
            .map_err(|e| ReloadError::Validation(e.to_string()))?;
        let current = self.inner.table.snapshot().table.lambda();
        if candidate.lambda() != current {
            return Err(ReloadError::LambdaMismatch {
                current,
                proposed: candidate.lambda(),
            });
        }
        Ok(self
            .inner
            .table
            .install(Arc::new(candidate), self.inner.cache.as_deref()))
    }

    /// The active pin-selection policy.
    pub fn policy(&self) -> &Policy {
        &self.inner.policy
    }

    /// The engine's configuration (the batch driver reads its chunk
    /// tuning from here).
    pub fn config(&self) -> &RouterConfig {
        &self.inner.config
    }

    /// The clock deadlines are read against (the serve layer shares it
    /// for coalescing-window timing so tests stay wall-time-free).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Frontier-cache counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|c| c.stats())
    }

    /// Per-shard frontier-cache counters, or `None` when the cache is
    /// disabled.
    pub fn cache_shard_stats(&self) -> Option<Vec<ShardStats>> {
        self.inner.cache.as_ref().map(|c| c.shard_stats())
    }

    /// Whether routing is exact for this degree (against the currently
    /// serving table generation).
    pub fn is_exact_for(&self, degree: usize) -> bool {
        degree <= self.inner.table.snapshot().table.lambda() as usize
    }

    /// Routes one net under the engine-level configuration alone
    /// (equivalent to [`Engine::route_session`] with a default session).
    pub fn route(&self, net: &Net) -> RouteResult {
        self.route_session(net, &Session::default())
    }

    /// Routes one net through the staged pipeline under a per-request
    /// [`Session`], returning the Pareto frontier with its provenance.
    ///
    /// Exact (the full Pareto frontier, one witness tree per point) for
    /// degrees `≤ λ`; the local-search approximation above. A rung that
    /// cannot serve — missing table degree or pattern, corrupted cost
    /// row caught by validation, expired deadline, or a panic — falls
    /// through the degradation ladder
    ///
    /// ```text
    /// cache → LUT query → numeric DW → baseline      (degree ≤ λ)
    ///         local search → baseline                (degree > λ)
    /// ```
    ///
    /// and the descent is recorded in [`RouteProvenance::trace`]. The
    /// session's `deadline` overrides the engine's configured deadline
    /// for this request only; its `fault_seed` re-seeds the fault
    /// plane's per-net decisions for this request only. Routing is
    /// deterministic: the frontier is bit-identical regardless of the
    /// frontier cache's state and of any session deadline generous
    /// enough not to expire.
    pub fn route_session(&self, net: &Net, session: &Session) -> RouteResult {
        let inner = &*self.inner;
        let degree = net.degree();
        let mut counters = StageCounters::default();
        let mut trace = DegradationTrace::default();

        // Stage: Classify — pick the serving path by degree.
        if degree == 2 {
            // Closed form: the direct tree is the entire frontier; no
            // class, no cache, no table involvement, no fault surface.
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut frontier = ParetoSet::new();
            frontier.insert(Cost::new(w, d), tree);
            counters.trees_materialized = 1;
            trace.push(Rung::ClosedForm, RungOutcome::Served);
            return Ok(outcome(frontier, degree, RouteSource::ClosedForm, counters, trace));
        }

        // Snapshot the table generation once: this route runs start to
        // finish against one table even if a hot reload commits midway,
        // and its cache inserts carry the snapshot's epoch so they are
        // dropped rather than published into a newer generation.
        let generation = inner.table.snapshot();
        let table = &*generation.table;

        let res = inner.config.resilience;
        let deadline = session.deadline.or(res.deadline);
        let budget =
            deadline.map(|deadline| Budget::new(Arc::clone(&inner.clock), deadline));
        let ctx = LadderCtx {
            faults: &inner.config.faults,
            fault_seed: session.fault_seed.unwrap_or_else(|| inner.config.faults.seed()),
            clock: inner.clock.as_ref(),
            budget: budget.as_ref(),
            key: net_key(net),
        };
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        let mut table_error: Option<RouteError> = None;

        if degree <= table.lambda() as usize {
            let class = table
                .classify(net)
                .ok_or(RouteError::UnclassifiableDegree { degree })?;

            // Rung: Cache — replay the class's winning ids on a hit. A
            // cache the adaptive bypass has retired (hit rate below the
            // configured floor through the warmup window) is skipped:
            // no probe, no insert, no rung attempt — until the periodic
            // re-probe window re-arms it (`skip_probe` drives that).
            if let Some(cache) = inner.cache.as_ref().filter(|c| !c.skip_probe()) {
                let outcome_ =
                    run_rung(&ctx, Rung::Cache, &mut counters, &mut panic_payload, |counters| {
                        counters.cache_probes = 1;
                        let key = CacheKey::from_class(&class);
                        let ids = cache.get(&key).ok_or(RungOutcome::Unavailable)?;
                        counters.cache_hits = 1;
                        counters.trees_materialized = ids.len() as u32;
                        let mut frontier = table.query_ids(net, &class, &ids);
                        if ctx.fires(FaultKind::CorruptedRow, Rung::Cache) {
                            frontier = corrupt_first_cost(frontier);
                        }
                        if res.validate_frontiers && !frontier_consistent(&frontier) {
                            return Err(RungOutcome::CorruptRow);
                        }
                        Ok(frontier)
                    });
                match outcome_ {
                    Ok(frontier) => {
                        trace.push(Rung::Cache, RungOutcome::Served);
                        return Ok(outcome(
                            frontier,
                            degree,
                            RouteSource::CacheHit,
                            counters,
                            trace,
                        ));
                    }
                    // A plain miss is the normal path, not a degradation.
                    Err(RungOutcome::Unavailable) => {}
                    Err(o) => trace.push(Rung::Cache, o),
                }
            }

            // Rung: Lut — the primary rung for tabulated degrees.
            let outcome_ =
                run_rung(&ctx, Rung::Lut, &mut counters, &mut panic_payload, |counters| {
                    // In this branch degree ≤ λ ≤ u8::MAX, so the narrowing
                    // casts below are lossless.
                    if ctx.fires(FaultKind::MissingDegree, Rung::Lut) {
                        table_error.get_or_insert(RouteError::MissingDegree {
                            degree: degree as u8,
                            lambda: table.lambda(),
                        });
                        return Err(RungOutcome::MissingDegree);
                    }
                    if ctx.fires(FaultKind::MissingPattern, Rung::Lut) {
                        table_error.get_or_insert(RouteError::MissingPattern {
                            degree: degree as u8,
                            key: class.canonical_key(),
                        });
                        return Err(RungOutcome::MissingPattern);
                    }
                    let (mut frontier, winners) = match lut_query(table, net, &class, counters) {
                        Ok(r) => r,
                        Err(e) => {
                            let outcome = if matches!(e, RouteError::MissingDegree { .. }) {
                                RungOutcome::MissingDegree
                            } else {
                                RungOutcome::MissingPattern
                            };
                            table_error.get_or_insert(e);
                            return Err(outcome);
                        }
                    };
                    if ctx.fires(FaultKind::CorruptedRow, Rung::Lut) {
                        frontier = corrupt_first_cost(frontier);
                    }
                    if res.validate_frontiers && !frontier_consistent(&frontier) {
                        return Err(RungOutcome::CorruptRow);
                    }
                    Ok((frontier, winners))
                });
            match outcome_ {
                Ok((frontier, winners)) => {
                    if let Some(cache) = inner.cache.as_ref().filter(|c| !c.bypassed()) {
                        cache.insert_at(CacheKey::from_class(&class), winners.into(), generation.epoch);
                    }
                    trace.push(Rung::Lut, RungOutcome::Served);
                    return Ok(outcome(
                        frontier,
                        degree,
                        RouteSource::ExactLut,
                        counters,
                        trace,
                    ));
                }
                Err(o) => trace.push(Rung::Lut, o),
            }

            // Rung: NumericDw — re-enumerate from scratch what the table
            // could not serve. Exact but per-instance expensive, hence
            // capped at `numeric::MAX_DEGREE`.
            if res.dw_fallback && degree <= numeric::MAX_DEGREE {
                let outcome_ =
                    run_rung(&ctx, Rung::NumericDw, &mut counters, &mut panic_payload, |counters| {
                        let checks = Cell::new(0u32);
                        let result =
                            numeric::pareto_frontier_cancellable(net, &DwConfig::default(), &|| {
                                let n = checks.get() + 1;
                                checks.set(n);
                                // Reading the clock is what costs, not the
                                // checkpoint itself: stride the reads so a
                                // hot DP loop stays under the BENCH_PR5
                                // overhead budget.
                                n.is_multiple_of(BUDGET_POLL_STRIDE)
                                    && ctx.budget.is_some_and(Budget::exceeded)
                            });
                        counters.budget_checks += checks.get();
                        result.map_err(|Cancelled| RungOutcome::DeadlineExceeded)
                    });
                match outcome_ {
                    Ok(frontier) => {
                        trace.push(Rung::NumericDw, RungOutcome::Served);
                        return Ok(outcome(
                            frontier,
                            degree,
                            RouteSource::NumericDw,
                            counters,
                            trace,
                        ));
                    }
                    Err(o) => trace.push(Rung::NumericDw, o),
                }
            }
        } else {
            // Rung: LocalSearch — the primary rung above λ.
            let outcome_ =
                run_rung(&ctx, Rung::LocalSearch, &mut counters, &mut panic_payload, |counters| {
                    // A missing-degree fault here simulates reroute tables
                    // the search cannot use (its subnets query the same
                    // LUT), demoting the net to the baseline rung.
                    if ctx.fires(FaultKind::MissingDegree, Rung::LocalSearch) {
                        return Err(RungOutcome::MissingDegree);
                    }
                    let checks = Cell::new(0u32);
                    let result = local_search_cancellable(
                        net,
                        table,
                        &inner.policy,
                        &inner.config.local_search,
                        &|| {
                            let n = checks.get() + 1;
                            checks.set(n);
                            n.is_multiple_of(BUDGET_POLL_STRIDE)
                                && ctx.budget.is_some_and(Budget::exceeded)
                        },
                    );
                    counters.budget_checks += checks.get();
                    match result {
                        Ok((frontier, report)) => {
                            counters.local_search_rounds = report.rounds as u32;
                            counters.local_search_candidates = report.candidates as u32;
                            Ok(frontier)
                        }
                        Err(Cancelled) => Err(RungOutcome::DeadlineExceeded),
                    }
                });
            match outcome_ {
                Ok(frontier) => {
                    trace.push(Rung::LocalSearch, RungOutcome::Served);
                    return Ok(outcome(
                        frontier,
                        degree,
                        RouteSource::LocalSearch,
                        counters,
                        trace,
                    ));
                }
                Err(o) => trace.push(Rung::LocalSearch, o),
            }
        }

        // Rung: Baseline — deliberately cheap and never deadline-gated:
        // an expired budget still yields valid (approximate) trees
        // instead of nothing.
        if res.baseline_fallback {
            let outcome_ =
                run_rung(&ctx, Rung::Baseline, &mut counters, &mut panic_payload, |counters| {
                    let frontier = fallback_frontier(net);
                    counters.trees_materialized += frontier.len() as u32;
                    Ok(frontier)
                });
            match outcome_ {
                Ok(frontier) => {
                    trace.push(Rung::Baseline, RungOutcome::Served);
                    return Ok(outcome(
                        frontier,
                        degree,
                        RouteSource::Baseline,
                        counters,
                        trace,
                    ));
                }
                Err(o) => trace.push(Rung::Baseline, o),
            }
        }

        // Ladder exhausted. A caught panic is not ours to swallow when no
        // rung could absorb it (the batch driver isolates it per slot);
        // otherwise prefer the real table error over the generic
        // exhaustion report.
        if let Some(payload) = panic_payload {
            panic::resume_unwind(payload);
        }
        Err(table_error.unwrap_or(RouteError::RungsExhausted { degree, trace }))
    }

    /// Incremental (ECO) rerouting: applies `delta` to its base net and
    /// answers from replay when the edit preserved the congruence class
    /// (see [`crate::eco`] and DESIGN.md §16).
    ///
    /// `prev` supplies the staleness lineage: a prior
    /// [`RouteSource::Reused`] outcome continues the edit count, any
    /// other provenance restarts it. [`RouterConfig::eco`]'s
    /// `staleness_cap` bounds how many consecutive edits replay may
    /// serve; past the cap the mutated net routes fresh, which resets
    /// the counter (a fresh outcome's provenance is no longer `Reused`).
    ///
    /// The replayed frontier is bit-identical to routing the mutated net
    /// from scratch: the cached winner set is a pure function of the
    /// (unchanged) congruence class, and replay only skips the scoring
    /// of candidates that were already dominated. When the class
    /// changed, the winners are not resident, or validation fails, the
    /// mutated net falls through the ordinary degradation ladder.
    pub fn reroute(&self, prev: &RouteOutcome, delta: &NetDelta, session: Session) -> RouteResult {
        let prior_edits = match prev.provenance.source {
            RouteSource::Reused { staleness } => staleness,
            _ => 0,
        };
        self.reroute_with_staleness(delta, prior_edits, &session)
    }

    /// [`Engine::reroute`] without a prior outcome in hand: the caller
    /// supplies the number of edits already served from replay for this
    /// net's lineage (the serve layer forwards the wire request's
    /// `staleness` field here; 0 after a fresh route).
    pub fn reroute_with_staleness(
        &self,
        delta: &NetDelta,
        prior_edits: u32,
        session: &Session,
    ) -> RouteResult {
        let mutated = delta.apply();
        let staleness = prior_edits.saturating_add(1);
        if staleness <= self.inner.config.eco.staleness_cap {
            if let Some(outcome) = self.replay_reuse(delta, &mutated, staleness) {
                return Ok(outcome);
            }
        }
        self.route_session(&mutated, session)
    }

    /// The ECO replay fast path: `Some` only when the edit is provably
    /// class-preserving (base and mutated nets canonicalize to the same
    /// cache key), the class's winners are resident in an armed frontier
    /// cache, and the replayed frontier passes validation. No LUT
    /// candidate is scored on this path (`candidates_scored` stays 0).
    fn replay_reuse(&self, delta: &NetDelta, mutated: &Net, staleness: u32) -> Option<RouteOutcome> {
        let inner = &*self.inner;
        let generation = inner.table.snapshot();
        let table = &*generation.table;
        let base = &delta.base;
        let degree = mutated.degree();
        if degree != base.degree() || degree < 3 || degree > table.lambda() as usize {
            return None;
        }
        let cache = inner.cache.as_ref().filter(|c| !c.skip_probe())?;
        let class = table.classify(mutated)?;
        let key = CacheKey::from_class(&class);
        // A rigid translate is class-preserving by theorem (the
        // canonical pattern key and gap vector are translation
        // invariant), so the base never needs canonicalizing — a second
        // classify would double the replay path's dominant cost for the
        // most common ECO edit. Every other kind must prove
        // preservation by canonicalizing both sides.
        if !matches!(delta.kind, DeltaKind::Translate { .. }) {
            let base_class = table.classify(base)?;
            if key != CacheKey::from_class(&base_class) {
                return None; // the edit broke the congruence class
            }
        }
        let mut counters = StageCounters {
            cache_probes: 1,
            ..StageCounters::default()
        };
        let ids = cache.get(&key)?;
        counters.cache_hits = 1;
        counters.trees_materialized = ids.len() as u32;
        let frontier = table.query_ids(mutated, &class, &ids);
        if inner.config.resilience.validate_frontiers && !frontier_consistent(&frontier) {
            return None;
        }
        let mut trace = DegradationTrace::default();
        trace.push(Rung::Cache, RungOutcome::Served);
        Some(outcome(
            frontier,
            degree,
            RouteSource::Reused { staleness },
            counters,
            trace,
        ))
    }
}

/// Stages LutQuery + Materialize: score the stored candidates, prune,
/// and build witness trees for the survivors only. Composes the same
/// stage calls as [`LookupTable::query_witnesses`], so the frontier
/// (including tie-break order) is bit-identical to it.
fn lut_query(
    table: &LookupTable,
    net: &Net,
    class: &NetClass,
    counters: &mut StageCounters,
) -> Result<(ParetoSet<RoutingTree>, Vec<u32>), RouteError> {
    let Some(ids) = table.candidate_ids(class) else {
        let degree = class.degree();
        return Err(if table.pattern_count(degree) == 0 {
            RouteError::MissingDegree {
                degree,
                lambda: table.lambda(),
            }
        } else {
            RouteError::MissingPattern {
                degree,
                key: class.canonical_key(),
            }
        });
    };
    counters.candidates_scored = ids.len() as u32;
    let survivors = table.score_candidates(class, ids);
    counters.trees_materialized = survivors.len() as u32;
    let mut winners = Vec::with_capacity(survivors.len());
    let entries: Vec<(Cost, RoutingTree)> = survivors
        .into_iter()
        .map(|(cost, id)| {
            let tree = table.materialize(net, class, id);
            winners.push(id);
            (cost, tree)
        })
        .collect();
    Ok((ParetoSet::from_unpruned(entries), winners))
}

fn outcome(
    frontier: ParetoSet<RoutingTree>,
    degree: usize,
    source: RouteSource,
    counters: StageCounters,
    trace: DegradationTrace,
) -> RouteOutcome {
    RouteOutcome {
        frontier,
        provenance: RouteProvenance {
            degree,
            source,
            counters,
            trace,
        },
    }
}

/// The per-route context [`run_rung`] reads: the fault plane, the
/// session-resolved decision seed, the clock it advances on injected
/// delays, the deadline budget, and the net's fault-decision key.
struct LadderCtx<'a> {
    faults: &'a FaultPlane,
    fault_seed: u64,
    clock: &'a dyn Clock,
    budget: Option<&'a Budget>,
    key: u64,
}

impl LadderCtx<'_> {
    /// [`FaultPlane::fires_seeded`] under the session-resolved seed.
    fn fires(&self, kind: FaultKind, rung: Rung) -> bool {
        self.faults.fires_seeded(self.fault_seed, kind, rung, self.key)
    }
}

/// Runs one rung inside the ladder's shared harness:
///
/// 1. an injected stage delay advances the clock *before* the deadline
///    gate, so a stalled stage burns the budget it is about to be judged
///    against;
/// 2. compute rungs ([`Rung::deadline_gated`]) are skipped once the
///    budget is exceeded;
/// 3. the body runs under `catch_unwind` (with an injected stage panic
///    fired inside it), so a panicking rung falls through instead of
///    unwinding the caller. The first caught payload is kept so an
///    unabsorbed panic can resume after the ladder is exhausted.
fn run_rung<T>(
    ctx: &LadderCtx<'_>,
    rung: Rung,
    counters: &mut StageCounters,
    panic_payload: &mut Option<Box<dyn Any + Send>>,
    body: impl FnOnce(&mut StageCounters) -> Result<T, RungOutcome>,
) -> Result<T, RungOutcome> {
    if ctx.fires(FaultKind::StageDelay, rung) {
        ctx.clock.advance(ctx.faults.delay());
    }
    if rung.deadline_gated() {
        if let Some(budget) = ctx.budget {
            counters.budget_checks += 1;
            if budget.exceeded() {
                return Err(RungOutcome::DeadlineExceeded);
            }
        }
    }
    let inject = ctx.fires(FaultKind::StagePanic, rung);
    match panic::catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected fault: stage panic at rung {rung}");
        }
        body(counters)
    })) {
        Ok(result) => result,
        Err(payload) => {
            panic_payload.get_or_insert(payload);
            Err(RungOutcome::Panicked)
        }
    }
}

/// Every cost must equal its witness tree's recomputed objectives; a
/// corrupted cost row breaks exactly this invariant.
pub(crate) fn frontier_consistent(frontier: &ParetoSet<RoutingTree>) -> bool {
    frontier
        .iter()
        .all(|(c, t)| (c.wirelength, c.delay) == t.objectives())
}

/// The corrupted-row injection: shift the first cost off its witness.
/// Decrementing (not incrementing) keeps the perturbed point dominant,
/// so [`ParetoSet::from_unpruned`]'s re-pruning cannot silently discard
/// the corruption before validation sees it.
fn corrupt_first_cost(frontier: ParetoSet<RoutingTree>) -> ParetoSet<RoutingTree> {
    let mut entries: Vec<(Cost, RoutingTree)> =
        frontier.iter().map(|(c, t)| (c, t.clone())).collect();
    if let Some((cost, _)) = entries.first_mut() {
        cost.wirelength -= 1;
    }
    ParetoSet::from_unpruned(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{Fault, FaultScope, VirtualClock};
    use patlabor_geom::Point;

    fn net3() -> Net {
        Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)]).unwrap()
    }

    fn engine4() -> Engine {
        Engine::with_table(LutBuilder::new(4).threads(2).build())
    }

    #[test]
    fn engine_clone_is_a_shared_handle() {
        let engine = engine4();
        let clone = engine.clone();
        // Same shared state: a route through one handle warms the
        // other's cache.
        let net = net3();
        let first = engine.route(&net).unwrap();
        assert_eq!(first.provenance.source, RouteSource::ExactLut);
        let second = clone.route(&net).unwrap();
        assert_eq!(second.provenance.source, RouteSource::CacheHit);
        assert_eq!(first.frontier, second.frontier);
        // And no table bytes were duplicated: both handles point at one
        // EngineInner.
        assert!(Arc::ptr_eq(&engine.inner, &clone.inner));
    }

    #[test]
    fn default_session_matches_engine_route() {
        let engine = engine4();
        let net = net3();
        let plain = engine.route(&net).unwrap();
        let session = engine.route_session(&net, &Session::new(42)).unwrap();
        // Provenance differs only through the cache warmup; compare a
        // fresh engine for full equality.
        assert_eq!(plain.frontier, session.frontier);
    }

    #[test]
    fn session_deadline_overrides_engine_deadline() {
        // Engine has a generous deadline; the session's zero deadline
        // must win and push the net down to the baseline rung.
        let clock = Arc::new(VirtualClock::new());
        clock.advance(Duration::from_secs(1));
        let engine = Engine::with_table_and_config(
            LutBuilder::new(4).threads(2).build(),
            RouterConfig {
                resilience: ResilienceConfig {
                    deadline: Some(Duration::from_secs(3600)),
                    ..ResilienceConfig::default()
                },
                ..RouterConfig::default()
            },
        )
        .with_cache(crate::cache::CacheConfig::disabled())
        .with_clock(clock);
        let net = net3();
        let generous = engine.route(&net).unwrap();
        assert_eq!(generous.provenance.source, RouteSource::ExactLut);
        let strict = engine
            .route_session(&net, &Session::new(1).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(strict.provenance.source, RouteSource::Baseline);
        assert!(strict
            .provenance
            .trace
            .contains(Rung::Lut, RungOutcome::DeadlineExceeded));
        // The engine-level deadline still applies to sessions that do
        // not override it.
        let inherited = engine.route_session(&net, &Session::new(2)).unwrap();
        assert_eq!(inherited.provenance.source, RouteSource::ExactLut);
    }

    #[test]
    fn session_fault_seed_reseeds_the_plane() {
        // A 50% plane: across many nets, at least one net must flip its
        // decision between two seeds, and a session override must
        // reproduce the other seed's outcome exactly.
        let faults = |seed| {
            FaultPlane::seeded(seed).with_fault(Fault {
                kind: FaultKind::MissingDegree,
                scope: FaultScope::Primary,
                probability: 0.5,
            })
        };
        let base = engine4()
            .with_cache(crate::cache::CacheConfig::disabled())
            .with_faults(faults(7));
        let other = engine4()
            .with_cache(crate::cache::CacheConfig::disabled())
            .with_faults(faults(8));
        let nets = patlabor_netgen::iccad_like_suite(0x5e55, 24, 4);
        let mut flipped = 0;
        for net in nets.iter().filter(|n| n.degree() >= 3) {
            let a = base.route(net).unwrap();
            let b = other.route(net).unwrap();
            let via_session = base
                .route_session(net, &Session::new(0).with_fault_seed(8))
                .unwrap();
            assert_eq!(via_session.provenance.source, b.provenance.source);
            assert_eq!(via_session.frontier.cost_vec(), b.frontier.cost_vec());
            if a.provenance.source != b.provenance.source {
                flipped += 1;
            }
        }
        assert!(flipped > 0, "two seeds should disagree on some net at p=0.5");
    }

    #[test]
    fn hot_reload_swaps_table_and_invalidates_cache() {
        let dir = std::env::temp_dir().join("patlabor_engine_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload_swap.plut");
        LutBuilder::new(4).threads(2).build().save(&path).unwrap();

        let engine = engine4();
        let net = net3();
        assert_eq!(engine.table_epoch(), 0);
        assert_eq!(engine.route(&net).unwrap().provenance.source, RouteSource::ExactLut);
        assert_eq!(engine.route(&net).unwrap().provenance.source, RouteSource::CacheHit);

        let epoch = engine.reload_table(&path).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(engine.table_epoch(), 1);
        // The epoch bump logically emptied the cache: the first route on
        // the new generation re-queries the LUT and re-publishes, with a
        // frontier identical to the pre-reload one (same λ, same net).
        let fresh = engine.route(&net).unwrap();
        assert_eq!(fresh.provenance.source, RouteSource::ExactLut);
        assert_eq!(engine.route(&net).unwrap().provenance.source, RouteSource::CacheHit);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_reload_leaves_old_table_serving() {
        let dir = std::env::temp_dir().join("patlabor_engine_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let corrupt = dir.join("reload_corrupt.plut");
        std::fs::write(&corrupt, b"not a lookup table at all").unwrap();

        let engine = engine4();
        let net = net3();
        engine.route(&net).unwrap();
        let err = engine.reload_table(&corrupt).unwrap_err();
        assert!(matches!(err, ReloadError::Validation(_)), "got {err}");
        assert_eq!(engine.table_epoch(), 0, "failed reload must not bump the epoch");
        // Cache entries from before the failed attempt are still live.
        assert_eq!(engine.route(&net).unwrap().provenance.source, RouteSource::CacheHit);

        // A structurally valid table for the wrong λ is also refused.
        let wrong = dir.join("reload_wrong_lambda.plut");
        LutBuilder::new(3).threads(2).build().save(&wrong).unwrap();
        let err = engine.reload_table(&wrong).unwrap_err();
        assert_eq!(
            err,
            ReloadError::LambdaMismatch { current: 4, proposed: 3 }
        );
        assert_eq!(engine.table_epoch(), 0);

        std::fs::remove_file(&corrupt).ok();
        std::fs::remove_file(&wrong).ok();
    }

    #[test]
    fn inflight_style_insert_from_old_epoch_is_dropped() {
        // Simulate the reload race at the cache API level: a route that
        // snapshotted epoch 0 finishes after the swap and tries to
        // publish — the stale-stamped insert must vanish.
        let dir = std::env::temp_dir().join("patlabor_engine_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload_race.plut");
        LutBuilder::new(4).threads(2).build().save(&path).unwrap();

        let engine = engine4();
        let net = net3();
        engine.route(&net).unwrap(); // warm at epoch 0
        engine.reload_table(&path).unwrap();
        let stats = engine.cache_stats().unwrap();
        // Probe after swap: resident entry is epoch-stale, reads as miss.
        let outcome = engine.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
        let after = engine.cache_stats().unwrap();
        assert_eq!(after.misses, stats.misses + 1);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_methods_on_shared_engine_leave_clones_untouched() {
        let engine = engine4();
        let clone = engine.clone();
        let rebuilt = engine.with_resilience(ResilienceConfig::strict());
        assert_eq!(rebuilt.config().resilience, ResilienceConfig::strict());
        // The pre-existing clone still routes with the default ladder.
        assert_eq!(clone.config().resilience, ResilienceConfig::default());
        assert!(!Arc::ptr_eq(&rebuilt.inner, &clone.inner));
    }
}
