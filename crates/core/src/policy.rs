//! The pin-selection policy π and its training loop (paper §V-B).
//!
//! Each local-search round must choose which `λ − 1` pins to reroute. Pins
//! are picked greedily by the score
//!
//! ```text
//! score(p) = α₁·‖r − p‖₁ + α₂·dist_T(r, p)
//!          − α₃·min_k ‖p − p_k‖₁ − α₄·HPWL(p, p₁ … p_k)
//! ```
//!
//! (far-from-source pins have large delay and should be rerouted; the
//! already-selected pins `p₁ … p_k` should stay geometrically tight so the
//! lookup-table subnet is meaningful). The four weights are trained by
//! policy iteration: sample random selections, keep the top performers by
//! frontier hypervolume gain, fit the weights by least squares, and
//! curriculum-warm-start each degree from the previous one ([`train`]).
//!
//! Policy scoring runs inside the router's LocalSearch rung, so a per-net
//! deadline ([`crate::resilience::ResilienceConfig::deadline`]) can cancel
//! a search between rounds — the policy itself is budget-oblivious; the
//! ladder (DESIGN.md §12) handles demotion to the baseline rung.

use patlabor_geom::{hpwl, Net, Point};
use patlabor_tree::RoutingTree;

/// The four score weights `α₁ … α₄` (all non-negative).
pub type Alphas = [f64; 4];

/// Weights shipped as the default policy, obtained with [`train`] on
/// seeded random instances (degrees 10–100, curriculum order; see
/// `patlabor::policy::train`'s docs for the exact procedure). Distance
/// from the source dominates, tree distance breaks ties toward
/// high-delay pins, and the two locality terms keep selections clustered.
pub const DEFAULT_ALPHAS: Alphas = [1.0, 1.35, 0.6, 0.25];

/// The pin-selection policy: per-degree weight vectors with nearest-degree
/// fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Sorted list of `(degree, alphas)` breakpoints.
    table: Vec<(usize, Alphas)>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            table: vec![(10, DEFAULT_ALPHAS)],
        }
    }
}

impl Policy {
    /// A policy using one weight vector for every degree.
    pub fn uniform(alphas: Alphas) -> Self {
        Policy {
            table: vec![(10, alphas)],
        }
    }

    /// A policy from per-degree breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `table` is empty.
    pub fn from_table(mut table: Vec<(usize, Alphas)>) -> Self {
        assert!(!table.is_empty(), "policy table must not be empty");
        table.sort_by_key(|&(d, _)| d);
        Policy { table }
    }

    /// The weights used for nets of `degree` (largest breakpoint ≤ degree,
    /// or the smallest breakpoint).
    pub fn alphas(&self, degree: usize) -> Alphas {
        let mut chosen = self.table[0].1;
        for &(d, a) in &self.table {
            if d <= degree {
                chosen = a;
            } else {
                break;
            }
        }
        chosen
    }

    /// Greedily selects `k` sink pins of `tree` to reroute (returned as net
    /// pin indices, highest score first).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the number of sinks.
    pub fn select_pins(&self, net: &Net, tree: &RoutingTree, k: usize) -> Vec<usize> {
        let num_sinks = net.degree() - 1;
        assert!(k <= num_sinks, "cannot select {k} of {num_sinks} sinks");
        let alphas = self.alphas(net.degree());
        let r = net.source();
        let root_dist = tree.root_distances();

        let mut selected: Vec<usize> = Vec::with_capacity(k);
        let mut selected_pts: Vec<Point> = Vec::with_capacity(k);
        while selected.len() < k {
            let mut best: Option<(f64, usize)> = None;
            for (pin, &p) in net.pins().iter().enumerate().skip(1) {
                if selected.contains(&pin) {
                    continue;
                }
                let mut score = alphas[0] * r.l1(p) as f64
                    + alphas[1] * root_dist[pin] as f64;
                if !selected_pts.is_empty() {
                    let min_sel = selected_pts
                        .iter()
                        .map(|&q| p.l1(q))
                        .min()
                        .expect("selected set is non-empty");
                    score -= alphas[2] * min_sel as f64;
                    let mut cloud = selected_pts.clone();
                    cloud.push(p);
                    score -= alphas[3] * hpwl(cloud) as f64;
                }
                if best.is_none_or(|(bs, bp)| score > bs || (score == bs && pin < bp)) {
                    best = Some((score, pin));
                }
            }
            let (_, pin) = best.expect("k <= num_sinks leaves a candidate");
            selected.push(pin);
            selected_pts.push(net.pins()[pin]);
        }
        selected
    }
}

/// Policy-iteration training (paper §V-B).
pub mod train {
    use super::{Alphas, Policy};
    use patlabor_geom::{hpwl, Net, Point};
    use patlabor_pareto::{metrics::hypervolume, Cost};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Training hyper-parameters.
    #[derive(Debug, Clone, Copy)]
    pub struct TrainConfig {
        /// Instances sampled per degree.
        pub instances_per_degree: usize,
        /// Random pin selections tried per instance.
        pub rollouts_per_instance: usize,
        /// Fraction of best rollouts kept for regression.
        pub keep_quantile: f64,
        /// Blend factor toward the previous degree's weights (curriculum
        /// warm start).
        pub warm_start_blend: f64,
        /// RNG seed (training is fully reproducible).
        pub seed: u64,
    }

    impl Default for TrainConfig {
        fn default() -> Self {
            TrainConfig {
                instances_per_degree: 12,
                rollouts_per_instance: 24,
                keep_quantile: 0.25,
                warm_start_blend: 0.5,
                seed: 0x5eed,
            }
        }
    }

    /// Trains per-degree weights over `degrees` (processed in ascending,
    /// curriculum order), returning the learned [`Policy`].
    ///
    /// For every instance the trainer rolls out random `λ − 1`-pin
    /// selections, scores each rollout by the hypervolume gained when the
    /// selected subnet is rerouted optimally, keeps the top quantile and
    /// fits the four score weights by least squares on their feature
    /// vectors (clamping to the paper's `α ≥ 0` constraint).
    pub fn train(degrees: &[usize], lambda: u8, config: &TrainConfig) -> Policy {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut degrees = degrees.to_vec();
        degrees.sort_unstable();
        let table = patlabor_lut::LutBuilder::new(lambda.clamp(3, 5)).build();
        let mut prev: Alphas = super::DEFAULT_ALPHAS;
        let mut out: Vec<(usize, Alphas)> = Vec::new();

        for &degree in &degrees {
            let mut features: Vec<[f64; 4]> = Vec::new();
            let mut targets: Vec<f64> = Vec::new();
            for _ in 0..config.instances_per_degree {
                let net = random_net(&mut rng, degree);
                let tree = patlabor_baselines::rsmt::rsmt_tree(&net);
                let (w0, d0) = tree.objectives();
                let reference = Cost::new(w0 * 2 + 1, d0 * 2 + 1);
                let base_set: patlabor_pareto::ParetoSet<()> =
                    [Cost::new(w0, d0)].into_iter().collect();
                let base_hv = hypervolume(&base_set, reference);
                let k = (table.lambda() as usize - 1).min(degree - 1);
                let mut rollouts: Vec<(f64, [f64; 4])> = Vec::new();
                for _ in 0..config.rollouts_per_instance {
                    let sel = random_selection(&mut rng, degree - 1, k);
                    let feat = selection_features(&net, &tree, &sel);
                    let gain = rollout_gain(&net, &tree, &sel, &table, base_hv, reference);
                    rollouts.push((gain, feat));
                }
                rollouts.sort_by(|a, b| b.0.total_cmp(&a.0));
                let keep = ((rollouts.len() as f64 * config.keep_quantile).ceil() as usize)
                    .max(1);
                for (gain, feat) in rollouts.into_iter().take(keep) {
                    features.push(feat);
                    targets.push(gain);
                }
            }
            let fitted = fit_least_squares(&features, &targets).unwrap_or(prev);
            let mut blended = [0.0f64; 4];
            for i in 0..4 {
                blended[i] = config.warm_start_blend * prev[i]
                    + (1.0 - config.warm_start_blend) * fitted[i];
                // The paper constrains α ≥ 0.
                blended[i] = blended[i].max(0.0);
            }
            out.push((degree, blended));
            prev = blended;
        }
        Policy::from_table(out)
    }

    fn random_net(rng: &mut StdRng, degree: usize) -> Net {
        Net::new(
            (0..degree)
                .map(|_| Point::new(rng.gen_range(0..1000), rng.gen_range(0..1000)))
                .collect(),
        )
        .expect("degree >= 2")
    }

    fn random_selection(rng: &mut StdRng, num_sinks: usize, k: usize) -> Vec<usize> {
        let mut pins: Vec<usize> = (1..=num_sinks).collect();
        for i in 0..k {
            let j = rng.gen_range(i..pins.len());
            pins.swap(i, j);
        }
        pins.truncate(k);
        pins
    }

    /// The four aggregate score terms of a selection (the regression
    /// features: per-term sums over the selected pins, locality terms
    /// negated so that "good" is uniformly "larger").
    fn selection_features(
        net: &Net,
        tree: &patlabor_tree::RoutingTree,
        selection: &[usize],
    ) -> [f64; 4] {
        let r = net.source();
        let dist = tree.root_distances();
        let mut f = [0.0f64; 4];
        let mut chosen: Vec<Point> = Vec::new();
        for &pin in selection {
            let p = net.pins()[pin];
            f[0] += r.l1(p) as f64;
            f[1] += dist[pin] as f64;
            if !chosen.is_empty() {
                let min_sel = chosen.iter().map(|&q| p.l1(q)).min().expect("non-empty");
                f[2] -= min_sel as f64;
                let mut cloud = chosen.clone();
                cloud.push(p);
                f[3] -= hpwl(cloud) as f64;
            }
            chosen.push(p);
        }
        // Normalize by the net scale so degrees are comparable.
        let scale = (net.hpwl() as f64).max(1.0);
        f.map(|x| x / scale)
    }

    /// Hypervolume gain from rerouting the selected subnet optimally,
    /// normalized by the seed tree's own hypervolume so targets (and thus
    /// the fitted weights) are O(1) across net sizes.
    fn rollout_gain(
        net: &Net,
        tree: &patlabor_tree::RoutingTree,
        selection: &[usize],
        table: &patlabor_lut::LookupTable,
        base_hv: i128,
        reference: Cost,
    ) -> f64 {
        let candidates =
            crate::local_search::reroute_candidates(net, tree, selection, table);
        let set: patlabor_pareto::ParetoSet<()> = candidates
            .iter()
            .map(|t| {
                let (w, d) = t.objectives();
                Cost::new(w, d)
            })
            .chain([{
                let (w, d) = tree.objectives();
                Cost::new(w, d)
            }])
            .collect();
        let gain = (hypervolume(&set, reference) - base_hv).max(0);
        gain as f64 / base_hv.max(1) as f64
    }

    /// 4-dimensional least squares via the normal equations (tiny, exact
    /// enough with partial-pivot Gaussian elimination).
    fn fit_least_squares(xs: &[[f64; 4]], ys: &[f64]) -> Option<Alphas> {
        if xs.len() < 4 {
            return None;
        }
        let mut ata = [[0.0f64; 4]; 4];
        let mut atb = [0.0f64; 4];
        for (x, &y) in xs.iter().zip(ys) {
            for i in 0..4 {
                for j in 0..4 {
                    ata[i][j] += x[i] * x[j];
                }
                atb[i] += x[i] * y;
            }
        }
        // Ridge term for stability.
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-6;
        }
        solve4(ata, atb)
    }

    fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
        for col in 0..4 {
            let pivot = (col..4).max_by(|&i, &j| {
                a[i][col].abs().total_cmp(&a[j][col].abs())
            })?;
            if a[pivot][col].abs() < 1e-12 {
                return None;
            }
            a.swap(col, pivot);
            b.swap(col, pivot);
            for row in 0..4 {
                if row == col {
                    continue;
                }
                let f = a[row][col] / a[col][col];
                let pivot_row = a[col];
                for (x, &pv) in a[row].iter_mut().zip(&pivot_row).skip(col) {
                    *x -= f * pv;
                }
                b[row] -= f * b[col];
            }
        }
        let mut x = [0.0f64; 4];
        for i in 0..4 {
            x[i] = b[i] / a[i][i];
        }
        Some(x)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn least_squares_recovers_known_weights() {
            // y = 2x₀ + 0.5x₁ + 3x₂ + 0x₃ exactly.
            let truth = [2.0, 0.5, 3.0, 0.0];
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut v = 1.0f64;
            for i in 0..20 {
                let x = [
                    (i as f64 * 0.37 + v).sin() + 2.0,
                    (i as f64 * 0.91).cos() + 2.0,
                    (i as f64 * 1.7).sin() * 0.5 + 1.0,
                    (i as f64 * 0.13).cos() + 1.5,
                ];
                v += 0.01;
                let y: f64 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
                xs.push(x);
                ys.push(y);
            }
            let fit = fit_least_squares(&xs, &ys).unwrap();
            for (f, t) in fit.iter().zip(&truth) {
                assert!((f - t).abs() < 1e-3, "{fit:?} vs {truth:?}");
            }
        }

        #[test]
        fn solve4_detects_singular() {
            let a = [[1.0, 2.0, 3.0, 4.0]; 4];
            assert_eq!(solve4(a, [1.0; 4]), None);
        }

        #[test]
        fn training_produces_nonnegative_per_degree_weights() {
            let cfg = TrainConfig {
                instances_per_degree: 3,
                rollouts_per_instance: 6,
                ..TrainConfig::default()
            };
            let policy = train(&[10, 12], 5, &cfg);
            for degree in [10, 11, 12, 50] {
                let a = policy.alphas(degree);
                assert!(a.iter().all(|&x| x >= 0.0), "{a:?}");
            }
        }

        #[test]
        fn training_is_deterministic() {
            let cfg = TrainConfig {
                instances_per_degree: 2,
                rollouts_per_instance: 4,
                ..TrainConfig::default()
            };
            let a = train(&[10], 4, &cfg);
            let b = train(&[10], 4, &cfg);
            assert_eq!(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn alphas_fallback_rules() {
        let p = Policy::from_table(vec![(10, [1.0; 4]), (50, [2.0; 4])]);
        assert_eq!(p.alphas(9), [1.0; 4]);
        assert_eq!(p.alphas(10), [1.0; 4]);
        assert_eq!(p.alphas(49), [1.0; 4]);
        assert_eq!(p.alphas(50), [2.0; 4]);
        assert_eq!(p.alphas(100), [2.0; 4]);
    }

    #[test]
    fn selection_prefers_far_high_delay_pins() {
        // Chain tree: the farthest pin has both the largest distance and
        // the largest tree path, so it must be selected first.
        let n = net(&[(0, 0), (10, 0), (20, 0), (30, 0)]);
        let t = patlabor_tree::RoutingTree::from_parents(
            n.pins().to_vec(),
            vec![0, 0, 1, 2],
            4,
        )
        .unwrap();
        let sel = Policy::default().select_pins(&n, &t, 2);
        assert_eq!(sel[0], 3);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn locality_terms_keep_selection_tight() {
        // One far-away outlier vs a tight far cluster: after picking the
        // first cluster pin, the other cluster pins beat the outlier when
        // the locality weights dominate.
        let n = net(&[(0, 0), (100, 0), (100, 4), (100, 8), (4, 96)]);
        let t = patlabor_tree::RoutingTree::direct(&n);
        let tight = Policy::uniform([1.0, 0.0, 5.0, 5.0]);
        let sel = tight.select_pins(&n, &t, 3);
        assert!(
            sel.contains(&1) && sel.contains(&2) && sel.contains(&3),
            "expected the cluster, got {sel:?}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn select_rejects_oversized_k() {
        let n = net(&[(0, 0), (1, 1)]);
        let t = patlabor_tree::RoutingTree::direct(&n);
        let _ = Policy::default().select_pins(&n, &t, 2);
    }

    #[test]
    fn selecting_all_sinks_returns_every_sink() {
        let n = net(&[(0, 0), (3, 1), (8, 2), (1, 7)]);
        let t = patlabor_tree::RoutingTree::direct(&n);
        let mut sel = Policy::default().select_pins(&n, &t, 3);
        sel.sort_unstable();
        assert_eq!(sel, vec![1, 2, 3]);
    }

    #[test]
    fn selection_is_deterministic() {
        let n = net(&[(0, 0), (9, 9), (9, 8), (8, 9), (1, 2), (2, 1)]);
        let t = patlabor_tree::RoutingTree::direct(&n);
        let p = Policy::default();
        assert_eq!(p.select_pins(&n, &t, 3), p.select_pins(&n, &t, 3));
    }

    #[test]
    fn selecting_zero_pins_is_empty() {
        let n = net(&[(0, 0), (1, 1)]);
        let t = patlabor_tree::RoutingTree::direct(&n);
        assert!(Policy::default().select_pins(&n, &t, 0).is_empty());
    }
}
