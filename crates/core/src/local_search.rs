//! PatLabor's local search for large-degree nets (paper §V-B).
//!
//! The loop maintains a Pareto set `𝒯` of whole-net trees:
//!
//! 1. `𝒯 ← { RSMT }` (the FLUTE-substitute seed);
//! 2. pick the tree `T ∈ 𝒯` with the largest delay, choose `λ − 1` pins
//!    with the scoring policy π, and reroute the subnet `{r} ∪ pins`
//!    through the lookup table — every stored Pareto topology of the
//!    subnet yields a candidate whole-net tree;
//! 3. insert all candidates into `𝒯` and prune off-frontier trees;
//! 4. repeat `⌊n/λ⌋` times.
//!
//! Rerouted local topologies may interact badly with the other `n − λ`
//! pins, so candidates pass through the SALT-style post-processing of
//! [`patlabor_tree::reconnect_pass`] (the paper does the same).

use patlabor_baselines::rsmt::rsmt_tree;
use patlabor_dw::Cancelled;
use patlabor_geom::Net;
use patlabor_lut::LookupTable;
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{
    extract_from_union, reconnect_pass, RefineObjective, RoutingTree,
};

use crate::policy::Policy;

/// Tuning knobs of the local search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchConfig {
    /// Number of reroute rounds; `None` uses the paper's `⌊n/λ⌋`.
    pub rounds: Option<usize>,
    /// Run the SALT-style refinement passes on each candidate.
    pub refine: bool,
    /// Additionally seed `𝒯` with the shortest-path arborescence.
    ///
    /// The paper seeds only the RSMT but reroutes through λ = 9 tables;
    /// with smaller tables the delay end needs this extra seed to match
    /// the paper's curve shape, so it defaults to `true` (disable for
    /// strict §V-B fidelity).
    pub seed_arborescence: bool,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            rounds: None,
            refine: true,
            seed_arborescence: true,
        }
    }
}

/// Work done by one local-search run, for route provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalSearchReport {
    /// Reroute rounds executed (may stop early on an empty frontier).
    pub rounds: usize,
    /// Candidate whole-net trees generated across all rounds (reroute
    /// candidates, not counting refine variants).
    pub candidates: usize,
}

/// Runs the PatLabor local search on a net with degree `> λ`.
///
/// # Panics
///
/// Panics if the net degree is not larger than the table's λ (small nets
/// should be answered by [`LookupTable::query`] directly).
pub fn local_search(
    net: &Net,
    table: &LookupTable,
    policy: &Policy,
    config: &LocalSearchConfig,
) -> ParetoSet<RoutingTree> {
    local_search_with_report(net, table, policy, config).0
}

/// [`local_search`] plus a [`LocalSearchReport`] of the work performed
/// (the router's LocalSearch-stage counters).
pub fn local_search_with_report(
    net: &Net,
    table: &LookupTable,
    policy: &Policy,
    config: &LocalSearchConfig,
) -> (ParetoSet<RoutingTree>, LocalSearchReport) {
    match local_search_cancellable(net, table, policy, config, &|| false) {
        Ok(result) => result,
        Err(Cancelled) => unreachable!("a never-true cancel hook cannot cancel"),
    }
}

/// [`local_search_with_report`] with a cooperative cancellation hook for
/// deadline budgets: `cancel` is polled once per reroute round and once
/// per candidate batch, so a long-running search abandons within one
/// round of its budget expiring.
///
/// The Pareto set accumulated before cancellation is discarded — a
/// deadline-expired rung yields to the ladder's next rung rather than
/// serving a half-searched frontier whose quality would silently depend
/// on wall-clock scheduling.
///
/// # Errors
///
/// Returns [`Cancelled`] when the hook fires.
///
/// # Panics
///
/// Panics if the net degree is not larger than the table's λ, like
/// [`local_search`].
pub fn local_search_cancellable(
    net: &Net,
    table: &LookupTable,
    policy: &Policy,
    config: &LocalSearchConfig,
    cancel: &dyn Fn() -> bool,
) -> Result<(ParetoSet<RoutingTree>, LocalSearchReport), Cancelled> {
    let n = net.degree();
    let lambda = table.lambda() as usize;
    assert!(
        n > lambda,
        "local search expects degree {n} > lambda {lambda}; query the table instead"
    );

    let mut frontier: ParetoSet<RoutingTree> = ParetoSet::new();
    let mut seeds = vec![rsmt_tree(net)];
    if config.seed_arborescence {
        seeds.push(patlabor_baselines::rsma::cl_arborescence(net));
    }
    for seed in seeds {
        if config.refine {
            // The paper applies its SALT-style post-processing throughout;
            // the seeds deserve it as much as the reroute candidates.
            for variant in refine_variants(&seed) {
                insert_tree(&mut frontier, variant);
            }
        }
        insert_tree(&mut frontier, seed);
    }

    let rounds = config.rounds.unwrap_or_else(|| (n / lambda).max(1));
    let mut report = LocalSearchReport::default();
    for _ in 0..rounds {
        if cancel() {
            return Err(Cancelled);
        }
        // The max-delay tree is the min-wirelength end of the frontier.
        let Some((_, worst)) = frontier.min_wirelength() else {
            break;
        };
        let worst = worst.clone();
        let selection = policy.select_pins(net, &worst, lambda - 1);
        let candidates = reroute_candidates(net, &worst, &selection, table);
        if cancel() {
            return Err(Cancelled);
        }
        report.rounds += 1;
        report.candidates += candidates.len();
        for cand in candidates {
            if config.refine {
                for variant in refine_variants(&cand) {
                    insert_tree(&mut frontier, variant);
                }
            }
            insert_tree(&mut frontier, cand);
        }
    }
    Ok((frontier, report))
}

/// SALT-style post-processing: a delay-first and a wirelength-first
/// two-pass chain, keeping the intermediate trees (each is a legitimate
/// tradeoff candidate).
fn refine_variants(tree: &RoutingTree) -> Vec<RoutingTree> {
    let mut out = Vec::with_capacity(4);
    for first in [RefineObjective::Delay, RefineObjective::Wirelength] {
        let second = match first {
            RefineObjective::Delay => RefineObjective::Wirelength,
            RefineObjective::Wirelength => RefineObjective::Delay,
        };
        let a = reconnect_pass(tree, first);
        let b = reconnect_pass(&a, second);
        out.push(a);
        out.push(b);
    }
    out
}

fn insert_tree(frontier: &mut ParetoSet<RoutingTree>, tree: RoutingTree) {
    let (w, d) = tree.objectives();
    frontier.insert(Cost::new(w, d), tree);
}

/// One reroute step: splices the selected pins out of `tree`, reroutes the
/// subnet `{r} ∪ selection` through the lookup table, and returns one
/// candidate whole-net tree per stored Pareto topology.
///
/// Public because the policy trainer replays this step on random
/// selections.
pub fn reroute_candidates(
    net: &Net,
    tree: &RoutingTree,
    selection: &[usize],
    table: &LookupTable,
) -> Vec<RoutingTree> {
    // Subnet: the source plus the selected pins.
    let mut sub_pins = vec![net.source()];
    sub_pins.extend(selection.iter().map(|&pin| net.pins()[pin]));
    let Ok(subnet) = Net::new(sub_pins) else {
        return Vec::new();
    };
    let Some(local_frontier) = table.query(&subnet) else {
        return Vec::new();
    };

    // Residual edges: every non-selected node connects to its first
    // non-selected ancestor (selected pins are spliced out).
    let selected = {
        let mut mark = vec![false; tree.num_nodes()];
        for &pin in selection {
            mark[pin] = true;
        }
        mark
    };
    let mut rest_edges = Vec::new();
    for v in 1..tree.num_nodes() {
        if selected[v] {
            continue;
        }
        let mut a = tree.parent(v);
        while selected[a] {
            a = tree.parent(a);
        }
        rest_edges.push((tree.point(v), tree.point(a)));
    }

    let mut out = Vec::with_capacity(local_frontier.len());
    for (_, local_tree) in local_frontier.iter() {
        let mut edges = rest_edges.clone();
        edges.extend(local_tree.edge_points());
        if let Ok(candidate) = extract_from_union(net, &edges) {
            out.push(candidate);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Point;
    use patlabor_lut::LutBuilder;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn reroute_candidates_cover_all_pins() {
        let table = LutBuilder::new(4).threads(2).build();
        let mut seed = 8u64;
        let net = random_net(&mut seed, 9, 80);
        let tree = rsmt_tree(&net);
        let selection = vec![2, 5, 7];
        let cands = reroute_candidates(&net, &tree, &selection, &table);
        assert!(!cands.is_empty());
        for c in &cands {
            c.validate(&net).unwrap();
        }
    }

    #[test]
    fn local_search_never_loses_to_the_seed() {
        let table = LutBuilder::new(4).threads(2).build();
        let policy = Policy::default();
        let mut seed = 15u64;
        for _ in 0..5 {
            let net = random_net(&mut seed, 12, 120);
            let seed_tree = rsmt_tree(&net);
            let (w0, d0) = seed_tree.objectives();
            let frontier =
                local_search(&net, &table, &policy, &LocalSearchConfig::default());
            assert!(!frontier.is_empty());
            // The seed (or something dominating it) must be in the set.
            assert!(frontier.dominated(Cost::new(w0, d0)));
            for (c, t) in frontier.iter() {
                t.validate(&net).unwrap();
                assert_eq!((c.wirelength, c.delay), t.objectives());
            }
        }
    }

    #[test]
    fn local_search_finds_delay_improvements() {
        // On clustered nets the RSMT has large delay; local search must
        // strictly improve the delay end.
        let table = LutBuilder::new(4).threads(2).build();
        let policy = Policy::default();
        let mut seed = 23u64;
        let mut improved = 0;
        for _ in 0..6 {
            let net = random_net(&mut seed, 14, 200);
            let seed_tree = rsmt_tree(&net);
            let frontier =
                local_search(&net, &table, &policy, &LocalSearchConfig::default());
            let (best_d, _) = frontier.min_delay().unwrap();
            if best_d.delay < seed_tree.delay() {
                improved += 1;
            }
        }
        assert!(improved >= 3, "local search improved delay on only {improved}/6 nets");
    }

    #[test]
    #[should_panic(expected = "local search expects")]
    fn rejects_small_nets() {
        let table = LutBuilder::new(4).threads(1).build();
        let net = Net::new(vec![Point::new(0, 0), Point::new(1, 1)]).unwrap();
        let _ = local_search(&net, &table, &Policy::default(), &LocalSearchConfig::default());
    }

    #[test]
    fn inert_cancel_hook_matches_plain_search_and_eager_hook_cancels() {
        let table = LutBuilder::new(4).threads(2).build();
        let policy = Policy::default();
        let config = LocalSearchConfig::default();
        let mut seed = 41u64;
        let net = random_net(&mut seed, 12, 100);
        let (plain, plain_report) = local_search_with_report(&net, &table, &policy, &config);
        let (inert, inert_report) =
            local_search_cancellable(&net, &table, &policy, &config, &|| false).unwrap();
        assert_eq!(plain, inert);
        assert_eq!(plain_report, inert_report);
        let cancelled = local_search_cancellable(&net, &table, &policy, &config, &|| true);
        assert!(matches!(cancelled, Err(Cancelled)));
    }

    #[test]
    fn arborescence_seed_tightens_delay_end() {
        let table = LutBuilder::new(4).threads(2).build();
        let policy = Policy::default();
        let mut seed = 37u64;
        let net = random_net(&mut seed, 16, 150);
        let plain = local_search(
            &net,
            &table,
            &policy,
            &LocalSearchConfig {
                seed_arborescence: false,
                ..LocalSearchConfig::default()
            },
        );
        let seeded = local_search(&net, &table, &policy, &LocalSearchConfig::default());
        let pd = plain.min_delay().unwrap().0.delay;
        let sd = seeded.min_delay().unwrap().0.delay;
        assert!(sd <= pd);
        assert_eq!(sd, net.delay_lower_bound());
    }
}
