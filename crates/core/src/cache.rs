//! Pattern-keyed frontier cache.
//!
//! Placement produces enormous numbers of congruent nets: the same pin
//! pattern at different offsets, scales, rotations and reflections. The
//! lookup-table query already canonicalizes away translation and the
//! dihedral symmetries, and both objectives are invariant under those
//! transforms, so the *winning topology ids* of a query depend only on
//! the canonical pattern key and the canonical gap vector. This module
//! caches exactly that: `(key, gaps) → winning ids`. The ids are indices
//! into the lookup table's per-degree CSR topology pool (stable for the
//! lifetime of a loaded table, and across save/load since v3 serializes
//! the arenas verbatim). On a hit the router re-scores just those pool
//! rows by dot product and materializes them, skipping the dominated
//! candidates entirely — and because the v3 score kernel's tie-breaking
//! is a pure function of `(key, gaps)`, the resulting frontier is
//! bit-identical to an uncached query.
//!
//! The cache is sharded (`RwLock<HashMap>` per shard) so the read-mostly
//! steady state scales across batch-routing threads: hits take a shared
//! lock on one shard, and concurrent misses on different shards never
//! contend. Each shard is bounded and evicts in FIFO order — congruence
//! classes in real placements are heavily skewed, so even a crude policy
//! keeps the hot classes resident.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Cache key: canonical pattern key plus canonical gap vector.
///
/// The pattern key encodes the degree, so keys never collide across
/// degrees even though gap-vector lengths differ.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pattern: u64,
    gaps: Box<[i64]>,
}

impl CacheKey {
    /// Builds a key from raw components. Prefer [`CacheKey::from_class`];
    /// this exists for tests and tools that synthesize keys directly.
    pub fn new(pattern: u64, gaps: &[i64]) -> Self {
        CacheKey {
            pattern,
            gaps: gaps.into(),
        }
    }

    /// The cache key of a classified net — the `(canonical pattern key,
    /// canonical gap vector)` pair that [`patlabor_geom::NetClass`]
    /// guarantees is constant across a congruence class. Using the class
    /// here and in the lookup table means the cache and the table can
    /// never disagree about which nets are congruent.
    pub fn from_class(class: &patlabor_geom::NetClass) -> Self {
        CacheKey::new(class.canonical_key(), class.canonical_gaps())
    }
}

/// Configuration for the frontier cache (see [`FrontierCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch. Disabled, the router always evaluates every
    /// candidate topology; results are identical either way.
    pub enabled: bool,
    /// Total entry budget, split evenly across shards. Each entry is a
    /// short id list, so the default (64 Ki entries) costs a few MiB.
    pub capacity: usize,
    /// Number of independent shards. More shards means less write
    /// contention while the cache warms; must be non-zero (clamped).
    pub shards: usize,
    /// Adaptive-bypass warmup window: after this many probes the hit
    /// rate is judged against [`CacheConfig::bypass_threshold_permille`]
    /// and the cache stops probing if it is not earning its keep (probe +
    /// insert overhead is a measured ~6% net loss on workloads with no
    /// congruence reuse). `0` disables the bypass — the cache then probes
    /// forever, as before.
    pub bypass_warmup: u64,
    /// Minimum hit rate, in permille (‰), the cache must sustain once the
    /// warmup window has elapsed. Expressed as an integer so the config
    /// stays `Eq`/`Hash`-able; `100` means 10%.
    pub bypass_threshold_permille: u16,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 64 * 1024,
            shards: 16,
            bypass_warmup: 1024,
            bypass_threshold_permille: 100,
        }
    }
}

impl CacheConfig {
    /// A configuration with the cache switched off.
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        }
    }
}

/// Hit/miss counters and current occupancy, from
/// [`crate::PatLabor::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full query.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Whether the adaptive bypass has retired the cache: the hit rate
    /// stayed below the configured threshold through the warmup window,
    /// so the router stopped probing (and inserting) entirely.
    pub bypassed: bool,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Arc<[u32]>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A bounded, sharded map from canonical net classes to winning topology
/// ids. See the module docs for the correctness argument.
#[derive(Debug)]
pub struct FrontierCache {
    shards: Box<[RwLock<Shard>]>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    bypass_warmup: u64,
    bypass_threshold_permille: u64,
    bypassed: AtomicBool,
}

impl FrontierCache {
    /// Creates an empty cache; `config.enabled` is the caller's concern.
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        FrontierCache {
            shards: (0..shards).map(|_| RwLock::default()).collect(),
            per_shard_cap: (config.capacity / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypass_warmup: config.bypass_warmup,
            bypass_threshold_permille: config.bypass_threshold_permille as u64,
            bypassed: AtomicBool::new(false),
        }
    }

    /// Whether the adaptive bypass has fired. The router consults this
    /// before probing; once true, the cache is dead weight and is never
    /// touched again (sticky — a workload that stopped reusing patterns
    /// rarely starts again, and stickiness keeps the hot path branch
    /// perfectly predictable).
    pub fn bypassed(&self) -> bool {
        self.bypassed.load(Ordering::Relaxed)
    }

    /// Re-judges the hit rate after a miss. Only misses can push the rate
    /// below the floor, so this is not called on hits. Counter reads are
    /// relaxed: an off-by-a-few probe count merely shifts the decision by
    /// a few nets.
    fn judge_hit_rate(&self) {
        if self.bypass_warmup == 0 || self.bypassed.load(Ordering::Relaxed) {
            return;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let total = hits + self.misses.load(Ordering::Relaxed);
        if total >= self.bypass_warmup && hits * 1000 < self.bypass_threshold_permille * total {
            self.bypassed.store(true, Ordering::Relaxed);
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<Shard> {
        // The pattern key's low bits are a permutation code and already
        // well mixed; fold in a gap hash so same-pattern nets spread too.
        let mut h = key.pattern ^ (key.gaps.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &g in key.gaps.iter() {
            h = (h ^ g as u64).wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up a winning-id list, bumping the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<[u32]>> {
        let shard = self.shard(key).read().expect("cache lock poisoned");
        match shard.map.get(key) {
            Some(ids) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(ids))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                drop(shard);
                self.judge_hit_rate();
                None
            }
        }
    }

    /// Inserts a winning-id list, evicting the oldest entry of the target
    /// shard when it is full.
    ///
    /// A concurrent duplicate insert (two threads missing on the same key
    /// at once) overwrites with an equal value and is harmless.
    pub fn insert(&self, key: CacheKey, ids: Arc<[u32]>) {
        let mut shard = self.shard(&key).write().expect("cache lock poisoned");
        if shard.map.insert(key.clone(), ids).is_none() {
            if shard.map.len() > self.per_shard_cap {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
            shard.order.push_back(key);
        }
    }

    /// Asserts the structural invariants of every shard: `map` and
    /// `order` track the same key set (same length, no duplicate order
    /// entries, every queued key resident) and occupancy never exceeds
    /// the per-shard capacity. Test-only; concurrency tests call it after
    /// hammering the cache from many threads.
    #[cfg(test)]
    fn assert_shards_consistent(&self) {
        for (i, lock) in self.shards.iter().enumerate() {
            let shard = lock.read().expect("cache lock poisoned");
            assert!(
                shard.map.len() <= self.per_shard_cap,
                "shard {i}: occupancy {} exceeds capacity {}",
                shard.map.len(),
                self.per_shard_cap
            );
            assert_eq!(
                shard.map.len(),
                shard.order.len(),
                "shard {i}: map and eviction queue disagree on size"
            );
            let queued: std::collections::HashSet<&CacheKey> = shard.order.iter().collect();
            assert_eq!(
                queued.len(),
                shard.order.len(),
                "shard {i}: eviction queue holds duplicate keys"
            );
            for key in &shard.order {
                assert!(
                    shard.map.contains_key(key),
                    "shard {i}: queued key missing from map"
                );
            }
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache lock poisoned").map.len())
                .sum(),
            bypassed: self.bypassed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u64, gaps: &[i64]) -> CacheKey {
        CacheKey::new(p, gaps)
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = FrontierCache::new(&CacheConfig::default());
        let k = key(42, &[1, 2, 3]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), vec![7, 9].into());
        assert_eq!(cache.get(&k).as_deref(), Some(&[7u32, 9][..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_pattern_different_gaps_are_distinct() {
        let cache = FrontierCache::new(&CacheConfig::default());
        cache.insert(key(1, &[5, 5]), vec![0].into());
        assert!(cache.get(&key(1, &[5, 6])).is_none());
        assert!(cache.get(&key(1, &[5, 5])).is_some());
    }

    #[test]
    fn fifo_eviction_bounds_each_shard() {
        let config = CacheConfig {
            capacity: 4,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..20u64 {
            cache.insert(key(i, &[i as i64]), vec![i as u32].into());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4, "shard stays at capacity");
        // Newest entry survives, oldest is gone.
        assert!(cache.get(&key(19, &[19])).is_some());
        assert!(cache.get(&key(0, &[0])).is_none());
    }

    #[test]
    fn duplicate_insert_does_not_grow_order_queue() {
        let config = CacheConfig {
            capacity: 2,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        let k = key(3, &[1]);
        for _ in 0..10 {
            cache.insert(k.clone(), vec![1].into());
        }
        cache.insert(key(4, &[2]), vec![2].into());
        cache.insert(key(5, &[3]), vec![3].into());
        // k was inserted first and must be the first evicted despite the
        // repeated overwrites.
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&k).is_none());
    }

    /// Overwrite-heavy workload: interleaving fresh inserts with repeated
    /// overwrites of resident keys must never push a shard past its
    /// capacity or desynchronize `map` from the eviction queue.
    #[test]
    fn overwrite_heavy_occupancy_stays_bounded() {
        let config = CacheConfig {
            capacity: 6,
            shards: 2,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for round in 0..50u64 {
            // A fresh key per round...
            cache.insert(key(round, &[round as i64]), vec![round as u32].into());
            // ...then a storm of overwrites across the whole key history,
            // including keys that were already evicted (those re-enter as
            // fresh inserts and must re-queue exactly once).
            for k in 0..=round {
                cache.insert(key(k, &[k as i64]), vec![(k + round) as u32].into());
            }
            cache.assert_shards_consistent();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 6, "total occupancy {} > capacity", stats.entries);
        assert!(stats.entries > 0);
    }

    /// Concurrent miss-storm: many threads discover the same keys missing
    /// and insert them simultaneously. Duplicate concurrent inserts of one
    /// key must leave `order`/`map` consistent (exactly one queue entry
    /// per resident key), and reads during the storm must never see torn
    /// state.
    #[test]
    fn concurrent_miss_storm_keeps_shards_consistent() {
        use std::sync::Arc;

        let config = CacheConfig {
            capacity: 64,
            shards: 4,
            ..CacheConfig::default()
        };
        let cache = Arc::new(FrontierCache::new(&config));
        let threads = 8;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..400u64 {
                        // A small key space so every key is inserted by
                        // several threads at once.
                        let k = key(i % 16, &[(i % 16) as i64, t as i64 % 2]);
                        if cache.get(&k).is_none() {
                            cache.insert(k.clone(), vec![t as u32, i as u32].into());
                        }
                        // Occasional fresh keys force evictions under the
                        // same contention.
                        if i % 37 == 0 {
                            cache.insert(key(1000 + t as u64 * 1000 + i, &[i as i64]), vec![0].into());
                        }
                    }
                });
            }
        });
        cache.assert_shards_consistent();
        let stats = cache.stats();
        // Any hot key still resident must replay a well-formed id list
        // (no torn values from racing duplicate inserts), and the storm
        // must actually have exercised both paths.
        let mut resident = 0;
        for i in 0..16u64 {
            for g in 0..2i64 {
                if let Some(ids) = cache.get(&key(i, &[i as i64, g])) {
                    resident += 1;
                    assert_eq!(ids.len(), 2, "torn value for hot key ({i}, {g})");
                }
            }
        }
        assert!(resident > 0, "the whole hot set was evicted");
        assert!(stats.hits > 0 && stats.misses > 0);
    }

    #[test]
    fn bypass_fires_after_a_cold_warmup_window() {
        let config = CacheConfig {
            bypass_warmup: 32,
            bypass_threshold_permille: 100,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..31u64 {
            assert!(cache.get(&key(i, &[i as i64])).is_none());
            assert!(!cache.bypassed(), "must not fire before the window");
        }
        assert!(cache.get(&key(31, &[31])).is_none());
        assert!(cache.bypassed(), "32 misses, 0 hits: below 10%");
        assert!(cache.stats().bypassed);
    }

    #[test]
    fn bypass_spares_a_cache_that_earns_its_keep() {
        let config = CacheConfig {
            bypass_warmup: 32,
            bypass_threshold_permille: 100,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        let hot = key(7, &[7]);
        cache.insert(hot.clone(), vec![1].into());
        // 1 hit per 4 probes = 250‰, comfortably above the 100‰ floor.
        for i in 0..200u64 {
            if i % 4 == 0 {
                assert!(cache.get(&hot).is_some());
            } else {
                cache.get(&key(1000 + i, &[i as i64]));
            }
        }
        assert!(!cache.bypassed());
    }

    #[test]
    fn zero_warmup_disables_the_bypass() {
        let config = CacheConfig {
            bypass_warmup: 0,
            bypass_threshold_permille: 1000,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..500u64 {
            cache.get(&key(i, &[i as i64]));
        }
        assert!(!cache.bypassed(), "warmup 0 must mean never bypass");
    }

    #[test]
    fn zero_shard_config_is_clamped() {
        let config = CacheConfig {
            shards: 0,
            capacity: 0,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        cache.insert(key(1, &[1]), vec![1].into());
        assert!(cache.get(&key(1, &[1])).is_some());
    }
}
